//! Property tests for the [`dbring::Ring`] engine's two load-bearing equivalences,
//! across both storage backends:
//!
//! 1. **Late-registration backfill**: a view created after N random updates must equal
//!    the same view replayed from scratch over those updates — at the registration
//!    point and after arbitrary further maintenance.
//! 2. **Routed shared-batch ingest**: one ring maintaining k views from one chunked
//!    stream must reach exactly the tables *and* `ExecStats` of k independently
//!    maintained views (the amortization moves normalization, never ring work).

use dbring::{
    Catalog, IncrementalView, RingBuilder, StorageBackend, Update, Value, ViewDef, ViewId,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", &["A", "B"]).unwrap();
    c.declare("S", &["X"]).unwrap();
    c
}

/// The standing views: coverage over probe-only, enumerating, multi-relation and
/// scalar-guard shapes, all integer-valued so tables compare bit-exactly.
const VIEWS: &[(&str, &str)] = &[
    ("r_by_a", "q[a] := Sum(R(a, b) * b)"),
    ("r_selfjoin", "q := Sum(R(a, b) * R(a2, b) * (a = a2))"),
    ("s_count", "q := Sum(S(x))"),
    ("rs_join", "q[a] := Sum(R(a, b) * S(b))"),
];

/// Random single-tuple updates over a small domain (collisions and deletions are
/// common, so consolidation and zero-crossings get exercised).
fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..4, 0i64..3, any::<bool>()).prop_map(|(a, b, ins)| {
            let values = vec![Value::int(a), Value::int(b)];
            if ins {
                Update::insert("R", values)
            } else {
                Update::delete("R", values)
            }
        }),
        (0i64..3, any::<bool>()).prop_map(|(x, ins)| {
            let values = vec![Value::int(x)];
            if ins {
                Update::insert("S", values)
            } else {
                Update::delete("S", values)
            }
        }),
    ]
}

fn backends() -> [StorageBackend; 2] {
    [StorageBackend::Hash, StorageBackend::Ordered]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A view registered after the stream equals the same view replayed from scratch,
    /// on every backend — and the two stay equal under further mixed ingest.
    #[test]
    fn late_registration_equals_replay_from_scratch(
        prefix in prop::collection::vec(arb_update(), 1..50),
        suffix in prop::collection::vec(arb_update(), 0..30),
    ) {
        for backend in backends() {
            let mut ring = RingBuilder::new(catalog()).backend(backend).build();
            ring.apply_all(&prefix).unwrap();
            let ids: Vec<ViewId> = VIEWS
                .iter()
                .map(|(name, text)| ring.create_view(*name, ViewDef::Agca(text)).unwrap())
                .collect();

            for (i, (name, text)) in VIEWS.iter().enumerate() {
                let mut replayed = IncrementalView::from_agca(&catalog(), text).unwrap();
                replayed.apply_all(&prefix).unwrap();
                prop_assert_eq!(
                    ring.view(ids[i]).unwrap().table(),
                    replayed.table(),
                    "late view {} diverges from replay on {} after backfill",
                    name,
                    backend
                );

                // Further maintenance keeps them in lockstep (half per-update, half
                // batched, so both ingest paths run over the backfilled state).
                let (head, tail) = suffix.split_at(suffix.len() / 2);
                let mut fork = ring.clone();
                fork.apply_all(head).unwrap();
                fork.apply_batch(tail).unwrap();
                replayed.apply_all(head).unwrap();
                replayed.apply_batch(tail).unwrap();
                prop_assert_eq!(
                    fork.view(ids[i]).unwrap().table(),
                    replayed.table(),
                    "late view {} diverges from replay on {} after further ingest",
                    name,
                    backend
                );
            }
        }
    }

    /// One ring, k views, chunked shared-batch ingest == k independent views, in
    /// tables and exact work counters, on every backend.
    #[test]
    fn routed_shared_batches_equal_independent_views(
        stream in prop::collection::vec(arb_update(), 1..60),
        chunk in 1usize..16,
    ) {
        for backend in backends() {
            let mut ring = RingBuilder::new(catalog()).backend(backend).build();
            let ids: Vec<ViewId> = VIEWS
                .iter()
                .map(|(name, text)| ring.create_view(*name, ViewDef::Agca(text)).unwrap())
                .collect();
            for piece in stream.chunks(chunk) {
                ring.apply_batch(piece).unwrap();
            }
            for (i, (name, text)) in VIEWS.iter().enumerate() {
                let mut solo = IncrementalView::from_agca(&catalog(), text).unwrap();
                for piece in stream.chunks(chunk) {
                    solo.apply_batch(piece).unwrap();
                }
                let hosted = ring.view(ids[i]).unwrap();
                prop_assert_eq!(
                    hosted.table(),
                    solo.table(),
                    "tables diverge for {} on {}",
                    name,
                    backend
                );
                prop_assert_eq!(
                    hosted.stats(),
                    solo.stats(),
                    "work counters diverge for {} on {}",
                    name,
                    backend
                );
            }
        }
    }
}
