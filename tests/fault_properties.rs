//! Chaos property tests for failure-atomic ingest: whatever fails — an injected
//! storage panic at a random operation, or a value error at a random position in the
//! batch — a failed `Ring::apply_batch` must land *nowhere*.
//!
//! 1. **Injected panics**: views hosted on [`FaultStorage`] panic at a random storage
//!    operation mid-batch. The batch must then leave every healthy view's table *and*
//!    `ExecStats` bit-identical to the pre-batch state, quarantine exactly the
//!    panicked views, and `Ring::repair_view` must rebuild each one to exactly the
//!    state a replay-from-scratch (without the failed batch) produces — after which
//!    the ring ingests normally again.
//! 2. **Value errors**: a malformed tuple at a random position makes one view reject
//!    the batch while a sibling accepts it. The rejection must roll every view back
//!    bit-exactly, poison nothing, and leave the ring equivalent to one that never
//!    saw the failing batch.
//!
//! Both properties run on both storage backends at 1, 2, 4 and 8 ingest threads, so
//! the sequential and parallel staging paths are both under fire.

use std::collections::BTreeMap;

use dbring::fault::with_fault;
use dbring::{
    Catalog, Error, ExecStats, FaultOp, FaultPlan, FaultStorage, HashViewStorage, Number,
    OrderedViewStorage, Ring, RingBuilder, RuntimeError, StorageBackend, Update, Value, ViewDef,
    ViewStorage,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", &["A", "B"]).unwrap();
    c.declare("S", &["X"]).unwrap();
    c
}

/// Probe-only, enumerating, multi-relation and unit-replay (self-join) shapes, all
/// integer-valued so tables and stats compare bit-exactly.
const VIEWS: &[(&str, &str)] = &[
    ("r_by_a", "q[a] := Sum(R(a, b) * b)"),
    ("r_selfjoin", "q := Sum(R(a, b) * R(a2, b) * (a = a2))"),
    ("s_count", "q := Sum(S(x))"),
    ("rs_join", "q[a] := Sum(R(a, b) * S(b))"),
];

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..4, 0i64..3, any::<bool>()).prop_map(|(a, b, ins)| {
            let values = vec![Value::int(a), Value::int(b)];
            if ins {
                Update::insert("R", values)
            } else {
                Update::delete("R", values)
            }
        }),
        (0i64..3, any::<bool>()).prop_map(|(x, ins)| {
            let values = vec![Value::int(x)];
            if ins {
                Update::insert("S", values)
            } else {
                Update::delete("S", values)
            }
        }),
    ]
}

const THREADS: [usize; 4] = [1, 2, 4, 8];
const OPS: [FaultOp; 3] = [FaultOp::Probe, FaultOp::Add, FaultOp::ApplySorted];

/// A ring whose every view lives on the fault-injection wrapper around `S`.
fn faulted_ring<S: ViewStorage + Send + 'static>(threads: usize) -> Ring {
    let mut ring = RingBuilder::new(catalog()).ingest_threads(threads).build();
    for (name, text) in VIEWS {
        ring.create_view_with::<FaultStorage<S>>(*name, ViewDef::Agca(text))
            .unwrap();
    }
    ring
}

/// A plain ring on `backend` hosting the same views — the fault-free reference.
fn reference_ring(backend: StorageBackend) -> Ring {
    let mut ring = RingBuilder::new(catalog()).backend(backend).build();
    for (name, text) in VIEWS {
        ring.create_view(*name, ViewDef::Agca(text)).unwrap();
    }
    ring
}

type State = Vec<(String, BTreeMap<Vec<Value>, Number>, ExecStats)>;

/// Tables and work counters of every readable view, by name.
fn observable_state(ring: &Ring) -> State {
    ring.views()
        .map(|v| (v.name().to_string(), v.table(), v.stats()))
        .collect()
}

fn tables(ring: &Ring) -> Vec<(String, BTreeMap<Vec<Value>, Number>)> {
    ring.views()
        .map(|v| (v.name().to_string(), v.table()))
        .collect()
}

/// Drives one injected-panic scenario and checks the full contract; generic over the
/// wrapped backend so hash and ordered share the harness.
fn check_panic_atomicity<S: ViewStorage + Send + 'static>(
    backend: StorageBackend,
    threads: usize,
    prefix: &[Update],
    batch: &[Update],
    suffix: &[Update],
    plan: FaultPlan,
) -> Result<(), TestCaseError> {
    let mut ring = faulted_ring::<S>(threads);
    let mut reference = reference_ring(backend);
    if !prefix.is_empty() {
        ring.apply_batch(prefix).unwrap();
        reference.apply_batch(prefix).unwrap();
    }
    let before = observable_state(&ring);
    let ingested_before = ring.updates_ingested();

    let outcome = with_fault(plan, || ring.apply_batch(batch));
    match outcome {
        Err(err) => {
            // The batch landed nowhere: every still-readable view is bit-identical
            // to its pre-batch state, tables and counters alike, and the ingest
            // counter never moved.
            prop_assert!(
                matches!(err, Error::Runtime(RuntimeError::EnginePanicked { .. })),
                "expected EnginePanicked, got {err:?}"
            );
            prop_assert_eq!(ring.updates_ingested(), ingested_before);
            let after = observable_state(&ring);
            let poisoned = ring.poisoned_views();
            prop_assert!(!poisoned.is_empty(), "a panic must quarantine its view");
            prop_assert_eq!(after.len() + poisoned.len(), VIEWS.len());
            for entry in &after {
                prop_assert!(
                    before.contains(entry),
                    "healthy view {} drifted after a failed batch",
                    entry.0
                );
            }
            // Quarantined views refuse reads until repaired; repair rebuilds each
            // one to exactly the replay-without-the-failed-batch state.
            for (id, name) in &poisoned {
                prop_assert!(
                    matches!(ring.view(*id), Err(Error::ViewPoisoned { .. })),
                    "a quarantined view must refuse reads"
                );
                ring.repair_view(*id).unwrap();
                prop_assert_eq!(
                    ring.view(*id).unwrap().table(),
                    reference.view_named(name).unwrap().table(),
                    "repair of {} != replay from scratch",
                    name
                );
            }
        }
        Ok(()) => {
            // The plan outlived the batch (injection point past the batch's last
            // operation): the batch must then have landed completely.
            reference.apply_batch(batch).unwrap();
            prop_assert_eq!(tables(&ring), tables(&reference));
        }
    }

    // Either way the ring is fully live again: further ingest tracks the reference
    // (which skipped the failed batch, exactly as the ring did).
    if !suffix.is_empty() {
        ring.apply_batch(suffix).unwrap();
        reference.apply_batch(suffix).unwrap();
    }
    prop_assert_eq!(tables(&ring), tables(&reference));
    prop_assert!(ring.poisoned_views().is_empty());
    Ok(())
}

/// Drives one value-error scenario: `r_by_a` multiplies `B`, so a string in that
/// column is rejected at evaluation time — after `r_selfjoin` and friends may
/// already have staged the batch successfully.
fn check_value_error_atomicity(
    backend: StorageBackend,
    threads: usize,
    prefix: &[Update],
    mut batch: Vec<Update>,
    poison_at: usize,
    suffix: &[Update],
) -> Result<(), TestCaseError> {
    let poison = Update::insert("R", vec![Value::int(1), Value::str("boom")]);
    let at = poison_at % (batch.len() + 1);
    batch.insert(at, poison);

    let mut ring = RingBuilder::new(catalog())
        .backend(backend)
        .ingest_threads(threads)
        .build();
    for (name, text) in VIEWS {
        ring.create_view(*name, ViewDef::Agca(text)).unwrap();
    }
    let mut reference = reference_ring(backend);
    if !prefix.is_empty() {
        ring.apply_batch(prefix).unwrap();
        reference.apply_batch(prefix).unwrap();
    }
    let before = observable_state(&ring);
    let ingested_before = ring.updates_ingested();

    let err = ring.apply_batch(&batch).unwrap_err();
    prop_assert!(
        !matches!(err, Error::Runtime(RuntimeError::EnginePanicked { .. })),
        "a value error must not read as a panic"
    );
    prop_assert!(
        ring.poisoned_views().is_empty(),
        "value errors never poison"
    );
    prop_assert_eq!(observable_state(&ring), before);
    prop_assert_eq!(ring.updates_ingested(), ingested_before);

    if !suffix.is_empty() {
        ring.apply_batch(suffix).unwrap();
        reference.apply_batch(suffix).unwrap();
    }
    prop_assert_eq!(observable_state(&ring), observable_state(&reference));
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Injected storage panics at random operations: failed batches land nowhere,
    /// panicked views quarantine and repair to the replay-from-scratch state, on
    /// both backends at every thread count.
    #[test]
    fn injected_panics_leave_failed_batches_unlanded(
        prefix in prop::collection::vec(arb_update(), 0..24),
        batch in prop::collection::vec(arb_update(), 1..24),
        suffix in prop::collection::vec(arb_update(), 1..12),
        t_idx in 0usize..4,
        op_idx in 0usize..3,
        at in 0usize..12,
    ) {
        let threads = THREADS[t_idx];
        let plan = FaultPlan::new(OPS[op_idx], at);
        check_panic_atomicity::<HashViewStorage>(
            StorageBackend::Hash, threads, &prefix, &batch, &suffix, plan,
        )?;
        check_panic_atomicity::<OrderedViewStorage>(
            StorageBackend::Ordered, threads, &prefix, &batch, &suffix, plan,
        )?;
    }

    /// A malformed tuple at a random batch position: the rejecting view drags the
    /// whole batch down, every sibling rolls back bit-exactly, nothing is poisoned,
    /// and the ring stays equivalent to one that never saw the batch.
    #[test]
    fn value_errors_roll_every_view_back(
        prefix in prop::collection::vec(arb_update(), 0..24),
        batch in prop::collection::vec(arb_update(), 0..16),
        poison_at in 0usize..16,
        suffix in prop::collection::vec(arb_update(), 1..12),
        t_idx in 0usize..4,
    ) {
        let threads = THREADS[t_idx];
        for backend in [StorageBackend::Hash, StorageBackend::Ordered] {
            check_value_error_atomicity(backend, threads, &prefix, batch.clone(), poison_at, &suffix)?;
        }
    }
}
