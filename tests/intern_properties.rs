//! Ring-level properties of the interned fixed-width ingest path (PR 8):
//!
//! 1. **Parity**: [`Ring::apply_batch`] — which normalizes on the ring's persistent
//!    [`BatchNormalizer`] scratch — must match a twin ring fed the classic
//!    [`DeltaBatch::from_updates`] batches through [`Ring::apply_delta_batch`]:
//!    identical tables AND bit-identical [`ExecStats`] per view, across both storage
//!    backends, ingest thread budgets {1, 4}, and staged vs direct ingest.
//! 2. **Interner-id stability**: ids handed out by [`Ring::interner`] survive
//!    `repair_view` rebuilds and `drop_view` — no dangling and no reassignment —
//!    while the repaired ring's tables stay equal to an untouched twin's.
//!
//! Streams are string-heavy with ids assigned in non-lexicographic order, so any
//! id-order leak into the sorted group or flush contracts fails loudly here.

use dbring::{
    DeltaBatch, ExecStats, Ring, RingBuilder, StorageBackend, Update, Value, ViewDef, ViewId,
};
use proptest::prelude::*;

/// Arrival order (likely "zz" first) disagrees with sort order.
const NATIONS: [&str; 6] = ["zz", "m", "aa", "z", "a", "b"];

fn catalog() -> dbring::Catalog {
    let mut c = dbring::Catalog::new();
    c.declare("C", &["cid", "nation"]).unwrap();
    c.declare("S", &["x"]).unwrap();
    c
}

/// String group keys, a self-join (unit replay), and a multi-relation probe.
const VIEWS: &[(&str, &str)] = &[
    ("by_nation", "q[n] := Sum(C(c, n))"),
    ("pairs", "q := Sum(C(c, n) * C(c2, n))"),
    ("cs_join", "q[c] := Sum(C(c, n) * S(c))"),
];

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0usize..NATIONS.len(), any::<bool>()).prop_map(|(c, n, ins)| {
            let values = vec![Value::int(c), Value::str(NATIONS[n])];
            if ins {
                Update::insert("C", values)
            } else {
                Update::delete("C", values)
            }
        }),
        (0i64..4, any::<bool>()).prop_map(|(x, ins)| {
            let values = vec![Value::int(x)];
            if ins {
                Update::insert("S", values)
            } else {
                Update::delete("S", values)
            }
        }),
    ]
}

fn backends() -> [StorageBackend; 2] {
    [StorageBackend::Hash, StorageBackend::Ordered]
}

fn build_ring(backend: StorageBackend, threads: usize, staged: bool) -> (Ring, Vec<ViewId>) {
    let mut builder = RingBuilder::new(catalog())
        .backend(backend)
        .ingest_threads(threads);
    if !staged {
        builder = builder.without_staged_ingest();
    }
    let mut ring = builder.build();
    let ids = VIEWS
        .iter()
        .map(|(name, text)| ring.create_view(*name, ViewDef::Agca(text)).unwrap())
        .collect();
    (ring, ids)
}

/// One view's observable state: its output table plus its work counters.
type ViewState = (Vec<(Vec<Value>, dbring::Number)>, ExecStats);

fn view_state(ring: &Ring, ids: &[ViewId]) -> Vec<ViewState> {
    ids.iter()
        .map(|&id| {
            let v = ring.view(id).unwrap();
            (v.table().into_iter().collect(), v.stats())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Interned ring ingest == classic normalization, across backends × threads
    /// {1, 4} × staged/direct: same tables, bit-identical work counters.
    #[test]
    fn interned_ring_ingest_matches_classic_normalization(
        stream in prop::collection::vec(arb_update(), 1..60),
        chunk in 1usize..20,
    ) {
        for backend in backends() {
            for threads in [1usize, 4] {
                for staged in [true, false] {
                    let (mut interned, ids) = build_ring(backend, threads, staged);
                    let (mut classic, classic_ids) = build_ring(backend, threads, staged);
                    for piece in stream.chunks(chunk) {
                        interned.apply_batch(piece).unwrap();
                        classic.apply_delta_batch(&DeltaBatch::from_updates(piece)).unwrap();
                    }
                    prop_assert_eq!(
                        view_state(&interned, &ids),
                        view_state(&classic, &classic_ids),
                        "interned vs classic diverged on {} threads={} staged={}",
                        backend, threads, staged
                    );
                    prop_assert!(interned.interner().is_consistent());
                }
            }
        }
    }

    /// Interner ids survive `repair_view` rebuilds and `drop_view`: every id handed
    /// out before the churn resolves to the same string after it, and the repaired
    /// ring's views still match an untouched twin.
    #[test]
    fn interner_ids_are_stable_across_view_repair_and_drop(
        prefix in prop::collection::vec(arb_update(), 1..40),
        suffix in prop::collection::vec(arb_update(), 1..30),
    ) {
        for backend in backends() {
            let (mut churned, ids) = build_ring(backend, 1, true);
            let (mut untouched, twin_ids) = build_ring(backend, 1, true);
            churned.apply_batch(&prefix).unwrap();
            untouched.apply_batch(&prefix).unwrap();
            let snapshot: Vec<(String, u32)> = (0..churned.interner().len() as u32)
                .map(|id| (churned.interner().resolve(id).to_string(), id))
                .collect();
            // Rebuild every view from the snapshot, then drop one entirely.
            for &id in &ids {
                churned.repair_view(id).unwrap();
            }
            churned.drop_view(ids[1]).unwrap();
            untouched.drop_view(twin_ids[1]).unwrap();
            // Keep ingesting through the churned normalizer.
            churned.apply_batch(&suffix).unwrap();
            untouched.apply_batch(&suffix).unwrap();
            for (s, id) in &snapshot {
                prop_assert_eq!(churned.interner().get(s), Some(*id),
                    "id for {:?} drifted after repair/drop", s);
                prop_assert_eq!(churned.interner().resolve(*id), s.as_str());
            }
            prop_assert!(churned.interner().is_consistent());
            // Tables only: a repair rebuilds the engine, so work counters restart
            // while the maintained contents must not change.
            let tables = |ring: &Ring, live: [ViewId; 2]| {
                live.map(|id| ring.view(id).unwrap().table())
            };
            prop_assert_eq!(
                tables(&churned, [ids[0], ids[2]]),
                tables(&untouched, [twin_ids[0], twin_ids[2]]),
                "repaired ring diverged from untouched twin on {}",
                backend
            );
        }
    }
}
