//! Property tests for the parallel ingest path: every parallel configuration must be
//! observationally identical to sequential ingest, across both storage backends.
//!
//! 1. **Parallel dispatch == sequential dispatch**: a ring built with `ingest_threads(k)`
//!    for k in {2, 4, 8} must reach exactly the tables *and* `ExecStats` of the same
//!    ring built with `ingest_threads(1)`, over random chunked streams.
//! 2. **Sharded flush == sequential flush**: `ViewStorage::apply_sorted_sharded` must
//!    leave any pre-seeded map in exactly the state `apply_sorted` would, for any shard
//!    count — including runs small enough to take the sequential fallback.

use std::collections::BTreeMap;

use dbring::{
    Catalog, HashViewStorage, Number, OrderedViewStorage, RingBuilder, StorageBackend, Update,
    Value, ViewDef, ViewId, ViewStorage,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", &["A", "B"]).unwrap();
    c.declare("S", &["X"]).unwrap();
    c
}

/// Probe-only, enumerating, multi-relation and scalar-guard shapes, all
/// integer-valued so tables and stats compare bit-exactly.
const VIEWS: &[(&str, &str)] = &[
    ("r_by_a", "q[a] := Sum(R(a, b) * b)"),
    ("r_selfjoin", "q := Sum(R(a, b) * R(a2, b) * (a = a2))"),
    ("s_count", "q := Sum(S(x))"),
    ("rs_join", "q[a] := Sum(R(a, b) * S(b))"),
];

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..4, 0i64..3, any::<bool>()).prop_map(|(a, b, ins)| {
            let values = vec![Value::int(a), Value::int(b)];
            if ins {
                Update::insert("R", values)
            } else {
                Update::delete("R", values)
            }
        }),
        (0i64..3, any::<bool>()).prop_map(|(x, ins)| {
            let values = vec![Value::int(x)];
            if ins {
                Update::insert("S", values)
            } else {
                Update::delete("S", values)
            }
        }),
    ]
}

fn backends() -> [StorageBackend; 2] {
    [StorageBackend::Hash, StorageBackend::Ordered]
}

/// An owned delta run: `(key, weight)` pairs in ascending key order.
type Run = Vec<(Vec<Value>, Number)>;

/// Deterministically expands `(n, salt)` into a seeded map plus a sorted,
/// deduplicated delta run mixing the four interesting delta shapes: full prune
/// (accumulates to zero), plain accumulate, brand-new key, and a no-op zero delta.
fn seeded_run(n: usize, salt: i64) -> (Run, Run) {
    let key = |a: i64, b: i64| vec![Value::int(a), Value::int(b)];
    let seeds: Run = (0..n as i64)
        .map(|i| (key(i, i % 4), Number::Int(i + 1)))
        .collect();
    let mut deltas: Run = Vec::new();
    for i in 0..n as i64 {
        match (i + salt) % 4 {
            0 => deltas.push((key(i, i % 4), Number::Int(-(i + 1)))),
            1 => deltas.push((key(i, i % 4), Number::Int(7 + salt))),
            2 => deltas.push((key(n as i64 + i, i % 4), Number::Int(5))),
            _ => deltas.push((key(i, i % 4), Number::Int(0))),
        }
    }
    deltas.sort_by(|x, y| x.0.cmp(&y.0));
    deltas.dedup_by(|x, y| x.0 == y.0);
    (seeds, deltas)
}

/// Seeds one storage per path, lands the run both ways, and checks every
/// observable surface: table, length, footprint, and slice-index enumeration.
fn check_shard_parity<S: ViewStorage>(n: usize, shards: usize, salt: i64) {
    let (seeds, deltas) = seeded_run(n, salt);
    let mut sequential = S::new(2);
    sequential.register_index(vec![1]);
    let mut sharded = sequential.clone();
    let seed_refs: Vec<(&[Value], Number)> =
        seeds.iter().map(|(k, v)| (k.as_slice(), *v)).collect();
    sequential.apply_sorted(&seed_refs);
    sharded.apply_sorted(&seed_refs);

    let refs: Vec<(&[Value], Number)> = deltas.iter().map(|(k, v)| (k.as_slice(), *v)).collect();
    sequential.apply_sorted(&refs);
    sharded.apply_sorted_sharded(&refs, shards);

    assert_eq!(sequential.to_table(), sharded.to_table());
    assert_eq!(sequential.len(), sharded.len());
    assert_eq!(sequential.footprint(), sharded.footprint());
    for b in 0..4i64 {
        let mut seq_slice: BTreeMap<Vec<Value>, Number> = BTreeMap::new();
        let mut shard_slice: BTreeMap<Vec<Value>, Number> = BTreeMap::new();
        sequential.for_each_slice(&[1], &[Value::int(b)], |k, v| {
            seq_slice.insert(k.to_vec(), v);
        });
        sharded.for_each_slice(&[1], &[Value::int(b)], |k, v| {
            shard_slice.insert(k.to_vec(), v);
        });
        assert_eq!(seq_slice, shard_slice, "slice b={b} diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One stream, chunked identically, ingested by a sequential ring and by
    /// parallel rings at 2/4/8 threads: tables and exact work counters must agree
    /// for every view on every backend.
    #[test]
    fn parallel_dispatch_equals_sequential_dispatch(
        stream in prop::collection::vec(arb_update(), 1..60),
        chunk in 1usize..16,
    ) {
        for backend in backends() {
            let mut sequential = RingBuilder::new(catalog())
                .backend(backend)
                .ingest_threads(1)
                .build();
            let ids: Vec<ViewId> = VIEWS
                .iter()
                .map(|(name, text)| sequential.create_view(*name, ViewDef::Agca(text)).unwrap())
                .collect();
            for piece in stream.chunks(chunk) {
                sequential.apply_batch(piece).unwrap();
            }
            for threads in [2usize, 4, 8] {
                let mut parallel = RingBuilder::new(catalog())
                    .backend(backend)
                    .ingest_threads(threads)
                    .build();
                for (name, text) in VIEWS {
                    parallel.create_view(*name, ViewDef::Agca(text)).unwrap();
                }
                for piece in stream.chunks(chunk) {
                    parallel.apply_batch(piece).unwrap();
                }
                for (i, (name, _)) in VIEWS.iter().enumerate() {
                    let seq = sequential.view(ids[i]).unwrap();
                    let par = parallel.view_named(name).unwrap();
                    prop_assert_eq!(
                        seq.table(),
                        par.table(),
                        "tables diverge for {} on {} at {} threads",
                        name,
                        backend,
                        threads
                    );
                    prop_assert_eq!(
                        seq.stats(),
                        par.stats(),
                        "work counters diverge for {} on {} at {} threads",
                        name,
                        backend,
                        threads
                    );
                }
            }
        }
    }

    /// `apply_sorted_sharded` == `apply_sorted` on both backends for any shard
    /// count and run size — `n` below `MIN_DELTAS_PER_SHARD * 2` exercises the
    /// sequential fallback, larger `n` the real sharded landing.
    #[test]
    fn sharded_apply_equals_sequential_apply(
        n in 0usize..600,
        shards in 1usize..9,
        salt in 0i64..100,
    ) {
        check_shard_parity::<HashViewStorage>(n, shards, salt);
        check_shard_parity::<OrderedViewStorage>(n, shards, salt);
    }
}
