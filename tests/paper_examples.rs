//! Reproduction of the paper's worked examples and figures as executable assertions:
//! Figure 1, Example 1.2 (including the ∆Q columns of its table), Example 1.3's
//! factorization, Example 3.2's GMR arithmetic, and the degree bookkeeping of
//! Examples 6.2 / 6.5.

use dbring::{
    compile, delta, eval, parse_expr, parse_query, Catalog, Database, Executor, Number, Polynomial,
    RecursiveMemo, Sign, Tuple, Update, UpdateEvent, Value,
};
use dbring_agca::degree::degree;
use dbring_agca::normalize::normalize;
use dbring_compiler::RhsFactor;
use dbring_relations::gmr::{Gmr, GmrExt};
use dbring_relations::tuple;

// ---------------------------------------------------------------------------------------
// Figure 1 / Example 1.1
// ---------------------------------------------------------------------------------------

#[test]
fn figure_1_memoized_delta_table() {
    // f(x) = x², U = {+1, −1}: the seven memoized values for x = −2 … 4.
    let f = Polynomial::monomial(1i64, 2);
    // Expected rows (x, f, ∆f(+1), ∆f(−1), ∆²(+1,+1), ∆²(+1,−1), ∆²(−1,+1), ∆²(−1,−1)).
    let expected = [
        (-2, 4, -3, 5, 2, -2, -2, 2),
        (-1, 1, -1, 3, 2, -2, -2, 2),
        (0, 0, 1, 1, 2, -2, -2, 2),
        (1, 1, 3, -1, 2, -2, -2, 2),
        (2, 4, 5, -3, 2, -2, -2, 2),
        (3, 9, 7, -5, 2, -2, -2, 2),
        (4, 16, 9, -7, 2, -2, -2, 2),
    ];
    // Check both ways: initializing fresh at each x, and walking with pure additions.
    let mut walking = RecursiveMemo::new(&f, &-2, vec![1, -1]);
    for (i, row) in expected.iter().enumerate() {
        let (x, fx, d_p, d_m, dd_pp, dd_pm, dd_mp, dd_mm) = *row;
        let fresh = RecursiveMemo::new(&f, &x, vec![1, -1]);
        for memo in [&fresh, &walking] {
            assert_eq!(memo.current(), fx, "f({x})");
            assert_eq!(memo.value(&[0]), Some(d_p), "∆f({x}, +1)");
            assert_eq!(memo.value(&[1]), Some(d_m), "∆f({x}, -1)");
            assert_eq!(memo.value(&[0, 0]), Some(dd_pp));
            assert_eq!(memo.value(&[0, 1]), Some(dd_pm));
            assert_eq!(memo.value(&[1, 0]), Some(dd_mp));
            assert_eq!(memo.value(&[1, 1]), Some(dd_mm));
            assert_eq!(memo.memoized_values(), 7);
        }
        if i + 1 < expected.len() {
            walking.apply(0);
        }
    }
    // The whole walk used only additions: 3 per step (the ∆² level is constant).
    assert_eq!(walking.additions(), 6 * 3);
}

// ---------------------------------------------------------------------------------------
// Example 1.2: the update trace table, including the ∆Q columns
// ---------------------------------------------------------------------------------------

#[test]
fn example_1_2_table_q_column() {
    let mut catalog = Catalog::new();
    catalog.declare("R", &["A"]).unwrap();
    let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
    let mut exec = Executor::new(compile(&catalog, &q).unwrap());
    let ins = |v: &str| Update::insert("R", vec![Value::str(v)]);
    let del = |v: &str| Update::delete("R", vec![Value::str(v)]);
    // The Q(R) column of the paper's table.
    let steps = [
        (ins("c"), 1),
        (ins("c"), 4),
        (ins("d"), 5),
        (ins("c"), 10),
        (del("d"), 9),
        (ins("c"), 16),
        (del("c"), 9),
    ];
    for (update, expected) in steps {
        exec.apply(&update).unwrap();
        assert_eq!(exec.output_value(&[]), Number::Int(expected));
    }
}

#[test]
fn example_1_2_table_delta_columns() {
    // The ∆Q(R, ·) columns: ∆Q(R, ±R(a)) = 1 ± 2 * (count of a in R), evaluated
    // symbolically with the delta transform and the reference evaluator.
    let mut db = Database::new();
    db.declare("R", &["A"]).unwrap();
    let q = parse_expr("Sum(R(x) * R(y) * (x = y))").unwrap();
    let plus = UpdateEvent::insert("R", &["a"]);
    let minus = UpdateEvent::delete("R", &["a"]);
    let d_plus = delta(&q, &plus);
    let d_minus = delta(&q, &minus);

    let delta_value = |db: &Database, d: &dbring::Expr, v: &str| -> i64 {
        let binding = Tuple::singleton("a", Value::str(v));
        eval(d, db, &binding)
            .unwrap()
            .get(&Tuple::empty())
            .as_i64()
            .unwrap()
    };

    // Rows of the paper's table: (R contents as inserts so far, +R(c), -R(c), +R(d), -R(d)).
    let expected_rows: [(&[&str], i64, i64, i64, i64); 5] = [
        (&[], 1, 1, 1, 1),
        (&["c"], 3, -1, 1, 1),
        (&["c", "c"], 5, -3, 1, 1),
        (&["c", "c", "d"], 5, -3, 3, -1),
        (&["c", "c", "c", "d"], 7, -5, 3, -1),
    ];
    for (contents, pc, mc, pd, md) in expected_rows {
        let mut db = db.clone();
        for v in contents {
            db.insert("R", vec![Value::str(*v)]).unwrap();
        }
        assert_eq!(delta_value(&db, &d_plus, "c"), pc, "+R(c) on {contents:?}");
        assert_eq!(delta_value(&db, &d_minus, "c"), mc, "-R(c) on {contents:?}");
        assert_eq!(delta_value(&db, &d_plus, "d"), pd, "+R(d) on {contents:?}");
        assert_eq!(delta_value(&db, &d_minus, "d"), md, "-R(d) on {contents:?}");
    }
}

#[test]
fn example_1_2_second_delta_is_constant() {
    // ∆²Q(R, ±1 R(a1), ±2 R(a2)) = ±1 ±2 2 if a1 = a2, else 0 — independent of R.
    let q = parse_expr("Sum(R(x) * R(y) * (x = y))").unwrap();
    let mut db = Database::new();
    db.declare("R", &["A"]).unwrap();
    let mut loaded = db.clone();
    for i in 0..5 {
        loaded.insert("R", vec![Value::int(i)]).unwrap();
    }
    for (s1, s2, same, expected) in [
        (Sign::Insert, Sign::Insert, true, 2i64),
        (Sign::Delete, Sign::Delete, true, 2),
        (Sign::Insert, Sign::Delete, true, -2),
        (Sign::Delete, Sign::Insert, true, -2),
        (Sign::Insert, Sign::Insert, false, 0),
        (Sign::Insert, Sign::Delete, false, 0),
    ] {
        let e1 = UpdateEvent {
            relation: "R".into(),
            sign: s1,
            params: vec!["a1".into()],
        };
        let e2 = UpdateEvent {
            relation: "R".into(),
            sign: s2,
            params: vec!["a2".into()],
        };
        let dd = delta(&delta(&q, &e1), &e2);
        let binding = Tuple::from_pairs(vec![
            ("a1", Value::int(7)),
            ("a2", Value::int(if same { 7 } else { 8 })),
        ]);
        for database in [&db, &loaded] {
            let value = eval(&dd, database, &binding).unwrap().get(&Tuple::empty());
            assert_eq!(value, Number::Int(expected), "{s1:?} {s2:?} same={same}");
        }
    }
}

// ---------------------------------------------------------------------------------------
// Example 1.3: factorization of the delta of the three-way join aggregate
// ---------------------------------------------------------------------------------------

#[test]
fn example_1_3_delta_factorizes_and_matches_the_two_subaggregates() {
    let mut db = Database::new();
    db.declare("R", &["A", "B"]).unwrap();
    db.declare("S", &["C", "D"]).unwrap();
    db.declare("T", &["E", "F"]).unwrap();
    // Load some data.
    for (a, b) in [(1, 10), (2, 10), (3, 11), (4, 12)] {
        db.insert("R", vec![Value::int(a), Value::int(b)]).unwrap();
    }
    for (e, f) in [(20, 5), (20, 6), (21, 7)] {
        db.insert("T", vec![Value::int(e), Value::int(f)]).unwrap();
    }
    let q = parse_expr("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)").unwrap();
    // ∆Q(+S(c, d)) must equal (Σ_{R.B = c} A) * (Σ_{T.E = d} F) for any (c, d).
    let event = UpdateEvent::insert("S", &["pc", "pd"]);
    let d = delta(&q, &event);
    for (c, dd, expected) in [
        (10, 20, (1 + 2) * (5 + 6)),
        (10, 21, (1 + 2) * 7),
        (11, 20, 3 * 11),
        (12, 99, 0),
        (99, 20, 0),
    ] {
        let binding = Tuple::from_pairs(vec![("pc", Value::int(c)), ("pd", Value::int(dd))]);
        let change = eval(&d, &db, &binding).unwrap().get(&Tuple::empty());
        assert_eq!(change, Number::Int(expected), "∆Q(+S({c}, {dd}))");
    }
    // And the compiled program expresses exactly that as a product of two lookups.
    let sql =
        dbring::parse_sql("SELECT SUM(A * F) FROM R, S, T WHERE B = C AND D = E", &db).unwrap();
    let program = compile(&db, &sql).unwrap();
    let stmt = program
        .trigger("S", Sign::Insert)
        .unwrap()
        .statements
        .iter()
        .find(|s| s.target == program.output)
        .unwrap();
    let lookup_count = stmt
        .factors
        .iter()
        .filter(|f| matches!(f, RhsFactor::MapLookup { .. }))
        .count();
    assert_eq!(lookup_count, 2);
}

// ---------------------------------------------------------------------------------------
// Example 3.2: GMR addition and multiplication
// ---------------------------------------------------------------------------------------

#[test]
fn example_3_2_gmr_arithmetic() {
    let r: Gmr<i64> = Gmr::from_pairs(vec![
        (tuple! { "A" => "a1" }, 2),
        (tuple! { "A" => "a2", "B" => "b" }, 3),
    ]);
    let s: Gmr<i64> = Gmr::from_pairs(vec![(tuple! { "C" => "c" }, 5)]);
    let t: Gmr<i64> = Gmr::from_pairs(vec![
        (tuple! { "C" => "c" }, 7),
        (tuple! { "B" => "b", "C" => "c" }, 11),
    ]);
    let s_plus_t = s.add(&t);
    assert_eq!(s_plus_t.get(&tuple! { "C" => "c" }), 12);
    assert_eq!(s_plus_t.get(&tuple! { "B" => "b", "C" => "c" }), 11);
    let product = r.mul(&s_plus_t);
    assert_eq!(product.get(&tuple! { "A" => "a1", "C" => "c" }), 2 * 12);
    assert_eq!(
        product.get(&tuple! { "A" => "a1", "B" => "b", "C" => "c" }),
        2 * 11
    );
    assert_eq!(
        product.get(&tuple! { "A" => "a2", "B" => "b", "C" => "c" }),
        3 * 12 + 3 * 11
    );
    assert_eq!(product.support_size(), 3);
    assert!(product.common_schema().is_none());
}

// ---------------------------------------------------------------------------------------
// Examples 6.2 / 6.5: degrees along the delta chain
// ---------------------------------------------------------------------------------------

#[test]
fn examples_6_2_and_6_5_degree_chain() {
    let q = parse_expr("Sum(C(c, n) * C(c2, n))").unwrap();
    assert_eq!(degree(&q), 2);
    let e1 = UpdateEvent::insert("C", &["c1", "n1"]);
    let d1 = delta(&q, &e1);
    assert_eq!(degree(&d1), 1);
    let e2 = UpdateEvent::insert("C", &["c2p", "n2p"]);
    let d2 = delta(&d1, &e2);
    assert_eq!(degree(&d2), 0);
    // The normalized second delta contains exactly the two monomials of Example 6.5.
    let p2 = normalize(&d2);
    assert_eq!(p2.monomials.len(), 2);
    // Any further delta vanishes.
    let d3 = delta(&d2, &UpdateEvent::insert("C", &["x", "y"]));
    assert!(normalize(&d3).is_zero());
}
