//! Behavioral coverage of the [`dbring::Ring`] engine through the public facade: view
//! lifecycle (create / late-create with backfill / drop), the one-ingest-path contract
//! with per-relation routing, the dedicated catalog errors, and the read handles.

use dbring::{
    Catalog, Error, Number, Ring, RingBuilder, RuntimeError, StorageBackend, Update, Value, ViewDef,
};

fn shop_catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("Sales", &["cust", "cents", "qty"]).unwrap();
    c.declare("Returns", &["cust", "cents", "qty"]).unwrap();
    c
}

fn sale(cust: i64, cents: i64, qty: i64) -> Update {
    Update::insert(
        "Sales",
        vec![Value::int(cust), Value::int(cents), Value::int(qty)],
    )
}

fn ret(cust: i64, cents: i64, qty: i64) -> Update {
    Update::insert(
        "Returns",
        vec![Value::int(cust), Value::int(cents), Value::int(qty)],
    )
}

/// The three `ViewDef` spellings of the same query must produce views that agree on
/// every read.
#[test]
fn sql_agca_and_parsed_view_defs_agree() {
    let catalog = shop_catalog();
    let mut ring = RingBuilder::new(catalog.clone()).build();
    let via_sql = ring
        .create_view(
            "via_sql",
            ViewDef::Sql("SELECT cust, SUM(cents * qty) AS r FROM Sales GROUP BY cust"),
        )
        .unwrap();
    let via_agca = ring
        .create_view(
            "via_agca",
            ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
        )
        .unwrap();
    let parsed = dbring::parse_query("q[c] := Sum(Sales(c, p, n) * p * n)").unwrap();
    let via_query = ring
        .create_view("via_query", ViewDef::Query(parsed))
        .unwrap();
    ring.apply_all(&[sale(1, 100, 2), sale(2, 50, 1), sale(1, 10, 3)])
        .unwrap();
    let table = ring.view(via_sql).unwrap().table();
    assert_eq!(table, ring.view(via_agca).unwrap().table());
    assert_eq!(table, ring.view(via_query).unwrap().table());
    assert_eq!(table[&vec![Value::int(1)]], Number::Int(230));
}

/// One stream, many views, routed dispatch: views only pay for relations they read,
/// and the ring agrees with independently maintained views on tables *and* work.
#[test]
fn routed_ingest_matches_independent_views_exactly() {
    let catalog = shop_catalog();
    let defs: &[(&str, &str)] = &[
        ("revenue", "q[c] := Sum(Sales(c, p, n) * p * n)"),
        ("orders", "q[c] := Sum(Sales(c, p, n))"),
        ("refunds", "q[c] := Sum(Returns(c, p, n) * p * n)"),
        ("units", "q[c] := Sum(Sales(c, p, n) * n)"),
    ];
    let updates: Vec<Update> = (0..60)
        .map(|i| {
            if i % 5 == 4 {
                ret(i % 7, 100 * (i % 3 + 1), 1)
            } else {
                sale(i % 7, 100 * (i % 4 + 1), i % 3 + 1)
            }
        })
        .collect();

    for backend in [StorageBackend::Hash, StorageBackend::Ordered] {
        let mut ring = RingBuilder::new(catalog.clone()).backend(backend).build();
        let ids: Vec<_> = defs
            .iter()
            .map(|(name, text)| ring.create_view(*name, ViewDef::Agca(text)).unwrap())
            .collect();
        // Half per update, half batched: both ingest paths route identically.
        let (first, second) = updates.split_at(updates.len() / 2);
        ring.apply_all(first).unwrap();
        for chunk in second.chunks(8) {
            ring.apply_batch(chunk).unwrap();
        }

        let mut independent: Vec<dbring::IncrementalView> = defs
            .iter()
            .map(|(_, text)| dbring::IncrementalView::from_agca(&catalog, text).unwrap())
            .collect();
        for view in &mut independent {
            view.apply_all(first).unwrap();
            for chunk in second.chunks(8) {
                view.apply_batch(chunk).unwrap();
            }
        }

        for (i, &id) in ids.iter().enumerate() {
            let hosted = ring.view(id).unwrap();
            assert_eq!(hosted.table(), independent[i].table(), "{}", hosted.name());
            // Routed dispatch == per-view apply, operation for operation.
            assert_eq!(hosted.stats(), independent[i].stats(), "{}", hosted.name());
        }
        // Routing is visible: the refunds view saw only the Returns updates.
        let returns_seen = updates.iter().filter(|u| u.relation == "Returns").count() as u64;
        assert_eq!(
            ring.view_named("refunds").unwrap().stats().updates,
            returns_seen
        );
    }
}

/// Late registration: a view created after N updates equals one that watched the whole
/// stream, and keeps agreeing afterwards — including a view over a relation that had
/// no reader at all while the updates were ingested.
#[test]
fn late_views_are_backfilled_and_stay_consistent() {
    let catalog = shop_catalog();
    let mut ring = RingBuilder::new(catalog.clone()).build();
    ring.create_view(
        "revenue",
        ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
    )
    .unwrap();
    let prefix: Vec<Update> = (0..30).map(|i| sale(i % 4, 10 * (i % 5 + 1), 2)).collect();
    ring.apply_all(&prefix).unwrap();
    // Nobody read Returns so far; the snapshot still has it.
    ring.apply(&ret(1, 500, 1)).unwrap();

    let late_sales = ring
        .create_view("units", ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * n)"))
        .unwrap();
    let late_returns = ring
        .create_view(
            "refunds",
            ViewDef::Agca("q[c] := Sum(Returns(c, p, n) * p * n)"),
        )
        .unwrap();

    let mut replayed_units =
        dbring::IncrementalView::from_agca(&catalog, "q[c] := Sum(Sales(c, p, n) * n)").unwrap();
    replayed_units.apply_all(&prefix).unwrap();
    assert_eq!(
        ring.view(late_sales).unwrap().table(),
        replayed_units.table()
    );
    assert_eq!(
        ring.view(late_returns).unwrap().value(&[Value::int(1)]),
        Number::Int(500)
    );

    // Subsequent maintenance keeps all of them in lockstep.
    let suffix: Vec<Update> = (0..20).map(|i| sale(i % 4, 30, i % 3 + 1)).collect();
    ring.apply_batch(&suffix).unwrap();
    replayed_units.apply_batch(&suffix).unwrap();
    assert_eq!(
        ring.view(late_sales).unwrap().table(),
        replayed_units.table()
    );
}

/// The `Catalog = Database` alias footgun: a view over an undeclared relation fails
/// with the dedicated error, naming both the view and the relation, before compile.
#[test]
fn undeclared_relations_fail_fast_with_dedicated_errors() {
    let mut ring = RingBuilder::new(shop_catalog()).build();
    let err = ring
        .create_view("typo", ViewDef::Agca("q[c] := Sum(Sale(c, p, n) * p * n)"))
        .unwrap_err();
    match err {
        Error::UnknownRelation {
            ref relation,
            ref view,
        } => {
            assert_eq!(relation, "Sale");
            assert_eq!(view.as_deref(), Some("typo"));
        }
        ref other => panic!("expected UnknownRelation, got {other:?}"),
    }
    // The SQL path catches the same typo even earlier, while resolving the FROM list.
    assert!(matches!(
        ring.create_view(
            "typo",
            ViewDef::Sql("SELECT cust, SUM(cents) AS c FROM Sale GROUP BY cust"),
        ),
        Err(Error::Parse(_))
    ));
    // Ingest against an undeclared relation is the same family of error, minus a view.
    let err = ring.insert("Sale", vec![Value::int(1)]).unwrap_err();
    assert!(matches!(err, Error::UnknownRelation { view: None, .. }));
    // Wrong arity to a *declared* relation is a runtime arity error with a source chain.
    let err = ring.insert("Sales", vec![Value::int(1)]).unwrap_err();
    assert!(matches!(
        err,
        Error::Runtime(RuntimeError::ArityMismatch { .. })
    ));
    assert!(std::error::Error::source(&err).is_some());
}

/// Lifecycle: duplicate names, drops freeing names, stale ids staying dead, and
/// `Ring::views` reflecting the live set.
#[test]
fn view_lifecycle_and_identity() {
    let mut ring = Ring::builder(shop_catalog()).build();
    let a = ring
        .create_view("a", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
        .unwrap();
    assert!(matches!(
        ring.create_view("a", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))")),
        Err(Error::DuplicateView { .. })
    ));
    let b = ring
        .create_view("b", ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * n)"))
        .unwrap();
    ring.apply(&sale(1, 10, 2)).unwrap();
    ring.drop_view(a).unwrap();
    assert_eq!(ring.len(), 1);
    assert!(matches!(ring.view(a), Err(Error::UnknownView { .. })));
    assert!(matches!(ring.drop_view(a), Err(Error::UnknownView { .. })));
    // The name is free again; the stale id stays dead.
    let a2 = ring
        .create_view("a", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
        .unwrap();
    assert_ne!(a, a2);
    assert!(ring.view(a).is_err());
    // The recreated view was backfilled: it sees the pre-drop update.
    assert_eq!(
        ring.view(a2).unwrap().value(&[Value::int(1)]),
        Number::Int(1)
    );
    let names: Vec<String> = ring.views().map(|v| v.name().to_string()).collect();
    assert_eq!(names, vec!["b", "a"]);
    assert_eq!(ring.view_id("b"), Some(b));
    assert_eq!(ring.updates_ingested(), 1);
}

/// Read handles expose the compiled artifacts and per-view accounting.
#[test]
fn view_handles_expose_programs_footprints_and_stats() {
    let mut ring = RingBuilder::new(shop_catalog())
        .backend(StorageBackend::Ordered)
        .build();
    let id = ring
        .create_view(
            "revenue",
            ViewDef::Sql("SELECT cust, SUM(cents * qty) AS r FROM Sales GROUP BY cust"),
        )
        .unwrap();
    ring.apply_all(&[sale(1, 100, 1), sale(2, 200, 2)]).unwrap();
    let view = ring.view(id).unwrap();
    assert_eq!(view.name(), "revenue");
    assert_eq!(view.engine_name(), "recursive-ivm@ordered");
    assert!(view.program().describe().contains("on +Sales"));
    assert!(view.nc0c_source().contains("void on_insert_Sales"));
    assert_eq!(view.query().group_by.len(), 1);
    assert!(view.total_entries() >= 2);
    assert!(view.storage_footprint().entries >= 2);
    assert_eq!(view.stats().updates, 2);
    assert_eq!(view.value(&[Value::int(2)]), Number::Int(400));
    assert_eq!(view.table().len(), 2);
    let mut view = ring.view_mut(id).unwrap();
    view.reset_stats();
    assert_eq!(ring.view(id).unwrap().stats().updates, 0);
}

/// Rings can start from a loaded database, and snapshot materialization round-trips
/// through further ingest.
#[test]
fn from_database_seeds_catalog_and_snapshot() {
    let mut db = shop_catalog();
    db.apply_all(&[sale(1, 100, 1), sale(1, 50, 2), ret(1, 25, 1)])
        .unwrap();
    let mut ring = RingBuilder::from_database(db).build();
    let net = ring
        .create_view(
            "net_by_cust",
            ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
        )
        .unwrap();
    assert_eq!(
        ring.view(net).unwrap().value(&[Value::int(1)]),
        Number::Int(200)
    );
    ring.apply(&sale(1, 1, 1)).unwrap();
    assert_eq!(
        ring.view(net).unwrap().value(&[Value::int(1)]),
        Number::Int(201)
    );
    let snapshot = ring.base_snapshot().expect("tracking is on");
    assert_eq!(snapshot.total_support(), 4);
    assert_eq!(snapshot.columns("Sales"), ring.catalog().columns("Sales"));
}

/// `apply_all` keeps its prevalidation contract under staged ingest: catalog errors
/// anywhere in the sequence land nothing, value errors keep `AtUpdate { index }`, and
/// the failing update itself now lands nowhere — tables *and* counters, even at
/// sibling views that would have accepted it.
#[test]
fn apply_all_prevalidates_and_keeps_indexed_errors() {
    let mut ring = RingBuilder::new(shop_catalog()).build();
    // `orders` ignores the payload columns, so it accepts tuples that `revenue`
    // (which multiplies them) chokes on. Created first, it sits at the lower slot
    // and is staged before revenue fails — the rollback is real, not a skip.
    let orders = ring
        .create_view("orders", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
        .unwrap();
    let revenue = ring
        .create_view(
            "revenue",
            ViewDef::Agca("q[c] := Sum(Sales(c, p, n) * p * n)"),
        )
        .unwrap();

    // An undeclared relation anywhere in the sequence: prevalidation fails the whole
    // call before anything is applied.
    let bad_catalog = [
        sale(1, 10, 1),
        Update::insert("Ghost", vec![Value::int(1)]),
        sale(2, 20, 1),
    ];
    let err = ring.apply_all(&bad_catalog).unwrap_err();
    assert!(matches!(err, Error::UnknownRelation { .. }));
    assert!(ring.view(orders).unwrap().table().is_empty());
    assert_eq!(ring.updates_ingested(), 0);
    assert_eq!(ring.view(orders).unwrap().stats().updates, 0);

    // A wrong arity against a declared relation is also caught up front.
    let bad_arity = [sale(1, 10, 1), Update::insert("Sales", vec![Value::int(1)])];
    assert!(matches!(
        ring.apply_all(&bad_arity).unwrap_err(),
        Error::Runtime(RuntimeError::ArityMismatch { .. })
    ));
    assert_eq!(ring.updates_ingested(), 0);

    // A value error past prevalidation stops at the failing update with its index:
    // update 0 is applied everywhere, update 1 lands nowhere — including at `orders`,
    // which had already staged it successfully before `revenue` failed.
    let bad_value = [
        sale(1, 10, 2),
        Update::insert(
            "Sales",
            vec![Value::int(2), Value::str("x"), Value::str("y")],
        ),
        sale(3, 30, 1),
    ];
    let err = ring.apply_all(&bad_value).unwrap_err();
    match err {
        Error::Runtime(RuntimeError::AtUpdate { index, .. }) => assert_eq!(index, 1),
        other => panic!("expected AtUpdate, got {other:?}"),
    }
    assert_eq!(ring.updates_ingested(), 1, "only update 0 landed");
    assert_eq!(
        ring.view(revenue).unwrap().value(&[Value::int(1)]),
        Number::Int(20)
    );
    assert_eq!(
        ring.view(orders).unwrap().value(&[Value::int(2)]),
        Number::Int(0),
        "the failing update rolled back at the view that accepted it"
    );
    assert_eq!(ring.view(orders).unwrap().stats().updates, 1);
    assert_eq!(ring.view(revenue).unwrap().stats().updates, 1);
}

/// `without_base_tracking` trades late registration for zero base state, and says so.
#[test]
fn untracked_rings_refuse_late_registration() {
    let mut ring = RingBuilder::new(shop_catalog())
        .without_base_tracking()
        .build();
    // Creating views before any ingest is fine (there is nothing to backfill).
    ring.create_view("early", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
        .unwrap();
    ring.apply(&sale(1, 10, 1)).unwrap();
    assert!(ring.base_snapshot().is_none());
    let err = ring
        .create_view("late", ViewDef::Agca("q[c] := Sum(Sales(c, p, n))"))
        .unwrap_err();
    assert!(matches!(err, Error::BackfillUnavailable { .. }));
    assert!(err.to_string().contains("backfill"));
    // The early view is still maintained.
    assert_eq!(
        ring.view_named("early").unwrap().value(&[Value::int(1)]),
        Number::Int(1)
    );
}
