//! Property tests for the snapshot read path: a published [`ViewSnapshot`] is always
//! a *batch-consistent prefix* of the update stream, and once acquired it never
//! changes — no matter the storage backend, ingest-thread count, staging mode, or a
//! concurrently running writer.
//!
//! 1. **Prefix equivalence**: after every committed batch, each view's snapshot table
//!    equals the table of a plain reference ring that replayed exactly that prefix —
//!    across hash/ordered × ingest threads {1, 4} × staged/direct ingest.
//! 2. **Immutability**: snapshots held across later batches still compare equal to
//!    the prefix table they were acquired at.
//! 3. **No torn reads**: with a real writer thread committing batches while reader
//!    threads acquire concurrently, every observed snapshot matches a precomputed
//!    oracle table for its `ingested()` count — a reader can never see half a batch.
//! 4. **Quarantine**: a view poisoned mid-batch surfaces [`Error::ViewPoisoned`] at
//!    snapshot-acquire time, and repairs republish readable snapshots.
//! 5. **Release on drop** (footprint regression): `drop_view` evicts the published
//!    snapshot promptly; only handles already acquired keep the data alive.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dbring::fault::with_fault;
use dbring::{
    Catalog, Error, FaultOp, FaultPlan, FaultStorage, HashViewStorage, Number, Ring, RingBuilder,
    StorageBackend, Update, Value, ViewDef, ViewSnapshot,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.declare("R", &["A", "B"]).unwrap();
    c.declare("S", &["X"]).unwrap();
    c
}

/// Probe-only, self-join, single- and multi-relation shapes, all integer-valued so
/// snapshot tables compare bit-exactly against reference tables.
const VIEWS: &[(&str, &str)] = &[
    ("r_by_a", "q[a] := Sum(R(a, b) * b)"),
    ("r_selfjoin", "q := Sum(R(a, b) * R(a2, b) * (a = a2))"),
    ("s_count", "q := Sum(S(x))"),
    ("rs_join", "q[a] := Sum(R(a, b) * S(b))"),
];

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..4, 0i64..3, any::<bool>()).prop_map(|(a, b, ins)| {
            let values = vec![Value::int(a), Value::int(b)];
            if ins {
                Update::insert("R", values)
            } else {
                Update::delete("R", values)
            }
        }),
        (0i64..3, any::<bool>()).prop_map(|(x, ins)| {
            let values = vec![Value::int(x)];
            if ins {
                Update::insert("S", values)
            } else {
                Update::delete("S", values)
            }
        }),
    ]
}

/// Every serving configuration the snapshot contract must hold under:
/// backend × ingest threads × staged/direct ingest.
const CONFIGS: &[(StorageBackend, usize, bool)] = &[
    (StorageBackend::Hash, 1, true),
    (StorageBackend::Hash, 1, false),
    (StorageBackend::Hash, 4, true),
    (StorageBackend::Hash, 4, false),
    (StorageBackend::Ordered, 1, true),
    (StorageBackend::Ordered, 4, true),
];

fn build_ring(backend: StorageBackend, threads: usize, staged: bool) -> Ring {
    let mut builder = RingBuilder::new(catalog())
        .backend(backend)
        .ingest_threads(threads);
    if !staged {
        builder = builder.without_staged_ingest();
    }
    let mut ring = builder.build();
    for (name, text) in VIEWS {
        ring.create_view(*name, ViewDef::Agca(text)).unwrap();
    }
    ring
}

type Tables = Vec<(String, BTreeMap<Vec<Value>, Number>)>;

fn reference_tables(ring: &Ring) -> Tables {
    ring.views()
        .map(|v| (v.name().to_string(), v.table()))
        .collect()
}

fn snapshot_tables(ring: &Ring) -> Vec<(String, ViewSnapshot)> {
    VIEWS
        .iter()
        .map(|(name, _)| (name.to_string(), ring.snapshot_named(name).unwrap()))
        .collect()
}

/// Drives properties 1 and 2 for one configuration: batch-by-batch prefix
/// equivalence, plus immutability of every snapshot acquired along the way.
fn check_prefix_equivalence(
    backend: StorageBackend,
    threads: usize,
    staged: bool,
    updates: &[Update],
    batch_size: usize,
) -> Result<(), TestCaseError> {
    let mut live = build_ring(backend, threads, staged);
    let mut reference = build_ring(backend, 1, true);
    let _handle = live.reader(); // serving mode on: every commit publishes

    // (snapshot, the prefix table it must keep answering with)
    let mut held: Vec<(ViewSnapshot, BTreeMap<Vec<Value>, Number>)> = Vec::new();
    let mut last_epoch: HashMap<String, u64> = HashMap::new();

    for chunk in updates.chunks(batch_size) {
        live.apply_batch(chunk).unwrap();
        reference.apply_batch(chunk).unwrap();

        let expected = reference_tables(&reference);
        for (name, snapshot) in snapshot_tables(&live) {
            let want = &expected.iter().find(|(n, _)| *n == name).unwrap().1;
            prop_assert_eq!(
                &snapshot.table(),
                want,
                "snapshot of {} diverged from the replayed prefix \
                 (backend {:?}, threads {}, staged {})",
                name,
                backend,
                threads,
                staged
            );
            // Views untouched by the batch keep their (still-current) older
            // publication, so `ingested` may lag but never lead.
            prop_assert!(snapshot.ingested() <= live.updates_ingested());
            let seen = last_epoch.entry(name.clone()).or_insert(0);
            prop_assert!(
                snapshot.epoch() >= *seen,
                "publication epoch of {} went backwards",
                &name
            );
            *seen = snapshot.epoch();
            held.push((snapshot, want.clone()));
        }
    }

    // Property 2: every snapshot acquired above is frozen at its prefix.
    for (snapshot, want) in &held {
        prop_assert_eq!(
            &snapshot.table(),
            want,
            "held snapshot of {} changed under later ingest",
            snapshot.name()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Properties 1 + 2 over random streams and batch sizes, across every
    /// serving configuration.
    #[test]
    fn snapshots_are_immutable_replay_prefixes(
        updates in prop::collection::vec(arb_update(), 1..32),
        batch_size in 1usize..8,
    ) {
        for &(backend, threads, staged) in CONFIGS {
            check_prefix_equivalence(backend, threads, staged, &updates, batch_size)?;
        }
    }
}

/// A deterministic pseudo-random stream (no RNG dependency in the oracle test).
fn synthetic_stream(len: usize) -> Vec<Update> {
    let mut state = 0x2545F4914F6CDD1Du64;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = ((state >> 33) % 4) as i64;
            let b = ((state >> 21) % 3) as i64;
            match (state >> 13) % 4 {
                0 => Update::delete("R", vec![Value::int(a), Value::int(b)]),
                1 => Update::insert("S", vec![Value::int(b)]),
                2 => Update::delete("S", vec![Value::int(b)]),
                _ => Update::insert("R", vec![Value::int(a), Value::int(b)]),
            }
        })
        .collect()
}

/// Property 3: concurrent readers never observe a torn batch. The oracle maps every
/// committed prefix length to its expected table, computed on a reference ring
/// *before* the live run — so reader assertions race nothing.
#[test]
fn concurrent_readers_see_only_committed_prefixes() {
    const BATCH: usize = 16;
    const STREAM: usize = 960;
    let stream = synthetic_stream(STREAM);

    // Oracle: expected r_by_a table per committed-prefix `updates_ingested` count.
    // The counter advances by normalized batch weight, so it is read off the
    // reference ring rather than recomputed from raw chunk lengths.
    let mut reference = build_ring(StorageBackend::Hash, 1, true);
    let mut oracle: HashMap<u64, BTreeMap<Vec<Value>, Number>> = HashMap::new();
    oracle.insert(0, reference.view_named("r_by_a").unwrap().table());
    for chunk in stream.chunks(BATCH) {
        reference.apply_batch(chunk).unwrap();
        oracle.insert(
            reference.updates_ingested(),
            reference.view_named("r_by_a").unwrap().table(),
        );
    }
    let final_ingested = reference.updates_ingested();
    let oracle = Arc::new(oracle);

    let mut live = build_ring(StorageBackend::Hash, 4, true);
    let handle = live.reader();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let handle = handle.clone();
            let done = Arc::clone(&done);
            let oracle = Arc::clone(&oracle);
            std::thread::spawn(move || {
                let mut observed = 0usize;
                let mut last_ingested = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snapshot = handle.snapshot_named("r_by_a").unwrap();
                    let expected = oracle.get(&snapshot.ingested()).unwrap_or_else(|| {
                        panic!(
                            "snapshot at ingested={} is not a committed prefix",
                            snapshot.ingested()
                        )
                    });
                    assert_eq!(
                        &snapshot.table(),
                        expected,
                        "torn read at ingested={}",
                        snapshot.ingested()
                    );
                    assert!(snapshot.ingested() >= last_ingested);
                    last_ingested = snapshot.ingested();
                    observed += 1;
                }
                observed
            })
        })
        .collect();

    for chunk in stream.chunks(BATCH) {
        live.apply_batch(chunk).unwrap();
    }
    done.store(true, Ordering::Relaxed);
    let total: usize = readers.into_iter().map(|r| r.join().unwrap()).sum();
    assert!(total > 0, "readers never ran");
    assert_eq!(
        handle.snapshot_named("r_by_a").unwrap().table(),
        oracle[&final_ingested],
        "final snapshot != full replay"
    );
}

/// Property 4: a poisoned view surfaces `ViewPoisoned` at acquire time; healthy
/// siblings keep serving; repair republishes a readable snapshot.
#[test]
fn poisoned_views_refuse_snapshot_acquire_until_repaired() {
    let mut ring = RingBuilder::new(catalog()).build();
    let poisoned_id = ring
        .create_view_with::<FaultStorage<HashViewStorage>>("r_by_a", ViewDef::Agca(VIEWS[0].1))
        .unwrap();
    ring.create_view("s_count", ViewDef::Agca(VIEWS[2].1))
        .unwrap();
    let handle = ring.reader();

    let healthy = vec![
        Update::insert("R", vec![Value::int(1), Value::int(2)]),
        Update::insert("S", vec![Value::int(2)]),
    ];
    ring.apply_batch(&healthy).unwrap();
    let pre_poison = handle.snapshot_named("r_by_a").unwrap();

    // Panic r_by_a's storage at its batch flush: the batch lands nowhere and the
    // view is quarantined. (The flush is the one storage operation every batch is
    // guaranteed to perform on this trigger shape.)
    let batch = vec![Update::insert("R", vec![Value::int(2), Value::int(1)])];
    let outcome = with_fault(FaultPlan::new(FaultOp::ApplySorted, 0), || {
        ring.apply_batch(&batch)
    });
    assert!(outcome.is_err(), "injected panic must fail the batch");

    assert!(
        matches!(
            handle.snapshot_named("r_by_a"),
            Err(Error::ViewPoisoned { .. })
        ),
        "poisoned view must refuse snapshot acquire"
    );
    // The snapshot acquired before the poisoning still serves its old prefix.
    assert_eq!(pre_poison.value(&[Value::int(1)]), Number::Int(2));
    // Healthy siblings are unaffected.
    assert_eq!(
        handle.snapshot_named("s_count").unwrap().value(&[]),
        Number::Int(1)
    );

    let id = poisoned_id;
    ring.repair_view(id).unwrap();
    assert_eq!(
        handle
            .snapshot_named("r_by_a")
            .unwrap()
            .value(&[Value::int(1)]),
        Number::Int(2),
        "repair must republish a readable snapshot"
    );
}

/// Property 5 (footprint regression): `drop_view` releases the published snapshot
/// promptly — the store's footprint returns to zero even while an already-acquired
/// handle keeps its own (Arc-held) copy alive and readable.
#[test]
fn drop_view_releases_published_snapshots() {
    let mut ring = RingBuilder::new(catalog()).build();
    let id = ring
        .create_view("r_by_a", ViewDef::Agca(VIEWS[0].1))
        .unwrap();
    let handle = ring.reader();

    let batch: Vec<Update> = (0..8)
        .map(|i| Update::insert("R", vec![Value::int(i % 4), Value::int(1 + i % 2)]))
        .collect();
    ring.apply_batch(&batch).unwrap();

    assert!(ring.snapshot_footprint() > 0, "published entries expected");
    let held = handle.snapshot_named("r_by_a").unwrap();
    let held_table = held.table();
    assert!(!held_table.is_empty());

    ring.drop_view(id).unwrap();
    assert_eq!(
        ring.snapshot_footprint(),
        0,
        "drop_view must evict the published snapshot"
    );
    assert!(matches!(
        handle.snapshot_named("r_by_a"),
        Err(Error::UnknownView { .. })
    ));
    // The acquired handle's data is Arc-held: still readable, still frozen.
    assert_eq!(held.table(), held_table);

    // Recreating a view after the drop serves fresh snapshots again.
    ring.create_view("r_by_a", ViewDef::Agca(VIEWS[0].1))
        .unwrap();
    ring.apply_batch(&batch).unwrap();
    assert!(ring.snapshot_footprint() > 0);
    assert!(handle.snapshot_named("r_by_a").is_ok());
}
