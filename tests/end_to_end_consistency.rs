//! End-to-end equivalence of the three maintenance strategies on every workload: the
//! compiled recursive-IVM programs must produce exactly the same result tables as
//! classical first-order IVM and naive re-evaluation, across seeds, update mixes and
//! starting databases.

use dbring::IncrementalView;
use dbring_integration_tests::{
    assert_strategies_agree, assert_tables_match, run_all_strategies, stream_with_oracle,
};
use dbring_workloads::{
    all_workloads, customers_by_nation, rst_sum_join, sales_revenue, self_join_count,
    WorkloadConfig,
};

#[test]
fn all_strategies_agree_on_all_workloads() {
    for seed in [1u64, 2, 3] {
        for workload in all_workloads(WorkloadConfig::small(seed)) {
            assert_strategies_agree(&workload);
        }
    }
}

#[test]
fn all_strategies_agree_with_heavy_deletions() {
    let config = WorkloadConfig {
        seed: 99,
        initial_size: 80,
        stream_length: 160,
        domain_size: 6,
        delete_fraction: 0.45,
    };
    for workload in all_workloads(config) {
        assert_strategies_agree(&workload);
    }
}

#[test]
fn all_strategies_agree_with_insert_only_streams() {
    let config = WorkloadConfig {
        seed: 5,
        initial_size: 0,
        stream_length: 120,
        domain_size: 8,
        delete_fraction: 0.0,
    };
    for workload in all_workloads(config) {
        assert_strategies_agree(&workload);
    }
}

#[test]
fn streaming_from_empty_matches_the_oracle_continuously() {
    // Checks after *every* 25 updates, catching transient divergence that end-of-stream
    // comparison would miss.
    for workload in [
        self_join_count(WorkloadConfig::small(11)),
        customers_by_nation(WorkloadConfig::small(12)),
        rst_sum_join(WorkloadConfig::small(13)),
        sales_revenue(WorkloadConfig::small(14)),
    ] {
        stream_with_oracle(&workload, 25);
    }
}

#[test]
fn initialization_and_streaming_commute() {
    // Loading the initial database into the view hierarchy and then streaming must agree
    // with streaming everything from the start.
    for workload in all_workloads(WorkloadConfig::small(21)) {
        let initial_db = workload.initial_database();
        let mut initialized = IncrementalView::new(&workload.catalog, workload.query.clone())
            .unwrap()
            .with_initial_database(&initial_db)
            .unwrap();
        let mut streamed = IncrementalView::new(&workload.catalog, workload.query.clone()).unwrap();
        streamed.apply_all(workload.initial.iter()).unwrap();
        assert_tables_match(&initialized.table(), &streamed.table(), workload.name);
        initialized.apply_all(&workload.stream).unwrap();
        streamed.apply_all(&workload.stream).unwrap();
        assert_tables_match(&initialized.table(), &streamed.table(), workload.name);
    }
}

#[test]
fn inverse_streams_cancel_exactly() {
    // Applying a stream and then its inverse (in reverse order) returns every view to its
    // initial contents — the additive-inverse property of the ring carried to the runtime.
    let workload = customers_by_nation(WorkloadConfig {
        delete_fraction: 0.0,
        ..WorkloadConfig::small(31)
    });
    let mut view = IncrementalView::new(&workload.catalog, workload.query.clone()).unwrap();
    view.apply_all(&workload.stream).unwrap();
    assert!(!view.table().is_empty());
    let inverse: Vec<_> = workload.stream.iter().rev().map(|u| u.inverse()).collect();
    view.apply_all(&inverse).unwrap();
    assert!(
        view.table().is_empty(),
        "all groups must cancel back to zero"
    );
    assert_eq!(view.total_entries(), 0);
}

#[test]
fn strategies_report_consistent_scalar_values() {
    // For the scalar (no group-by) workloads the single aggregate value must agree and be
    // retrievable through the strategy interface.
    let workload = self_join_count(WorkloadConfig::small(41));
    let results = run_all_strategies(&workload);
    let values: Vec<_> = results
        .iter()
        .map(|(_, table)| table.get(&vec![]).copied())
        .collect();
    assert_eq!(values[0], values[1]);
    assert_eq!(values[1], values[2]);
}

#[test]
fn recursive_ivm_never_stores_base_relations() {
    // The executor's memory footprint is the view hierarchy only; for the self-join count
    // query that is the per-value multiplicity map (bounded by the active domain), not the
    // number of inserted tuples.
    let workload = self_join_count(WorkloadConfig {
        seed: 51,
        initial_size: 0,
        stream_length: 2_000,
        domain_size: 10,
        delete_fraction: 0.0,
    });
    let exec = stream_with_oracle(&workload, 0);
    // Views: q (1 entry) + one or two per-value maps (≤ 10 entries each); far below the
    // 2000 tuples a stored relation would need.
    assert!(exec.total_entries() <= 1 + 2 * 10);
}

#[test]
fn naive_oracle_handles_duplicate_heavy_domains() {
    // Tiny domain → many duplicate tuples → large multiplicities; exercises the bag
    // semantics of every layer.
    let workload = self_join_count(WorkloadConfig {
        seed: 61,
        initial_size: 30,
        stream_length: 120,
        domain_size: 2,
        delete_fraction: 0.3,
    });
    assert_strategies_agree(&workload);
    let results = run_all_strategies(&workload);
    let value = results[0].1.get(&vec![]).copied().unwrap();
    // With only 2 distinct values and ~100 live tuples the count is necessarily large.
    assert!(value > dbring::Number::Int(100));
}
