//! Property tests over the whole pipeline: for randomly generated update streams and a
//! corpus of queries, the compiled recursive-IVM programs must agree with the reference
//! evaluator at every prefix of the stream, and their per-update arithmetic work must not
//! grow with the number of applied updates.

use dbring::{compile, eval_all_groups, parse_query, Database, Executor, Query, Update, Value};
use proptest::prelude::*;

/// The compiled-query corpus used by the property tests (all simple-condition AGCA).
fn corpus() -> Vec<Query> {
    [
        "q1[n] := Sum(C(c, n))",
        "q2[c] := Sum(C(c, n) * C(c2, n))",
        "q3 := Sum(C(c, n) * C(c2, n2) * (n = n2))",
        "q4 := Sum(R(x) * R(y) * (x = y))",
        "q5 := Sum(R(x) * S(x) * x)",
        "q6[c] := Sum(C(c, n) * R(n))",
        "q7 := Sum(C(c, n) * (n >= 2) * n)",
        "q8 := Sum(C(c, n) * C(c2, n) * n)",
    ]
    .iter()
    .map(|text| parse_query(text).unwrap())
    .collect()
}

fn catalog() -> Database {
    let mut db = Database::new();
    db.declare("C", &["cid", "nation"]).unwrap();
    db.declare("R", &["A"]).unwrap();
    db.declare("S", &["A"]).unwrap();
    db
}

/// A random single-tuple update over the fixed schema with a small value domain.
fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0i64..4, any::<bool>()).prop_map(|(c, n, ins)| {
            let values = vec![Value::int(c), Value::int(n)];
            if ins {
                Update::insert("C", values)
            } else {
                Update::delete("C", values)
            }
        }),
        (0i64..4, any::<bool>(), any::<bool>()).prop_map(|(a, r, ins)| {
            let rel = if r { "R" } else { "S" };
            let values = vec![Value::int(a)];
            if ins {
                Update::insert(rel, values)
            } else {
                Update::delete(rel, values)
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compiled_programs_match_the_reference_evaluator(
        stream in prop::collection::vec(arb_update(), 1..60),
    ) {
        let catalog = catalog();
        for query in corpus() {
            let program = compile(&catalog, &query).unwrap();
            let mut exec = Executor::new(program);
            let mut db = catalog.clone();
            for (i, update) in stream.iter().enumerate() {
                exec.apply(update).unwrap();
                db.apply(update).unwrap();
                // Check at a few prefixes and at the end (checking every step for every
                // query would dominate the test run without adding much coverage).
                if i % 9 == 0 || i + 1 == stream.len() {
                    let expected: std::collections::BTreeMap<_, _> = eval_all_groups(&query, &db)
                        .unwrap()
                        .into_iter()
                        .filter(|(_, v)| !dbring::Semiring::is_zero(v))
                        .collect();
                    prop_assert_eq!(
                        exec.output_table(),
                        expected,
                        "query {} diverged after {} updates",
                        &query.name,
                        i + 1
                    );
                }
            }
        }
    }

    #[test]
    fn per_update_work_is_bounded_by_the_active_domain_not_the_stream_length(
        seed_updates in prop::collection::vec(arb_update(), 50..120),
    ) {
        // For the scalar self-join count (whose trigger has no loop variables), the
        // arithmetic work of the last update must not exceed the work of early updates by
        // more than a small constant, no matter how long the stream was.
        let catalog = catalog();
        let query = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let mut exec = Executor::new(compile(&catalog, &query).unwrap());
        let mut per_update = Vec::new();
        for update in seed_updates.iter().filter(|u| u.relation == "R") {
            let before = exec.stats().arithmetic_ops();
            exec.apply(update).unwrap();
            per_update.push(exec.stats().arithmetic_ops() - before);
        }
        if per_update.len() > 10 {
            let early_max = *per_update[..5].iter().max().unwrap();
            let late_max = *per_update[per_update.len() - 5..].iter().max().unwrap();
            prop_assert!(late_max <= early_max.max(4) + 4);
        }
    }

    #[test]
    fn applying_an_update_and_its_inverse_is_a_noop(
        stream in prop::collection::vec(arb_update(), 1..40),
        extra in arb_update(),
    ) {
        let catalog = catalog();
        let query = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        let mut exec = Executor::new(compile(&catalog, &query).unwrap());
        exec.apply_all(&stream).unwrap();
        let before = exec.output_table();
        exec.apply(&extra).unwrap();
        exec.apply(&extra.inverse()).unwrap();
        prop_assert_eq!(exec.output_table(), before);
    }

    #[test]
    fn update_order_within_commuting_relations_does_not_matter(
        c_updates in prop::collection::vec(
            (0i64..4, 0i64..3).prop_map(|(c, n)| Update::insert("C", vec![Value::int(c), Value::int(n)])),
            1..25
        ),
    ) {
        // Insertions commute: applying them in reverse order yields the same result table.
        let catalog = catalog();
        let query = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        let program = compile(&catalog, &query).unwrap();
        let mut forward = Executor::new(program.clone());
        let mut backward = Executor::new(program);
        forward.apply_all(&c_updates).unwrap();
        let reversed: Vec<_> = c_updates.iter().rev().cloned().collect();
        backward.apply_all(&reversed).unwrap();
        prop_assert_eq!(forward.output_table(), backward.output_table());
    }
}
