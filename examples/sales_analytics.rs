//! A realistic standing-analytics scenario: per-customer revenue over a stream of sales
//! and cancellations, with a comparison of maintenance strategies.
//!
//! The incremental view answers "revenue of customer X so far" at any moment without ever
//! rescanning the sales; the example also shows how much work the two classical strategies
//! (naive re-evaluation and first-order IVM) spend on the same stream.
//!
//! Run with: `cargo run --release --example sales_analytics`

use std::time::Instant;

use dbring::{ClassicalIvm, IncrementalView, MaintenanceStrategy, NaiveReeval, Value};
use dbring_workloads::{sales_revenue, WorkloadConfig};

fn main() {
    let workload = sales_revenue(WorkloadConfig {
        seed: 2024,
        initial_size: 2_000,
        stream_length: 1_000,
        domain_size: 50,
        delete_fraction: 0.15,
    });
    println!("query: {}", workload.query);

    // Recursive IVM: compile once, bulk-load the initial database into the view hierarchy,
    // then stream.
    let initial_db = workload.initial_database();
    let mut view = IncrementalView::new(&workload.catalog, workload.query.clone())
        .unwrap()
        .with_initial_database(&initial_db)
        .unwrap();

    let started = Instant::now();
    view.apply_all(&workload.stream).unwrap();
    let recursive_elapsed = started.elapsed();

    // Classical first-order IVM and naive re-evaluation over the same stream.
    let mut classical = ClassicalIvm::new(initial_db.clone(), workload.query.clone()).unwrap();
    let started = Instant::now();
    for u in &workload.stream {
        classical.apply_update(u).unwrap();
    }
    let classical_elapsed = started.elapsed();

    let mut naive = NaiveReeval::new(initial_db, workload.query.clone()).unwrap();
    let started = Instant::now();
    // The naive strategy is slow; replay only a slice of the stream and scale.
    let naive_sample = workload.stream.len().min(100);
    for u in &workload.stream[..naive_sample] {
        naive.apply_update(u).unwrap();
    }
    let naive_elapsed = started.elapsed() * (workload.stream.len() as u32 / naive_sample as u32);

    // All strategies agree on the values they maintain (check a few customers). The
    // strategies accumulate the same sums in different orders, so floating-point results
    // match up to the usual IEEE rounding differences, not bit-for-bit.
    for cust in 0..5 {
        let key = vec![Value::int(cust)];
        let (a, b) = (
            view.value(&key).as_f64(),
            classical.result_value(&key).as_f64(),
        );
        assert!(
            (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0),
            "strategies disagree for customer {cust}: {a} vs {b}"
        );
    }

    println!(
        "\n{} initial sales, {} streamed updates",
        workload.initial.len(),
        workload.stream.len()
    );
    println!("maintenance time over the stream:");
    println!("  recursive IVM (this paper) : {recursive_elapsed:>12.2?}");
    println!("  classical first-order IVM  : {classical_elapsed:>12.2?}");
    println!("  naive re-evaluation        : {naive_elapsed:>12.2?}  (extrapolated)");
    println!(
        "\nrecursive IVM work counters: {} additions, {} multiplications for {} updates",
        view.stats().additions,
        view.stats().multiplications,
        view.stats().updates
    );

    let mut top: Vec<(Vec<Value>, f64)> = view
        .table()
        .into_iter()
        .map(|(k, v)| (k, v.as_f64()))
        .collect();
    top.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 5 customers by revenue:");
    for (key, revenue) in top.into_iter().take(5) {
        println!("  customer {:>3} -> {revenue:>10.2}", key[0]);
    }
}
