//! Example 1.3 of the paper as a small supply-chain scenario: `R` links suppliers to
//! warehouses (with a capacity `A`), `S` links warehouses to stores, and `T` links stores
//! to demand (`F`). The standing query `SELECT SUM(A * F) FROM R, S, T WHERE B = C AND
//! D = E` weighs every supplier→warehouse→store→demand path.
//!
//! The compiled program maintains the three-way join aggregate through *factorized* delta
//! views: the delta with respect to an `S` update is a product of two single-key lookups,
//! exactly as in Example 1.3 — and the arithmetic work per update stays flat while the
//! relations keep growing.
//!
//! Run with: `cargo run --release --example supply_chain_paths`

use dbring::IncrementalView;
use dbring_workloads::{rst_sum_join, WorkloadConfig};

fn main() {
    let workload = rst_sum_join(WorkloadConfig {
        seed: 11,
        initial_size: 0,
        stream_length: 9_000,
        domain_size: 60,
        delete_fraction: 0.1,
    });
    println!("query: {}\n", workload.query);

    let mut view =
        IncrementalView::new(&workload.catalog, workload.query.clone()).expect("compiles");
    println!("compiled program:\n{}", view.program().describe());

    // Stream the updates, sampling the per-update arithmetic work as the database grows.
    println!("updates applied | tuples in views | arithmetic ops per update (avg over last 1000)");
    let mut last_ops = 0u64;
    for (i, update) in workload.stream.iter().enumerate() {
        view.apply(update).unwrap();
        if (i + 1) % 1000 == 0 {
            let ops = view.stats().arithmetic_ops();
            println!(
                "{:>15} | {:>15} | {:>10.2}",
                i + 1,
                view.total_entries(),
                (ops - last_ops) as f64 / 1000.0
            );
            last_ops = ops;
        }
    }

    println!(
        "\ntotal weighted path capacity: {}",
        view.value(&[]).as_f64()
    );
}
