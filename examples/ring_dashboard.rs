//! A `Ring` engine in action: one sales stream maintaining a whole dashboard of
//! standing aggregates — with a view added mid-stream (backfilled from the ring's
//! base snapshot) and another dropped once it is no longer needed.
//!
//! Run with: `cargo run --example ring_dashboard`

use dbring::{Catalog, RingBuilder, Update, Value, ViewDef};

fn sale(cust: i64, cents: i64, qty: i64) -> Update {
    Update::insert(
        "Sales",
        vec![Value::int(cust), Value::int(cents), Value::int(qty)],
    )
}

fn refund(cust: i64, cents: i64, qty: i64) -> Update {
    Update::insert(
        "Returns",
        vec![Value::int(cust), Value::int(cents), Value::int(qty)],
    )
}

fn main() {
    // 1. One catalog for the whole engine.
    let mut catalog = Catalog::new();
    catalog
        .declare("Sales", &["cust", "cents", "qty"])
        .expect("fresh catalog");
    catalog
        .declare("Returns", &["cust", "cents", "qty"])
        .expect("fresh catalog");
    let mut ring = RingBuilder::new(catalog).build();

    // 2. Standing views — created up front…
    let revenue = ring
        .create_view(
            "revenue_by_cust",
            ViewDef::Sql("SELECT cust, SUM(cents * qty) AS revenue FROM Sales GROUP BY cust"),
        )
        .expect("view compiles");
    let orders = ring
        .create_view(
            "orders_by_cust",
            ViewDef::Sql("SELECT cust, SUM(1) AS orders FROM Sales GROUP BY cust"),
        )
        .expect("view compiles");
    let refunds = ring
        .create_view(
            "refunds_by_cust",
            ViewDef::Sql("SELECT cust, SUM(cents * qty) AS refunded FROM Returns GROUP BY cust"),
        )
        .expect("view compiles");

    // 3. …and one ingest path. Batches are normalized once for the whole ring, and
    //    each update is routed only to the views that read its relation.
    let morning: Vec<Update> = vec![
        sale(1, 250, 2),
        sale(2, 100, 1),
        sale(1, 999, 1),
        refund(2, 100, 1),
        sale(3, 500, 4),
        sale(2, 100, 3),
    ];
    ring.apply_batch(&morning).expect("stream ingests");

    println!("after the morning batch:");
    for view in ring.views() {
        println!("  {} ({}):", view.name(), view.engine_name());
        for (key, value) in view.table() {
            println!("    cust {} -> {}", key[0], value);
        }
    }

    // 4. A view created mid-stream is backfilled from the ring's base snapshot — its
    //    table is identical to having watched the stream from the start.
    let units = ring
        .create_view(
            "units_by_cust",
            ViewDef::Sql("SELECT cust, SUM(qty) AS units FROM Sales GROUP BY cust"),
        )
        .expect("late view compiles");
    assert_eq!(
        ring.view(units).unwrap().value(&[Value::int(1)]).as_f64(),
        3.0,
        "backfill saw the morning's sales"
    );
    println!("\nlate-registered units_by_cust (backfilled):");
    for (key, value) in ring.view(units).unwrap().table() {
        println!("    cust {} -> {}", key[0], value);
    }

    // 5. Keep streaming: every live view stays fresh, new and old alike.
    ring.apply_all(&[sale(1, 100, 5), refund(3, 500, 1)])
        .expect("stream ingests");
    assert_eq!(
        ring.view(units).unwrap().value(&[Value::int(1)]).as_f64(),
        8.0
    );
    assert_eq!(
        ring.view(refunds).unwrap().value(&[Value::int(3)]).as_f64(),
        500.0
    );

    // 6. Drop what is no longer needed; later updates stop paying for it.
    ring.drop_view(orders).expect("live view drops");
    ring.apply(&sale(4, 50, 1)).expect("stream ingests");
    println!(
        "\nafter dropping orders_by_cust the ring hosts {} views; revenue(4) = {}",
        ring.len(),
        ring.view(revenue).unwrap().value(&[Value::int(4)])
    );

    // 7. Per-view accounting: routed dispatch means the refunds view only ever paid
    //    for Returns updates.
    let refund_updates = ring.view(refunds).unwrap().stats().updates;
    println!("refunds_by_cust processed {refund_updates} updates (only the Returns stream)");
    assert_eq!(refund_updates, 2);
}
