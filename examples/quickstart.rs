//! Quick start: define a standing SQL aggregate, stream inserts and deletes, and read the
//! incrementally maintained result.
//!
//! Run with: `cargo run --example quickstart`

use dbring::{Catalog, IncrementalView, Value};

fn main() {
    // 1. Declare the schema (a catalog is a database whose contents are ignored).
    let mut catalog = Catalog::new();
    catalog
        .declare("Sales", &["cust", "price", "qty"])
        .expect("fresh catalog");

    // 2. Define the standing query. It is compiled once into a trigger program: a small
    //    set of materialized maps plus, per relation and sign, a list of constant-work
    //    update statements.
    let mut revenue = IncrementalView::from_sql(
        &catalog,
        "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
    )
    .expect("query compiles");

    println!(
        "compiled trigger program:\n{}",
        revenue.program().describe()
    );

    // 3. Stream single-tuple updates. Each one runs the matching trigger; the base table
    //    is never stored.
    revenue
        .insert(
            "Sales",
            vec![Value::int(1), Value::float(9.99), Value::int(3)],
        )
        .unwrap();
    revenue
        .insert(
            "Sales",
            vec![Value::int(2), Value::float(5.00), Value::int(10)],
        )
        .unwrap();
    revenue
        .insert(
            "Sales",
            vec![Value::int(1), Value::float(1.50), Value::int(2)],
        )
        .unwrap();
    // A correction: the second sale is cancelled.
    revenue
        .delete(
            "Sales",
            vec![Value::int(2), Value::float(5.00), Value::int(10)],
        )
        .unwrap();

    // 4. Read the result at any time.
    println!("revenue per customer:");
    for (key, value) in revenue.table() {
        println!("  customer {} -> {:.2}", key[0], value.as_f64());
    }
    println!(
        "work done: {} updates, {} additions, {} multiplications",
        revenue.stats().updates,
        revenue.stats().additions,
        revenue.stats().multiplications
    );

    assert!((revenue.value(&[Value::int(1)]).as_f64() - 32.97).abs() < 1e-9);
    assert_eq!(revenue.value(&[Value::int(2)]).as_f64(), 0.0);
}
