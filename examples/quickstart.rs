//! Quick start: build a `Ring` engine, register two standing SQL aggregates, stream
//! inserts and deletes once, and read both incrementally maintained results — plus the
//! single-view `IncrementalView` shortcut for when one query is all you need.
//!
//! Run with: `cargo run --example quickstart`

use dbring::{Catalog, IncrementalView, RingBuilder, Value, ViewDef};

fn main() {
    // 1. Declare the schema (a catalog is a database whose contents are ignored).
    let mut catalog = Catalog::new();
    catalog
        .declare("Sales", &["cust", "price", "qty"])
        .expect("fresh catalog");

    // 2. Build the engine and register standing queries. Each is compiled once into a
    //    trigger program: a small set of materialized maps plus, per relation and
    //    sign, a list of constant-work update statements.
    let mut ring = RingBuilder::new(catalog.clone()).build();
    let revenue = ring
        .create_view(
            "revenue",
            ViewDef::Sql("SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust"),
        )
        .expect("query compiles");
    let orders = ring
        .create_view(
            "orders",
            ViewDef::Sql("SELECT cust, SUM(1) AS orders FROM Sales GROUP BY cust"),
        )
        .expect("query compiles");

    println!(
        "compiled trigger program for `revenue`:\n{}",
        ring.view(revenue).unwrap().program().describe()
    );

    // 3. Stream single-tuple updates through the ring — one ingest path for every
    //    view, each update routed to the views that read its relation.
    ring.insert(
        "Sales",
        vec![Value::int(1), Value::float(9.99), Value::int(3)],
    )
    .unwrap();
    ring.insert(
        "Sales",
        vec![Value::int(2), Value::float(5.00), Value::int(10)],
    )
    .unwrap();
    ring.insert(
        "Sales",
        vec![Value::int(1), Value::float(1.50), Value::int(2)],
    )
    .unwrap();
    // A correction: the second sale is cancelled.
    ring.delete(
        "Sales",
        vec![Value::int(2), Value::float(5.00), Value::int(10)],
    )
    .unwrap();

    // 4. Read any view at any time.
    println!("revenue per customer:");
    for (key, value) in ring.view(revenue).unwrap().table() {
        println!("  customer {} -> {:.2}", key[0], value.as_f64());
    }
    println!("orders per customer:");
    for (key, value) in ring.view(orders).unwrap().table() {
        println!("  customer {} -> {}", key[0], value);
    }
    let stats = ring.view(revenue).unwrap().stats();
    println!(
        "work done by `revenue`: {} updates, {} additions, {} multiplications",
        stats.updates, stats.additions, stats.multiplications
    );

    let revenue_1 = ring.view(revenue).unwrap().value(&[Value::int(1)]).as_f64();
    assert!((revenue_1 - 32.97).abs() < 1e-9);
    assert_eq!(
        ring.view(orders).unwrap().value(&[Value::int(1)]).as_f64(),
        2.0
    );

    // 5. One query only? `IncrementalView` is the single-view shortcut over the same
    //    machinery (and stores nothing but the view's own maps).
    let mut solo = IncrementalView::from_sql(
        &catalog,
        "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
    )
    .expect("query compiles");
    solo.insert(
        "Sales",
        vec![Value::int(1), Value::float(9.99), Value::int(3)],
    )
    .unwrap();
    assert!((solo.value(&[Value::int(1)]).as_f64() - 29.97).abs() < 1e-9);
    println!(
        "single-view shortcut agrees: {:.2}",
        solo.value(&[Value::int(1)]).as_f64()
    );
}
