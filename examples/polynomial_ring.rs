//! Example 1.1 / Figure 1 of the paper: recursive memoization of deltas for the
//! polynomial `f(x) = x²` with updates `U = {+1, −1}`.
//!
//! Seven values are memoized (`|U|⁰ + |U|¹ + |U|² = 7`); after initialization, tracking
//! `f` under increments and decrements of `x` costs one addition per memoized value and
//! never re-evaluates the polynomial.
//!
//! Run with: `cargo run --example polynomial_ring`

use dbring::{Polynomial, RecursiveMemo};

fn main() {
    let f = Polynomial::monomial(1i64, 2); // x^2
    let updates = vec![1i64, -1];

    println!("f(x) = {f},  U = {{+1, -1}}\n");
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "x", "f(x)", "Δf(·,+1)", "Δf(·,-1)", "Δ²f(+1,+1)", "Δ²f(+1,-1)", "Δ²f(-1,+1)", "Δ²f(-1,-1)"
    );

    // Reproduce Figure 1 row by row: start at x = −2 and walk up to x = 4 by applying the
    // update "+1" repeatedly. Only additions of memoized values happen along the way.
    let mut memo = RecursiveMemo::new(&f, &-2, updates.clone());
    for step in 0..=6 {
        let x = -2 + step;
        print_row(x, &memo);
        if step < 6 {
            memo.apply(0); // apply the update +1
        }
    }

    println!(
        "\nmemoized values: {}   additions performed for the whole walk: {}",
        memo.memoized_values(),
        memo.additions()
    );
    println!("(the function definition was evaluated only once, at initialization)");
}

fn print_row(x: i64, memo: &RecursiveMemo<i64>) {
    println!(
        "{:>4} {:>6} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12}",
        x,
        memo.current(),
        memo.value(&[0]).unwrap(),
        memo.value(&[1]).unwrap(),
        memo.value(&[0, 0]).unwrap(),
        memo.value(&[0, 1]).unwrap(),
        memo.value(&[1, 0]).unwrap(),
        memo.value(&[1, 1]).unwrap(),
    );
}
