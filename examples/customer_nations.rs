//! Example 5.2 / 6.2 of the paper: for every customer, the number of customers of the same
//! nation — maintained incrementally, and cross-checked against naive re-evaluation.
//!
//! Run with: `cargo run --example customer_nations`

use dbring::{Catalog, IncrementalView, MaintenanceStrategy, NaiveReeval, Update, Value};
use dbring_workloads::{customers_by_nation, WorkloadConfig};

fn main() {
    let workload = customers_by_nation(WorkloadConfig {
        seed: 7,
        initial_size: 0,
        stream_length: 500,
        domain_size: 6,
        delete_fraction: 0.25,
    });

    // The paper's SQL query, compiled to a trigger program.
    let mut view = IncrementalView::new(&workload.catalog, workload.query.clone())
        .expect("Example 5.2 compiles");
    println!("query: {}", workload.query);
    println!("\ncompiled program:\n{}", view.program().describe());

    // The non-incremental oracle recomputes the query after every update.
    let mut oracle =
        NaiveReeval::new(workload.catalog.clone(), workload.query.clone()).expect("oracle");

    for (i, update) in workload.stream.iter().enumerate() {
        view.apply(update).unwrap();
        oracle.apply_update(update).unwrap();
        if (i + 1) % 100 == 0 {
            assert_eq!(
                view.table(),
                oracle.current_result(),
                "incremental and naive results must agree"
            );
            println!(
                "after {:>4} updates: {} customer groups, views hold {} entries, \
                 {} arithmetic ops so far",
                i + 1,
                view.table().len(),
                view.total_entries(),
                view.stats().arithmetic_ops()
            );
        }
    }

    // Show the five customers with the most same-nation peers.
    let mut rows: Vec<(Vec<Value>, i64)> = view
        .table()
        .into_iter()
        .map(|(k, v)| (k, v.as_i64().unwrap_or(0)))
        .collect();
    rows.sort_by_key(|(_, v)| std::cmp::Reverse(*v));
    println!("\ntop customers by same-nation count:");
    for (key, value) in rows.into_iter().take(5) {
        println!("  cid {} -> {}", key[0], value);
    }

    // Replay the paper's own miniature trace (Example 1.2 uses the scalar variant).
    let mut catalog = Catalog::new();
    catalog.declare("R", &["A"]).unwrap();
    let mut count =
        IncrementalView::from_agca(&catalog, "q := Sum(R(x) * R(y) * (x = y))").unwrap();
    let mut r_updates = vec![
        Update::insert("R", vec![Value::str("c")]),
        Update::insert("R", vec![Value::str("c")]),
        Update::insert("R", vec![Value::str("d")]),
        Update::insert("R", vec![Value::str("c")]),
        Update::delete("R", vec![Value::str("d")]),
        Update::insert("R", vec![Value::str("c")]),
        Update::delete("R", vec![Value::str("c")]),
    ];
    println!("\nExample 1.2 trace (Q = self-join count of R):");
    for u in r_updates.drain(..) {
        count.apply(&u).unwrap();
        println!("  {:<8} Q(R) = {}", u.to_string(), count.value(&[]));
    }
}
