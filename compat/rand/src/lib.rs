//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no network access, so this in-tree crate provides the small
//! slice of `rand` the workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen_range` (over half-open integer ranges) and `gen_bool`.
//!
//! The generator is SplitMix64 — statistically fine for workload generation and property
//! tests, not cryptographic. Streams are deterministic per seed, which is exactly what
//! the reproducible workload generators need, but they differ from the real `StdRng`
//! (ChaCha12) streams, so regenerated workloads differ tuple-for-tuple from ones made
//! with the real crate. See `compat/README.md` for swap-back instructions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draws a value in `[low, high)` from `rng`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u64;
                let offset = rng.next_u64() % span;
                (low as $wide).wrapping_add(offset as $wide) as $t
            }
        }
    )*};
}

impl_sample_uniform_int! {
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range called with an empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + unit * (high - low)
    }
}

/// Convenience sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly from the half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64, seeded explicitly.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<i64> = (0..32).map(|_| a.gen_range(0..1000)).collect();
        let ys: Vec<i64> = (0..32).map(|_| b.gen_range(0..1000)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let u = rng.gen_range(3u32..4);
            assert_eq!(u, 3);
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.1)));
    }
}
