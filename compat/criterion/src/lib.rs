//! Offline stand-in for the `criterion` crate (0.5 API surface).
//!
//! The build environment has no network access, so this in-tree crate provides the slice
//! of Criterion the workspace's benches use: benchmark groups, `bench_function` /
//! `bench_with_input`, `Bencher::iter` / `iter_batched`, `BenchmarkId`, `Throughput`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm up briefly, then run the routine until the
//! measurement budget (or an iteration cap) is exhausted and report mean wall-clock time
//! per iteration. There is no outlier analysis, no statistics, no HTML report; the point
//! is that `cargo bench` runs and prints comparable numbers. Swap the real Criterion back
//! in via the root `Cargo.toml` when the environment has network access; see
//! `compat/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (the standard-library implementation).
pub use std::hint::black_box;

/// Entry point handed to every benchmark function by [`criterion_group!`].
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as a plain argument. Flags that the
        // real Criterion accepts (e.g. `--bench`) are ignored rather than treated as
        // filters.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Runs a standalone benchmark (a group of one).
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id.to_string());
        group.bench_function("", f);
        group.finish();
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }
}

/// Identifier for one benchmark within a group: a function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Throughput annotation for a group (accepted and ignored by this stand-in).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output `iter_batched` keeps in flight (ignored by this stand-in).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// A small per-iteration input.
    SmallInput,
    /// A large per-iteration input.
    LargeInput,
    /// One input per sample.
    PerIteration,
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples (used to bound iteration counts).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets how long to warm up before measuring.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Records the group throughput (accepted and ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Benchmarks a routine under the given id.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = self.full_id(&id);
        if !self.criterion.matches(&full_id) {
            return self;
        }
        let mut bencher = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            max_iters: (self.sample_size as u64).saturating_mul(10_000),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        bencher.report(&full_id);
        self
    }

    /// Benchmarks a routine that takes a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (All reporting already happened per benchmark.)
    pub fn finish(self) {}

    fn full_id(&self, id: &impl fmt::Display) -> String {
        let suffix = id.to_string();
        if suffix.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, suffix)
        }
    }
}

/// Times closures handed to it by a benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    max_iters: u64,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` repeatedly and records mean wall-clock time per call.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up: run without recording.
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine());
        }
        let started = Instant::now();
        let deadline = started + self.measurement_time;
        while self.iters < self.max_iters {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only the routine.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_deadline {
            black_box(routine(setup()));
        }
        let started = Instant::now();
        let deadline = started + self.measurement_time;
        while self.iters < self.max_iters {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.total += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id:<60} (no iterations run)");
            return;
        }
        let mean = self.total.as_nanos() as f64 / self.iters as f64;
        let human = if mean < 1_000.0 {
            format!("{mean:.1} ns")
        } else if mean < 1_000_000.0 {
            format!("{:.2} µs", mean / 1_000.0)
        } else if mean < 1_000_000_000.0 {
            format!("{:.2} ms", mean / 1_000_000.0)
        } else {
            format!("{:.3} s", mean / 1_000_000_000.0)
        };
        println!("{id:<60} {human:>12}/iter ({} iters)", self.iters);
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut criterion = Criterion { filter: None };
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(10);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut criterion = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut group = criterion.benchmark_group("smoke");
        let mut ran = false;
        group.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| ());
        });
        group.finish();
        assert!(!ran);
    }
}
