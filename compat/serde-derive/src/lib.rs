//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The real `serde_derive` generates `Serialize`/`Deserialize` implementations; this
//! stand-in accepts the same derive attributes and generates nothing at all. Combined
//! with the blanket trait impls in the sibling `serde` stand-in, `#[derive(Serialize,
//! Deserialize)]` compiles exactly as with the real crates — it just does not produce
//! working serializers. See `compat/README.md` for the rationale (the build environment
//! has no network access) and the swap-back instructions.

use proc_macro::TokenStream;

/// No-op replacement for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
