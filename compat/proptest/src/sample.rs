//! Sampling strategies, mirroring the parts of `proptest::sample` the workspace uses.

use crate::collection::SizeRange;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates in-order subsequences of `items` whose length is drawn from `size` (clamped
/// to the number of items).
pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
    Subsequence {
        items,
        size: size.into(),
    }
}

/// The result of [`subsequence`].
#[derive(Clone, Debug)]
pub struct Subsequence<T> {
    items: Vec<T>,
    size: SizeRange,
}

impl<T: Clone> Strategy for Subsequence<T> {
    type Value = Vec<T>;

    fn generate(&self, rng: &mut TestRng) -> Vec<T> {
        let want = self.size.draw(rng, Some(self.items.len()));
        // Partial Fisher–Yates over the index set, then restore original order.
        let mut indices: Vec<usize> = (0..self.items.len()).collect();
        for slot in 0..want {
            let pick = rng.usize_between(slot, indices.len() - 1);
            indices.swap(slot, pick);
        }
        let mut chosen = indices[..want].to_vec();
        chosen.sort_unstable();
        chosen.into_iter().map(|i| self.items[i].clone()).collect()
    }
}
