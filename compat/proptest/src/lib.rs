//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this in-tree crate implements the
//! slice of proptest 1.x the workspace's property tests use:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` / `prop_flat_map`, [`strategy::Just`], range
//!   and tuple strategies, [`strategy::Union`] (behind [`prop_oneof!`]);
//! * [`collection::vec`] and [`sample::subsequence`] with proptest's flexible size
//!   arguments (exact `usize`, `a..b`, `a..=b`);
//! * [`arbitrary::any`] for the primitive types the tests draw;
//! * the [`proptest!`] macro with `#![proptest_config(...)]`, [`prop_assert!`],
//!   [`prop_assert_eq!`], [`prop_assert_ne!`] and [`test_runner::TestCaseError`].
//!
//! Differences from the real crate, in decreasing order of importance: **no shrinking**
//! (a failing case reports the generated inputs but does not minimize them), a fixed
//! deterministic seed per test (derived from the test name, so runs are reproducible but
//! never explore new seeds), and uniform rather than bias-tuned value distributions.
//! Swap the real proptest back in via the root `Cargo.toml` when the environment has
//! network access; see `compat/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The subset of the `proptest::prelude` re-exports the workspace uses.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Namespaced access to strategy modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a property test, failing the current case (not the whole
/// process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property test; both sides are shown on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test; the common value is shown on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)*)
        );
    }};
}

/// Builds a strategy choosing uniformly between several strategies with the same value
/// type, mirroring `proptest::prop_oneof!` (unweighted form only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each `#[test] fn name(arg in strategy, ...) { body }` item expands to a test that
/// draws inputs from the strategies for the configured number of cases and panics (with
/// the generated inputs) on the first failing case. Inside the body, `?` and
/// `return Ok(())` work as in the real proptest: the body runs in a closure returning
/// `Result<(), TestCaseError>`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` item at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            $crate::test_runner::run_cases(&config, stringify!($name), |__rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), __rng);
                )+
                let __inputs = format!(
                    concat!($(concat!(stringify!($arg), " = {:?}\n")),+),
                    $(&$arg),+
                );
                let __result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                (__inputs, __result)
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -7i64..9, y in 0u32..3, z in 0usize..=4) {
            prop_assert!((-7..9).contains(&x));
            prop_assert!(y < 3);
            prop_assert!(z <= 4);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec((0i64..5, any::<bool>()), 1..8),
            s in prop::sample::subsequence(vec![1, 2, 3], 0..=3),
            just in Just(41).prop_map(|n| n + 1),
            one_of in prop_oneof![Just(1u8), Just(2u8), 3u8..5],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|(n, _)| (0..5).contains(n)));
            // Subsequences preserve the original order.
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(just, 42);
            prop_assert!((1..5).contains(&one_of));
        }

        #[test]
        fn flat_map_threads_values(pair in (1usize..5).prop_flat_map(|n| {
            (Just(n), prop::collection::vec(0i64..10, n))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    proptest! {
        #[test]
        #[should_panic]
        fn failing_properties_are_reported(x in 0i64..10) {
            // The harness must actually fail cases: x == x always "fails" here.
            prop_assert!(x != x, "deliberate failure for x = {}", x);
        }
    }
}
