//! The [`Strategy`] trait and the combinators the workspace's tests use.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type, mirroring `proptest::strategy::Strategy`.
///
/// Unlike the real crate there is no shrinking: `generate` draws one value and failing
/// cases are reported as generated.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Builds a dependent strategy from each generated value and draws from it.
    fn prop_flat_map<S, F>(self, map: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, map }
    }
}

/// Boxes a strategy, erasing its concrete type (used by [`crate::prop_oneof!`]).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// A strategy that always produces clones of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.generate(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    source: S,
    map: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.map)(self.source.generate(rng)).generate(rng)
    }
}

/// Uniform choice between several strategies with the same value type (the engine behind
/// [`crate::prop_oneof!`]).
pub struct Union<V> {
    branches: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `branches` is empty.
    pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let index = rng.usize_between(0, self.branches.len() - 1);
        self.branches[index].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "strategy range {}..{} is empty", self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (u128::from(rng.next_u64())) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start() <= self.end(),
                    "strategy range {}..={} is empty", self.start(), self.end()
                );
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64())) % span;
                (*self.start() as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
