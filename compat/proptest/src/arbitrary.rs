//! The [`Arbitrary`] trait and [`any`], mirroring `proptest::arbitrary` for the
//! primitive types the workspace draws.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy generating arbitrary values of this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`, mirroring `proptest::prelude::any`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Full-domain strategy for a primitive type (the `Strategy` impls below pick the
/// distribution per type).
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(PhantomData<T>);

macro_rules! arbitrary_ints {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(PhantomData)
            }
        }
    )*};
}

arbitrary_ints!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(PhantomData)
    }
}
