//! Collection strategies, mirroring `proptest::collection`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval accepting proptest's flexible size arguments: an exact
/// `usize`, `a..b`, or `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    /// Draws a size from the interval, optionally clamped to `cap`.
    pub(crate) fn draw(&self, rng: &mut TestRng, cap: Option<usize>) -> usize {
        let hi = cap.map_or(self.hi, |c| self.hi.min(c));
        let lo = self.lo.min(hi);
        rng.usize_between(lo, hi)
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            lo: range.start,
            hi: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            lo: *range.start(),
            hi: *range.end(),
        }
    }
}

/// Generates `Vec`s whose length is drawn from `size` and whose elements are drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec()`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.draw(rng, None);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
