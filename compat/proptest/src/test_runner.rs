//! Test-case driving: configuration, the deterministic RNG, case failures.

use std::fmt;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct Config {
    /// How many random cases to run per test.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Failure of a single test case (as produced by `prop_assert!` and friends).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The deterministic random source handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `usize` in the inclusive range `[lo, hi]`.
    pub fn usize_between(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }
}

/// Runs `case` for the configured number of cases with a per-test deterministic seed,
/// panicking (with the generated inputs) on the first failure.
///
/// The closure returns the pretty-printed inputs alongside the case result so failures
/// can be reported without shrinking machinery.
pub fn run_cases<F>(config: &Config, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
{
    // FNV-1a over the test name: stable across runs, different per test.
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.bytes() {
        seed ^= u64::from(byte);
        seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut rng = TestRng::new(seed);
    for case_index in 0..config.cases {
        let (inputs, result) = case(&mut rng);
        if let Err(error) = result {
            panic!(
                "proptest: test {test_name} failed at case {case_index} \
                 (no shrinking in the offline stand-in)\n{error}\ninputs:\n{inputs}"
            );
        }
    }
}
