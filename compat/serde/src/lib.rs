//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real `serde` cannot be fetched.
//! This crate keeps every `use serde::{Deserialize, Serialize}` import and every
//! `#[derive(Serialize, Deserialize)]` attribute in the workspace compiling, while making
//! no behavioral promises: the traits are markers implemented for every type, and the
//! derives (re-exported from the in-tree `serde_derive` stand-in) generate nothing.
//!
//! Swapping the real serde back in is a one-line change in the root `Cargo.toml`
//! (`serde = { version = "1", features = ["derive"] }` instead of the `path` entry); no
//! source file needs to change. See `compat/README.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; implemented for every type.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; implemented for every type.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
