//! Property-based verification of Proposition 3.3: the generalized multiset relations
//! `A[T]` form a commutative ring with identity, and the A-module / bilinearity facts of
//! Section 2.5 carry over to the database instantiation.

use dbring_relations::gmr::{Gmr, GmrExt};
use dbring_relations::{Tuple, Value};
use proptest::prelude::*;

/// Arbitrary tuples over a small column vocabulary {A, B, C} and small integer domain, so
/// that joins actually collide.
fn arb_tuple() -> impl Strategy<Value = Tuple> {
    let col = prop::sample::subsequence(vec!["A", "B", "C"], 0..=3);
    col.prop_flat_map(|cols| {
        let n = cols.len();
        (Just(cols), prop::collection::vec(0i64..4, n))
    })
    .prop_map(|(cols, vals)| {
        Tuple::from_pairs(cols.into_iter().zip(vals.into_iter().map(Value::int)))
    })
}

fn arb_gmr() -> impl Strategy<Value = Gmr<i64>> {
    prop::collection::vec((arb_tuple(), -4i64..5), 0..6).prop_map(Gmr::from_weighted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn addition_is_a_commutative_group(r in arb_gmr(), s in arb_gmr(), t in arb_gmr()) {
        prop_assert_eq!(r.add(&s), s.add(&r));
        prop_assert_eq!(r.add(&s).add(&t), r.add(&s.add(&t)));
        prop_assert_eq!(r.add(&Gmr::zero()), r.clone());
        prop_assert!(r.add(&r.neg()).is_zero());
    }

    #[test]
    fn multiplication_is_a_commutative_monoid(r in arb_gmr(), s in arb_gmr(), t in arb_gmr()) {
        // The tuple join monoid is commutative, so A[T] is a commutative ring.
        prop_assert_eq!(r.mul(&s), s.mul(&r));
        prop_assert_eq!(r.mul(&s).mul(&t), r.mul(&s.mul(&t)));
        prop_assert_eq!(r.mul(&Gmr::one()), r.clone());
        prop_assert!(r.mul(&Gmr::zero()).is_zero());
    }

    #[test]
    fn distributivity(r in arb_gmr(), s in arb_gmr(), t in arb_gmr()) {
        prop_assert_eq!(r.mul(&s.add(&t)), r.mul(&s).add(&r.mul(&t)));
        prop_assert_eq!(r.add(&s).mul(&t), r.mul(&t).add(&s.mul(&t)));
    }

    #[test]
    fn scalar_action_is_bilinear(r in arb_gmr(), s in arb_gmr(), a in -5i64..6) {
        prop_assert_eq!(r.scale(&a).mul(&s), r.mul(&s).scale(&a));
        prop_assert_eq!(r.mul(&s.scale(&a)), r.mul(&s).scale(&a));
    }

    #[test]
    fn delta_identity_for_base_relations(r in arb_gmr(), t in arb_tuple(), m in -2i64..3) {
        // The simplest delta fact: (R + u) = R + u where u is a singleton update; i.e.
        // updates commute with any further addition, and subtracting the update restores R.
        let u = Gmr::singleton(t, m);
        let updated = r.add(&u);
        prop_assert_eq!(updated.sub(&u), r);
    }

    #[test]
    fn join_with_singleton_empty_tuple_scales(r in arb_gmr(), m in -3i64..4) {
        // R * {⟨⟩ ↦ m} = m · R  (the "π∅" trick from the introduction's discussion).
        let scalar = Gmr::singleton(Tuple::empty(), m);
        prop_assert_eq!(r.mul(&scalar), r.scale(&m));
    }

    #[test]
    fn total_multiplicity_is_additive(r in arb_gmr(), s in arb_gmr()) {
        prop_assert_eq!(
            r.add(&s).total_multiplicity(),
            r.total_multiplicity() + s.total_multiplicity()
        );
    }

    #[test]
    fn total_multiplicity_is_multiplicative_on_disjoint_schemas(
        vals_a in prop::collection::vec((0i64..4, -3i64..4), 0..5),
        vals_b in prop::collection::vec((0i64..4, -3i64..4), 0..5),
    ) {
        // For relations over disjoint schemas the join is a cross product, so the grand
        // total multiplicity multiplies. (Not true for overlapping schemas.)
        let r = Gmr::from_weighted(vals_a.into_iter().map(|(v, m)| (Tuple::singleton("A", v), m)));
        let s = Gmr::from_weighted(vals_b.into_iter().map(|(v, m)| (Tuple::singleton("B", v), m)));
        prop_assert_eq!(
            r.mul(&s).total_multiplicity(),
            r.total_multiplicity() * s.total_multiplicity()
        );
    }
}
