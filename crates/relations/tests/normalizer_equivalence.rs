//! Property test: the interned fixed-width normalizer ([`BatchNormalizer`]) produces
//! *exactly* the [`DeltaBatch`] of the classic `Vec<Value>` comparison-sort path
//! ([`DeltaBatch::from_updates`]) — same groups, same order, same keys, same weights —
//! on adversarial streams: string keys interned in non-lexicographic order, float edge
//! cases, zero and multi-unit multiplicities, mixed arities within one relation, and
//! one normalizer reused across many batches (so stale scratch would be caught).

use dbring_relations::{BatchNormalizer, DeltaBatch, Update, Value};
use proptest::prelude::*;

/// Values drawn to collide often: small ints, a tiny string pool (plus lexicographic
/// traps: "aa" < "z" but "z" is likelier to be interned first), float edge cases,
/// and bools.
const STRINGS: [&str; 5] = ["z", "aa", "m", "zz", "a"];
const FLOATS: [f64; 6] = [0.0, -0.0, 1.5, -2.25, f64::NAN, f64::INFINITY];
const RELATIONS: [&str; 3] = ["R", "S", "T"];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-3i64..4).prop_map(Value::int),
        (0usize..STRINGS.len()).prop_map(|i| Value::str(STRINGS[i])),
        (0usize..FLOATS.len()).prop_map(|i| Value::float(FLOATS[i])),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn arb_update() -> impl Strategy<Value = Update> {
    (
        (0usize..RELATIONS.len()).prop_map(|i| RELATIONS[i]),
        prop::collection::vec(arb_value(), 0..4),
        -3i64..4,
    )
        .prop_map(|(rel, values, multiplicity)| {
            let mut u = Update::insert(rel, values);
            u.multiplicity = multiplicity;
            u
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn interned_normalization_equals_classic_path(
        batches in prop::collection::vec(prop::collection::vec(arb_update(), 0..40), 1..6)
    ) {
        // One normalizer across all batches: scratch and interner state persist.
        let mut normalizer = BatchNormalizer::new();
        for updates in &batches {
            let interned = normalizer.normalize(updates);
            let classic = DeltaBatch::from_updates(updates);
            prop_assert_eq!(interned, classic);
        }
        prop_assert!(normalizer.interner().is_consistent());
    }

    #[test]
    fn interner_ids_stay_stable_across_batches(
        batches in prop::collection::vec(prop::collection::vec(arb_update(), 0..30), 2..5)
    ) {
        let mut normalizer = BatchNormalizer::new();
        let _ = normalizer.normalize(&batches[0]);
        let snapshot: Vec<(String, u32)> = (0..normalizer.interner().len() as u32)
            .map(|id| (normalizer.interner().resolve(id).to_string(), id))
            .collect();
        for updates in &batches[1..] {
            let _ = normalizer.normalize(updates);
        }
        for (s, id) in &snapshot {
            prop_assert_eq!(normalizer.interner().get(s), Some(*id));
        }
    }
}
