//! Data values of the active domain `Adom`.
//!
//! Values appear both as tuple components (so they must be hashable and totally ordered to
//! key the sparse GMR representation) and inside arithmetic terms of aggregate queries (so
//! they must convert to the [`Number`] ring). Floats are stored with canonicalized bits so
//! that `Value` can implement `Eq`/`Hash` without surprising the user: `-0.0` is identified
//! with `0.0`, and all NaNs are identified with each other.

use std::fmt;
use std::sync::Arc;

use dbring_algebra::Number;
use serde::{Deserialize, Serialize};

/// A single data value: the elements of the active domain `Adom`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// IEEE-754 double with canonicalized bit pattern (see [`OrderedF64`]).
    Float(OrderedF64),
    /// Reference-counted UTF-8 string. *Not* globally interned: [`Value::str`] allocates
    /// a fresh `Arc<str>` per call. The ingest hot path interns strings to dense ids via
    /// [`Interner`](crate::intern::Interner) (whose
    /// [`value_str`](crate::intern::Interner::value_str) also builds `Value`s that share
    /// one allocation per distinct string).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Builds a float value.
    pub fn float(f: f64) -> Self {
        Value::Float(OrderedF64::new(f))
    }

    /// The value as a [`Number`], if it is numeric (`Int`, `Float`, or `Bool` as 0/1).
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Int(i) => Some(Number::Int(*i)),
            Value::Float(f) => Some(Number::Float(f.get())),
            Value::Bool(b) => Some(Number::Int(i64::from(*b))),
            Value::Str(_) => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The value as a `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

impl From<Number> for Value {
    fn from(n: Number) -> Self {
        match n {
            Number::Int(i) => Value::Int(i),
            Number::Float(f) => Value::float(f),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", x.get()),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

/// An `f64` wrapper with canonical bit pattern, giving `Eq`, `Ord` and `Hash`.
///
/// `-0.0` is canonicalized to `0.0` and every NaN to a single canonical NaN, so equality
/// and hashing are consistent; ordering uses IEEE `total_cmp` on the canonical value.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wraps an `f64`, canonicalizing `-0.0` and NaN.
    pub fn new(f: f64) -> Self {
        if f.is_nan() {
            OrderedF64(f64::NAN)
        } else if f == 0.0 {
            OrderedF64(0.0)
        } else {
            OrderedF64(f)
        }
    }

    /// The wrapped value.
    pub fn get(&self) -> f64 {
        self.0
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &Self) -> bool {
        self.0.to_bits() == other.0.to_bits()
    }
}
impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrderedF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for OrderedF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn construction_and_accessors() {
        assert_eq!(Value::int(3).as_int(), Some(3));
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::str("abc").as_str(), Some("abc"));
        assert_eq!(Value::from("xyz"), Value::str("xyz"));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(String::from("s")), Value::str("s"));
        assert_eq!(Value::int(3).as_str(), None);
        assert_eq!(Value::str("abc").as_int(), None);
    }

    #[test]
    fn numeric_conversion() {
        assert_eq!(Value::int(3).as_number(), Some(Number::Int(3)));
        assert_eq!(Value::float(2.5).as_number(), Some(Number::Float(2.5)));
        assert_eq!(Value::Bool(true).as_number(), Some(Number::Int(1)));
        assert_eq!(Value::str("x").as_number(), None);
        assert_eq!(Value::from(Number::Int(7)), Value::Int(7));
        assert_eq!(Value::from(Number::Float(0.5)), Value::float(0.5));
    }

    #[test]
    fn float_canonicalization() {
        assert_eq!(Value::float(0.0), Value::float(-0.0));
        assert_eq!(Value::float(f64::NAN), Value::float(-f64::NAN));
        let mut set = HashSet::new();
        set.insert(Value::float(0.0));
        assert!(set.contains(&Value::float(-0.0)));
    }

    #[test]
    fn ordering_is_total_across_variants() {
        let mut values = [
            Value::str("b"),
            Value::int(2),
            Value::float(1.5),
            Value::Bool(false),
            Value::int(-1),
            Value::str("a"),
        ];
        values.sort();
        // Sorting must be deterministic and not panic; ints sort among ints, strings among
        // strings (the inter-variant order is the enum declaration order).
        let ints: Vec<_> = values.iter().filter_map(Value::as_int).collect();
        assert_eq!(ints, vec![-1, 2]);
    }

    #[test]
    fn display() {
        assert_eq!(Value::int(5).to_string(), "5");
        assert_eq!(Value::float(1.5).to_string(), "1.5");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::int(5).type_name(), "int");
        assert_eq!(Value::str("hi").type_name(), "string");
    }
}
