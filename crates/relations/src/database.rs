//! Databases and single-tuple updates.
//!
//! A [`Database`] maps relation names to classical bag relations stored as GMRs over `ℤ`
//! (`ℤ[T]`), together with a declared column order so positional rows (and positional
//! update events `±R(t₁,…,t_k)`) can be translated into schema-carrying [`Tuple`]s.
//!
//! An [`Update`] is the paper's single-tuple update `±R(t⃗)`: the insertion
//! (`multiplicity = +1`) or deletion (`multiplicity = −1`) of one tuple. Update streams
//! drive every maintenance strategy in the workspace — the compiled recursive-IVM
//! programs, the classical first-order IVM baseline, and naive re-evaluation.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gmr::Gmr;
use crate::tuple::Tuple;
use crate::value::Value;

/// Errors raised by [`Database`] operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DatabaseError {
    /// The relation has not been declared.
    UnknownRelation(String),
    /// The relation was declared twice.
    AlreadyDeclared(String),
    /// A row or update had the wrong number of values.
    ArityMismatch {
        /// Relation concerned.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Arity of the offending row.
        got: usize,
    },
}

impl fmt::Display for DatabaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatabaseError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            DatabaseError::AlreadyDeclared(r) => write!(f, "relation {r} declared twice"),
            DatabaseError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation} expects {expected} values, got {got}"
            ),
        }
    }
}

impl std::error::Error for DatabaseError {}

/// A single-tuple update `±R(t⃗)` — the paper's update events `+R(a)` / `−R(a)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Update {
    /// The relation being updated.
    pub relation: String,
    /// The tuple's values, in the relation's declared column order.
    pub values: Vec<Value>,
    /// `+1` for insertion, `−1` for deletion (other magnitudes are allowed and mean a
    /// batch of identical single-tuple updates).
    pub multiplicity: i64,
}

impl Update {
    /// An insertion `+R(t⃗)`.
    pub fn insert(relation: impl Into<String>, values: Vec<Value>) -> Self {
        Update {
            relation: relation.into(),
            values,
            multiplicity: 1,
        }
    }

    /// A deletion `−R(t⃗)`.
    pub fn delete(relation: impl Into<String>, values: Vec<Value>) -> Self {
        Update {
            relation: relation.into(),
            values,
            multiplicity: -1,
        }
    }

    /// Whether this update is an insertion (positive multiplicity).
    pub fn is_insert(&self) -> bool {
        self.multiplicity > 0
    }

    /// The update with the opposite sign.
    pub fn inverse(&self) -> Self {
        Update {
            relation: self.relation.clone(),
            values: self.values.clone(),
            multiplicity: -self.multiplicity,
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.multiplicity >= 0 { "+" } else { "-" };
        write!(f, "{}{}{}(", sign, self.multiplicity.abs(), self.relation)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[derive(Clone, Debug)]
struct RelationData {
    columns: Vec<String>,
    data: Gmr<i64>,
}

/// A database: named relations with declared column orders and `ℤ`-multiplicity contents.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: BTreeMap<String, RelationData>,
}

impl Database {
    /// An empty database with no declared relations.
    pub fn new() -> Self {
        Database::default()
    }

    /// Declares a relation with the given column names.
    pub fn declare(
        &mut self,
        name: impl Into<String>,
        columns: &[&str],
    ) -> Result<(), DatabaseError> {
        let name = name.into();
        if self.relations.contains_key(&name) {
            return Err(DatabaseError::AlreadyDeclared(name));
        }
        self.relations.insert(
            name,
            RelationData {
                columns: columns.iter().map(|c| c.to_string()).collect(),
                data: Gmr::zero(),
            },
        );
        Ok(())
    }

    /// The declared column names of a relation.
    pub fn columns(&self, relation: &str) -> Option<&[String]> {
        self.relations.get(relation).map(|r| r.columns.as_slice())
    }

    /// The names of all declared relations, in sorted order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// The contents of a relation as a GMR over `ℤ`.
    pub fn relation(&self, relation: &str) -> Option<&Gmr<i64>> {
        self.relations.get(relation).map(|r| &r.data)
    }

    /// Builds the schema-carrying [`Tuple`] for a positional row of a relation.
    pub fn row_tuple(&self, relation: &str, values: &[Value]) -> Result<Tuple, DatabaseError> {
        let rel = self
            .relations
            .get(relation)
            .ok_or_else(|| DatabaseError::UnknownRelation(relation.to_string()))?;
        if rel.columns.len() != values.len() {
            return Err(DatabaseError::ArityMismatch {
                relation: relation.to_string(),
                expected: rel.columns.len(),
                got: values.len(),
            });
        }
        Ok(Tuple::from_pairs(
            rel.columns.iter().cloned().zip(values.iter().cloned()),
        ))
    }

    /// Inserts a row with multiplicity `+1`.
    pub fn insert(&mut self, relation: &str, values: Vec<Value>) -> Result<(), DatabaseError> {
        self.apply(&Update::insert(relation, values))
    }

    /// Deletes a row (multiplicity `−1`; the relation may go negative, per Remark 5.1).
    pub fn delete(&mut self, relation: &str, values: Vec<Value>) -> Result<(), DatabaseError> {
        self.apply(&Update::delete(relation, values))
    }

    /// Applies a single-tuple update `±R(t⃗)`: `D + u` in the paper's notation.
    pub fn apply(&mut self, update: &Update) -> Result<(), DatabaseError> {
        let tuple = self.row_tuple(&update.relation, &update.values)?;
        let rel = self
            .relations
            .get_mut(&update.relation)
            .expect("row_tuple already checked existence");
        rel.data.add_entry(tuple, update.multiplicity);
        Ok(())
    }

    /// Applies a sequence of updates.
    pub fn apply_all<'a>(
        &mut self,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> Result<(), DatabaseError> {
        for u in updates {
            self.apply(u)?;
        }
        Ok(())
    }

    /// Applies an already-normalized [`DeltaBatch`](crate::batch::DeltaBatch) — the
    /// batch counterpart of [`Database::apply_all`]: each group's relation is
    /// resolved once and its net deltas land in one pass, paying per *distinct*
    /// tuple rather than per source update. For callers that keep a schema-carrying
    /// database current under batched ingest; a host that only needs a backfill
    /// source should maintain the cheaper positional [`Snapshot`](crate::Snapshot)
    /// instead and materialize on demand.
    ///
    /// Not atomic: a group against an undeclared relation (or a delta with the wrong
    /// arity) fails after every earlier group was applied.
    pub fn apply_delta_batch(
        &mut self,
        batch: &crate::batch::DeltaBatch<'_>,
    ) -> Result<(), DatabaseError> {
        for group in batch.groups() {
            let rel = self
                .relations
                .get_mut(group.relation())
                .ok_or_else(|| DatabaseError::UnknownRelation(group.relation().to_string()))?;
            let sign = if group.is_insert() { 1 } else { -1 };
            for (values, weight) in group.deltas() {
                if rel.columns.len() != values.len() {
                    return Err(DatabaseError::ArityMismatch {
                        relation: group.relation().to_string(),
                        expected: rel.columns.len(),
                        got: values.len(),
                    });
                }
                let tuple =
                    Tuple::from_pairs(rel.columns.iter().cloned().zip(values.iter().cloned()));
                rel.data.add_entry(tuple, sign * weight);
            }
        }
        Ok(())
    }

    /// The schema with none of the contents: every declared relation, every column
    /// list, all data dropped. This is the "catalog" reading of a loaded database —
    /// use it where only declarations should travel (compiling a query, seeding an
    /// empty engine) so contents cannot leak along with them.
    pub fn schema_only(&self) -> Database {
        Database {
            relations: self
                .relations
                .iter()
                .map(|(name, rel)| {
                    (
                        name.clone(),
                        RelationData {
                            columns: rel.columns.clone(),
                            data: Gmr::zero(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Total number of distinct tuples (support size) across all relations.
    pub fn total_support(&self) -> usize {
        self.relations.values().map(|r| r.data.support_size()).sum()
    }

    /// Whether every relation is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(|r| r.data.is_zero())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn db_with_r() -> Database {
        let mut db = Database::new();
        db.declare("R", &["A", "B"]).unwrap();
        db
    }

    #[test]
    fn declare_and_columns() {
        let db = db_with_r();
        assert_eq!(
            db.columns("R"),
            Some(&["A".to_string(), "B".to_string()][..])
        );
        assert_eq!(db.columns("S"), None);
        assert_eq!(db.relation_names().collect::<Vec<_>>(), vec!["R"]);
        assert!(db.is_empty());
    }

    #[test]
    fn double_declaration_is_an_error() {
        let mut db = db_with_r();
        assert_eq!(
            db.declare("R", &["X"]),
            Err(DatabaseError::AlreadyDeclared("R".to_string()))
        );
    }

    #[test]
    fn insert_delete_roundtrip() {
        let mut db = db_with_r();
        db.insert("R", vec![Value::int(1), Value::str("x")])
            .unwrap();
        db.insert("R", vec![Value::int(1), Value::str("x")])
            .unwrap();
        db.insert("R", vec![Value::int(2), Value::str("y")])
            .unwrap();
        let r = db.relation("R").unwrap();
        assert_eq!(r.get(&tuple! { "A" => 1, "B" => "x" }), 2);
        assert_eq!(r.get(&tuple! { "A" => 2, "B" => "y" }), 1);
        assert_eq!(db.total_support(), 2);

        db.delete("R", vec![Value::int(1), Value::str("x")])
            .unwrap();
        assert_eq!(
            db.relation("R")
                .unwrap()
                .get(&tuple! { "A" => 1, "B" => "x" }),
            1
        );
        // Deleting a tuple that is not present leaves a negative multiplicity (Remark 5.1).
        db.delete("R", vec![Value::int(9), Value::str("z")])
            .unwrap();
        assert_eq!(
            db.relation("R")
                .unwrap()
                .get(&tuple! { "A" => 9, "B" => "z" }),
            -1
        );
    }

    #[test]
    fn arity_and_name_errors() {
        let mut db = db_with_r();
        assert_eq!(
            db.insert("S", vec![Value::int(1)]),
            Err(DatabaseError::UnknownRelation("S".to_string()))
        );
        assert_eq!(
            db.insert("R", vec![Value::int(1)]),
            Err(DatabaseError::ArityMismatch {
                relation: "R".to_string(),
                expected: 2,
                got: 1
            })
        );
        assert!(db.is_empty());
    }

    #[test]
    fn update_constructors_and_display() {
        let ins = Update::insert("R", vec![Value::int(1), Value::str("x")]);
        assert!(ins.is_insert());
        assert_eq!(ins.to_string(), "+1R(1, \"x\")");
        let del = ins.inverse();
        assert!(!del.is_insert());
        assert_eq!(del.multiplicity, -1);
        assert_eq!(del.to_string(), "-1R(1, \"x\")");
    }

    #[test]
    fn apply_all_and_cancellation() {
        let mut db = db_with_r();
        let u = Update::insert("R", vec![Value::int(1), Value::int(2)]);
        db.apply_all(&[u.clone(), u.clone(), u.inverse()]).unwrap();
        assert_eq!(
            db.relation("R")
                .unwrap()
                .get(&tuple! { "A" => 1, "B" => 2 }),
            1
        );
        db.apply(&u.inverse()).unwrap();
        assert!(db.is_empty());
    }

    #[test]
    fn apply_delta_batch_matches_apply_all() {
        use crate::batch::DeltaBatch;
        let mut db = db_with_r();
        db.declare("S", &["X"]).unwrap();
        let updates = vec![
            Update::insert("R", vec![Value::int(1), Value::int(2)]),
            Update::insert("R", vec![Value::int(1), Value::int(2)]),
            Update::delete("R", vec![Value::int(3), Value::int(4)]),
            Update::insert("S", vec![Value::int(9)]),
            Update::delete("S", vec![Value::int(9)]),
        ];
        let mut per_update = db.clone();
        per_update.apply_all(&updates).unwrap();
        let mut batched = db.clone();
        batched
            .apply_delta_batch(&DeltaBatch::from_updates(&updates))
            .unwrap();
        let sorted = |db: &Database, rel: &str| {
            let mut entries: Vec<(Tuple, i64)> = db
                .relation(rel)
                .unwrap()
                .iter()
                .map(|(t, m)| (t.clone(), *m))
                .collect();
            entries.sort();
            entries
        };
        for rel in ["R", "S"] {
            assert_eq!(sorted(&per_update, rel), sorted(&batched, rel), "{rel}");
        }
        // Errors mirror the per-update path.
        let unknown = [Update::insert("Z", vec![Value::int(1)])];
        assert_eq!(
            db.clone()
                .apply_delta_batch(&DeltaBatch::from_updates(&unknown)),
            Err(DatabaseError::UnknownRelation("Z".to_string()))
        );
        let bad_arity = [Update::insert("R", vec![Value::int(1)])];
        assert!(matches!(
            db.clone()
                .apply_delta_batch(&DeltaBatch::from_updates(&bad_arity)),
            Err(DatabaseError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn schema_only_keeps_declarations_and_drops_contents() {
        let mut db = db_with_r();
        db.insert("R", vec![Value::int(1), Value::str("x")])
            .unwrap();
        let schema = db.schema_only();
        assert_eq!(schema.columns("R"), db.columns("R"));
        assert!(schema.is_empty());
        assert_eq!(schema.total_support(), 0);
        assert_eq!(db.total_support(), 1, "the source is untouched");
    }

    #[test]
    fn error_display() {
        assert_eq!(
            DatabaseError::UnknownRelation("X".into()).to_string(),
            "unknown relation X"
        );
        assert!(DatabaseError::ArityMismatch {
            relation: "R".into(),
            expected: 2,
            got: 3
        }
        .to_string()
        .contains("expects 2"));
    }
}
