//! Delta batches: a sequence of single-tuple updates normalized into per-relation,
//! per-sign groups of *weighted* deltas.
//!
//! Real ingest rarely arrives one tuple at a time. A [`DeltaBatch`] treats a slice of
//! [`Update`]s as what it algebraically is — one delta relation (a Z-set): multiplicities
//! of identical tuples are consolidated *before* any trigger fires (so a `+R(t)` / `-R(t)`
//! pair inside the batch cancels to nothing), zero-multiplicity updates are dropped, and
//! the surviving net deltas are grouped by `(relation, sign)` with each group's keys in
//! ascending order. The sorted order is what lets ordered storage backends apply a group
//! with one sequential merge pass, and what keeps batch application deterministic
//! regardless of the arrival order of the input updates.
//!
//! The batch *borrows* the updates it normalizes: construction sorts a vector of
//! references and scans the runs, so it performs no per-tuple clones and no tree
//! maintenance — the normalization cost stays a small fraction of actually firing the
//! triggers, which is what makes small batch sizes worthwhile at all.
//!
//! Because the maintained views depend only on the *net* content of the base relations,
//! applying a batch is equivalent to applying its updates one by one, in any order — the
//! executors' batch paths exploit exactly this.

use std::collections::HashMap;
use std::fmt;

use crate::database::Update;
use crate::value::Value;

/// One group of a [`DeltaBatch`]: the net deltas of one relation under one sign, keys
/// ascending, weights strictly positive.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeltaGroup<'a> {
    relation: &'a str,
    is_insert: bool,
    /// `(tuple, weight)` pairs with strictly ascending tuples and weights `>= 1`; a
    /// weight of `w` stands for `w` identical single-tuple updates of this group's sign.
    deltas: Vec<(&'a [Value], i64)>,
}

impl<'a> DeltaGroup<'a> {
    /// Builds a group from already-normalized deltas (keys strictly ascending, weights
    /// `>= 1`); crate-internal so the invariants stay with the normalizers.
    pub(crate) fn new(relation: &'a str, is_insert: bool, deltas: Vec<(&'a [Value], i64)>) -> Self {
        debug_assert!(deltas.windows(2).all(|w| w[0].0 < w[1].0));
        debug_assert!(deltas.iter().all(|(_, w)| *w >= 1));
        DeltaGroup {
            relation,
            is_insert,
            deltas,
        }
    }

    /// The relation this group updates.
    pub fn relation(&self) -> &'a str {
        self.relation
    }

    /// Whether the group's deltas are insertions (positive net multiplicity).
    pub fn is_insert(&self) -> bool {
        self.is_insert
    }

    /// The net deltas: `(tuple, weight)` with tuples strictly ascending and every
    /// weight `>= 1`. The sign lives on the group ([`DeltaGroup::is_insert`]), so a
    /// weight is always the *magnitude* of the net multiplicity.
    pub fn deltas(&self) -> &[(&'a [Value], i64)] {
        &self.deltas
    }

    /// Sum of the weights: how many single-tuple updates this group stands for.
    pub fn total_weight(&self) -> u64 {
        self.deltas.iter().map(|(_, w)| *w as u64).sum()
    }
}

/// A batch of updates normalized into consolidated, sorted [`DeltaGroup`]s, borrowing
/// the updates it was built from.
///
/// Construction ([`DeltaBatch::from_updates`]) nets out multiplicities per
/// `(relation, tuple)`, drops tuples whose net multiplicity is zero (including explicit
/// `multiplicity: 0` updates), and emits at most two groups per relation — insertions,
/// then deletions — in ascending relation-name order.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DeltaBatch<'a> {
    groups: Vec<DeltaGroup<'a>>,
}

impl<'a> DeltaBatch<'a> {
    /// Normalizes a sequence of updates into a batch: consolidate multiplicities of
    /// identical `(relation, tuple)` pairs, drop zero-sum tuples, sort each group's
    /// keys. Costs one linear bucketing pass over the updates (each distinct relation
    /// name is resolved *once per batch* — a run-of-equal-names memo plus a name→bucket
    /// map, never per-update string compares) plus one reference sort *per relation*
    /// that compares tuples only — the comparator never re-compares relation names.
    /// Nothing is cloned.
    ///
    /// For repeated ingest, [`BatchNormalizer`](crate::intern::BatchNormalizer)
    /// produces the identical batch on interned fixed-width keys with scratch reused
    /// across batches; this constructor remains the reference implementation.
    pub fn from_updates(updates: impl IntoIterator<Item = &'a Update>) -> Self {
        let mut buckets: Vec<(&'a str, Vec<&'a Update>)> = Vec::new();
        let mut bucket_of: HashMap<&'a str, usize> = HashMap::new();
        let mut memo: Option<(&'a str, usize)> = None;
        for update in updates {
            if update.multiplicity == 0 {
                continue;
            }
            let slot = match memo {
                Some((name, slot)) if name == update.relation => slot,
                _ => {
                    let slot = *bucket_of
                        .entry(update.relation.as_str())
                        .or_insert_with(|| {
                            buckets.push((update.relation.as_str(), Vec::new()));
                            buckets.len() - 1
                        });
                    memo = Some((update.relation.as_str(), slot));
                    slot
                }
            };
            buckets[slot].1.push(update);
        }
        buckets.sort_unstable_by_key(|(relation, _)| *relation);
        let mut groups: Vec<DeltaGroup<'a>> = Vec::new();
        for (relation, mut bucket) in buckets {
            bucket.sort_unstable_by(|a, b| a.values.cmp(&b.values));
            // Scan the runs of equal tuples, splitting net deltas by sign; the sort
            // established the ascending key order both splits inherit.
            let mut inserts: Vec<(&'a [Value], i64)> = Vec::new();
            let mut deletes: Vec<(&'a [Value], i64)> = Vec::new();
            let mut i = 0usize;
            while i < bucket.len() {
                let values = bucket[i].values.as_slice();
                let mut net = 0i64;
                while i < bucket.len() && bucket[i].values == values {
                    net += bucket[i].multiplicity;
                    i += 1;
                }
                match net.cmp(&0) {
                    std::cmp::Ordering::Greater => inserts.push((values, net)),
                    std::cmp::Ordering::Less => deletes.push((values, -net)),
                    std::cmp::Ordering::Equal => {} // cancelled inside the batch
                }
            }
            if !inserts.is_empty() {
                groups.push(DeltaGroup {
                    relation,
                    is_insert: true,
                    deltas: inserts,
                });
            }
            if !deletes.is_empty() {
                groups.push(DeltaGroup {
                    relation,
                    is_insert: false,
                    deltas: deletes,
                });
            }
        }
        DeltaBatch { groups }
    }

    /// Builds a batch from already-normalized groups (relation-ascending, insertions
    /// before deletions per relation); crate-internal, used by the interned
    /// fixed-width normalizer.
    pub(crate) fn from_groups(groups: Vec<DeltaGroup<'a>>) -> Self {
        DeltaBatch { groups }
    }

    /// The consolidated groups, ordered by relation name with insertions before
    /// deletions.
    pub fn groups(&self) -> &[DeltaGroup<'a>] {
        &self.groups
    }

    /// Number of distinct `(relation, tuple, sign)` deltas across all groups.
    pub fn len(&self) -> usize {
        self.groups.iter().map(|g| g.deltas.len()).sum()
    }

    /// Whether every update in the batch cancelled out (or the batch was empty).
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Sum of all weights: how many single-tuple updates the batch stands for after
    /// consolidation.
    pub fn total_weight(&self) -> u64 {
        self.groups.iter().map(DeltaGroup::total_weight).sum()
    }
}

impl fmt::Display for DeltaBatch<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "batch of {} deltas (weight {}) over {} groups",
            self.len(),
            self.total_weight(),
            self.groups.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ins(rel: &str, v: i64) -> Update {
        Update::insert(rel, vec![Value::int(v)])
    }

    fn del(rel: &str, v: i64) -> Update {
        Update::delete(rel, vec![Value::int(v)])
    }

    fn key(v: i64) -> Vec<Value> {
        vec![Value::int(v)]
    }

    #[test]
    fn consolidates_multiplicities_and_cancels_pairs() {
        let updates = [
            ins("R", 1),
            ins("R", 1),
            del("R", 2),
            ins("R", 2),
            ins("R", 3),
        ];
        let batch = DeltaBatch::from_updates(&updates);
        // R(2): +1 and -1 cancel; R(1) nets to +2; R(3) to +1.
        assert_eq!(batch.groups().len(), 1);
        let group = &batch.groups()[0];
        assert_eq!(group.relation(), "R");
        assert!(group.is_insert());
        assert_eq!(
            group.deltas(),
            &[(key(1).as_slice(), 2), (key(3).as_slice(), 1)]
        );
        assert_eq!(batch.len(), 2);
        assert_eq!(batch.total_weight(), 3);
        assert_eq!(group.total_weight(), 3);
    }

    #[test]
    fn splits_signs_into_separate_groups_inserts_first() {
        let updates = [del("R", 5), ins("R", 1), del("R", 5), ins("S", 9)];
        let batch = DeltaBatch::from_updates(&updates);
        let shapes: Vec<(&str, bool, usize)> = batch
            .groups()
            .iter()
            .map(|g| (g.relation(), g.is_insert(), g.deltas().len()))
            .collect();
        assert_eq!(
            shapes,
            vec![("R", true, 1), ("R", false, 1), ("S", true, 1)]
        );
        // The double deletion consolidates to one weight-2 delta.
        assert_eq!(batch.groups()[1].deltas(), &[(key(5).as_slice(), 2)]);
    }

    #[test]
    fn zero_multiplicity_updates_and_full_cancellation_yield_an_empty_batch() {
        let mut zero = ins("R", 1);
        zero.multiplicity = 0;
        let updates = [zero, ins("R", 2), del("R", 2)];
        let batch = DeltaBatch::from_updates(&updates);
        assert!(batch.is_empty());
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.total_weight(), 0);
        assert!(DeltaBatch::from_updates([]).is_empty());
    }

    #[test]
    fn negative_consolidation_crosses_zero() {
        // +1 then -3 nets to a weight-2 deletion.
        let mut big_del = del("R", 7);
        big_del.multiplicity = -3;
        let updates = [ins("R", 7), big_del];
        let batch = DeltaBatch::from_updates(&updates);
        assert_eq!(batch.groups().len(), 1);
        let group = &batch.groups()[0];
        assert!(!group.is_insert());
        assert_eq!(group.deltas(), &[(key(7).as_slice(), 2)]);
    }

    #[test]
    fn group_keys_are_sorted_regardless_of_arrival_order() {
        let updates = [ins("R", 9), ins("R", 3), ins("R", 6), ins("R", 3)];
        let batch = DeltaBatch::from_updates(&updates);
        let keys: Vec<i64> = batch.groups()[0]
            .deltas()
            .iter()
            .map(|(k, _)| k[0].as_int().unwrap())
            .collect();
        assert_eq!(keys, vec![3, 6, 9]);
        assert_eq!(
            batch.to_string(),
            "batch of 3 deltas (weight 4) over 1 groups"
        );
    }
}
