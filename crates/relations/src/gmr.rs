//! Generalized multiset relations (GMRs): the ring `A[T]` of Definition 3.1.
//!
//! A GMR is a finite-support map from [`Tuple`]s to multiplicities in a ring `A`. Because
//! tuples carry their own schema, addition (generalized multiset union) and multiplication
//! (generalized natural join) are *total* — any two GMRs can be combined — which is what
//! upgrade relational algebra to an actual ring (Proposition 3.3). In code the ring is
//! obtained literally as the monoid ring over the join monoid of tuples:
//! `Gmr<A> = MonoidRing<A, Tuple>`, so all ring operations (and the property tests that
//! check the ring axioms) are inherited from `dbring-algebra`.

use dbring_algebra::{MonoidRing, Number, Semiring};

use crate::tuple::Tuple;
use crate::value::Value;

/// A generalized multiset relation with multiplicities in `A`.
///
/// The default multiplicity ring is [`Number`], which is what the AGCA evaluator produces
/// (integer multiplicities that widen to floats when value aggregation demands it);
/// `Gmr<i64>` is the paper's `ℤ[T]`.
pub type Gmr<A = Number> = MonoidRing<A, Tuple>;

/// Relation-flavoured convenience methods on GMRs.
pub trait GmrExt<A: Semiring>: Sized {
    /// Builds a classical multiset relation: every row uses the same `columns`, every
    /// multiplicity is `1`.
    fn from_rows<V: Into<Value> + Clone>(columns: &[&str], rows: &[Vec<V>]) -> Self;

    /// Builds a GMR from `(tuple, multiplicity)` pairs (duplicates are summed).
    fn from_weighted(rows: impl IntoIterator<Item = (Tuple, A)>) -> Self;

    /// The common schema of all tuples in the support, if they agree (the `sch(R)` of a
    /// classical multiset relation); `None` if the support is empty or heterogeneous.
    fn common_schema(&self) -> Option<Vec<String>>;

    /// The number of tuples counted with multiplicity... i.e. the sum of all
    /// multiplicities (`Sum(R)` over the trivial group).
    fn total_multiplicity(&self) -> A;

    /// Renders the GMR as a small sorted table (for tests, examples and experiment
    /// binaries).
    fn display_table(&self) -> String;
}

impl<A: Semiring> GmrExt<A> for Gmr<A> {
    fn from_rows<V: Into<Value> + Clone>(columns: &[&str], rows: &[Vec<V>]) -> Self {
        let mut out = Gmr::zero();
        for row in rows {
            assert_eq!(
                row.len(),
                columns.len(),
                "row arity {} does not match column count {}",
                row.len(),
                columns.len()
            );
            let tuple = Tuple::from_pairs(
                columns
                    .iter()
                    .zip(row.iter())
                    .map(|(c, v)| (*c, v.clone().into())),
            );
            out.add_entry(tuple, A::one());
        }
        out
    }

    fn from_weighted(rows: impl IntoIterator<Item = (Tuple, A)>) -> Self {
        Gmr::from_pairs(rows)
    }

    fn common_schema(&self) -> Option<Vec<String>> {
        let mut schema: Option<Vec<String>> = None;
        for (tuple, _) in self.iter() {
            let s: Vec<String> = tuple.schema().map(str::to_string).collect();
            match &schema {
                None => schema = Some(s),
                Some(existing) if *existing == s => {}
                Some(_) => return None,
            }
        }
        schema
    }

    fn total_multiplicity(&self) -> A {
        self.total()
    }

    fn display_table(&self) -> String {
        let mut rows: Vec<String> = self.iter().map(|(t, m)| format!("{t} -> {m:?}")).collect();
        rows.sort();
        rows.join("\n")
    }
}

/// Whether a GMR over [`Number`] is a *classical multiset relation*: all tuples share one
/// schema and no multiplicity is negative (Section 5, "AGCA on classical and multiset
/// relations").
pub fn is_classical_multiset(gmr: &Gmr<Number>) -> bool {
    gmr.common_schema().is_some()
        && gmr
            .iter()
            .all(|(_, m)| m.compare(&Number::Int(0)) != std::cmp::Ordering::Less)
}

/// Converts an integer-multiplicity GMR (`ℤ[T]`) into the [`Number`]-multiplicity form used
/// by the evaluator. This is the coefficient-ring homomorphism `ℤ → Number` lifted to the
/// monoid ring.
pub fn to_number_gmr(gmr: &Gmr<i64>) -> Gmr<Number> {
    gmr.map_coefficients(|m| Number::Int(*m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn example_3_2() -> (Gmr<i64>, Gmr<i64>, Gmr<i64>) {
        // The three GMRs of Example 3.2, with r1=1, r2=2, s=3, t1=4, t2=5.
        let r = Gmr::from_pairs(vec![
            (tuple! { "A" => "a1" }, 1i64),
            (tuple! { "A" => "a2", "B" => "b" }, 2),
        ]);
        let s = Gmr::from_pairs(vec![(tuple! { "C" => "c" }, 3i64)]);
        let t = Gmr::from_pairs(vec![
            (tuple! { "C" => "c" }, 4i64),
            (tuple! { "B" => "b", "C" => "c" }, 5),
        ]);
        (r, s, t)
    }

    #[test]
    fn example_3_2_addition() {
        let (_, s, t) = example_3_2();
        let sum = s.add(&t);
        assert_eq!(sum.get(&tuple! { "C" => "c" }), 3 + 4);
        assert_eq!(sum.get(&tuple! { "B" => "b", "C" => "c" }), 5);
        assert_eq!(sum.support_size(), 2);
    }

    #[test]
    #[allow(clippy::identity_op)] // multiplicities written out as in the paper's Example 3.2
    fn example_3_2_multiplication() {
        // R * (S + T) as displayed in the paper.
        let (r, s, t) = example_3_2();
        let prod = r.mul(&s.add(&t));
        assert_eq!(prod.get(&tuple! { "A" => "a1", "C" => "c" }), 1 * (3 + 4));
        assert_eq!(
            prod.get(&tuple! { "A" => "a1", "B" => "b", "C" => "c" }),
            1 * 5
        );
        assert_eq!(
            prod.get(&tuple! { "A" => "a2", "B" => "b", "C" => "c" }),
            2 * (3 + 4) + 2 * 5
        );
        assert_eq!(prod.support_size(), 3);
    }

    #[test]
    fn multiplication_on_classical_relations_is_natural_join() {
        let r = Gmr::<i64>::from_rows(&["A", "B"], &[vec![1, 10], vec![2, 20], vec![2, 20]]);
        let s = Gmr::<i64>::from_rows(&["B", "C"], &[vec![10, 100], vec![30, 300]]);
        let joined = r.mul(&s);
        assert_eq!(joined.get(&tuple! { "A" => 1, "B" => 10, "C" => 100 }), 1);
        // Tuples with B=20 or B=30 have no join partner.
        assert_eq!(joined.support_size(), 1);
        // Multiplicities multiply: duplicate (2,20) row contributes nothing here, but a
        // matching pair does.
        let s2 = Gmr::<i64>::from_rows(&["B", "C"], &[vec![20, 200], vec![20, 201]]);
        let joined2 = r.mul(&s2);
        assert_eq!(joined2.get(&tuple! { "A" => 2, "B" => 20, "C" => 200 }), 2);
    }

    #[test]
    fn addition_on_same_schema_is_bag_union() {
        let r = Gmr::<i64>::from_rows(&["A"], &[vec![1], vec![2]]);
        let s = Gmr::<i64>::from_rows(&["A"], &[vec![2], vec![3]]);
        let u = r.add(&s);
        assert_eq!(u.get(&tuple! { "A" => 1 }), 1);
        assert_eq!(u.get(&tuple! { "A" => 2 }), 2);
        assert_eq!(u.get(&tuple! { "A" => 3 }), 1);
    }

    #[test]
    fn negative_multiplicities_model_deletions() {
        // Remark 5.1: ∅ + (−R) = −R; deleting "too much" leaves negative tuples.
        let r = Gmr::<i64>::from_rows(&["A"], &[vec![1]]);
        let deleted = Gmr::<i64>::zero().sub(&r);
        assert_eq!(deleted.get(&tuple! { "A" => 1 }), -1);
        assert!(r.add(&deleted).is_zero());
    }

    #[test]
    fn one_is_the_singleton_empty_tuple() {
        let one = Gmr::<i64>::one();
        assert_eq!(one.get(&Tuple::empty()), 1);
        let r = Gmr::<i64>::from_rows(&["A"], &[vec![5]]);
        assert_eq!(r.mul(&one), r);
    }

    #[test]
    fn schema_helpers() {
        let r = Gmr::<i64>::from_rows(&["A", "B"], &[vec![1, 2], vec![3, 4]]);
        assert_eq!(
            r.common_schema(),
            Some(vec!["A".to_string(), "B".to_string()])
        );
        assert_eq!(r.total_multiplicity(), 2);
        let mixed = Gmr::from_pairs(vec![(tuple! { "A" => 1 }, 1i64), (tuple! { "B" => 2 }, 1)]);
        assert_eq!(mixed.common_schema(), None);
        assert_eq!(Gmr::<i64>::zero().common_schema(), None);
    }

    #[test]
    fn classicality_check() {
        let classical = to_number_gmr(&Gmr::<i64>::from_rows(&["A"], &[vec![1], vec![1]]));
        assert!(is_classical_multiset(&classical));
        let negative = Gmr::from_pairs(vec![(tuple! { "A" => 1 }, Number::Int(-1))]);
        assert!(!is_classical_multiset(&negative));
        let heterogeneous = Gmr::from_pairs(vec![
            (tuple! { "A" => 1 }, Number::Int(1)),
            (tuple! { "B" => 1 }, Number::Int(1)),
        ]);
        assert!(!is_classical_multiset(&heterogeneous));
    }

    #[test]
    fn display_table_is_sorted() {
        let r = Gmr::<i64>::from_rows(&["A"], &[vec![2], vec![1]]);
        let table = r.display_table();
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("A=1"));
        assert!(lines[1].contains("A=2"));
    }
}
