//! Records ("tuples with a schema of their own", Section 3.1): partial functions from
//! column names to values.
//!
//! The set `Sng∅` of singleton relations plus the empty relation forms a commutative
//! monoid under natural join, with `{⟨⟩}` as unit and `∅` as zero. Removing the zero
//! ("mutilation") gives the index monoid of the GMR ring. In code, [`Tuple`] implements
//! [`PartialMonoid`]: `try_combine` is the natural join and returns `None` exactly when the
//! join is inconsistent (the paper's `∅`).

use std::collections::BTreeMap;
use std::fmt;

use dbring_algebra::PartialMonoid;
use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A record: a partial function from column names (`Σ`) to data values (`Adom`).
///
/// The representation is an ordered map, so iteration order, `Display`, `Hash` and `Ord`
/// are all deterministic and schema-order independent.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize)]
pub struct Tuple(BTreeMap<String, Value>);

impl Tuple {
    /// The empty tuple `⟨⟩` (the unit of the join monoid).
    pub fn empty() -> Self {
        Tuple(BTreeMap::new())
    }

    /// Builds a tuple from `(column, value)` pairs.
    ///
    /// # Panics
    /// Panics if the same column appears twice with different values (a malformed record).
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (impl Into<String>, impl Into<Value>)>,
    ) -> Self {
        let mut map = BTreeMap::new();
        for (k, v) in pairs {
            let k = k.into();
            let v = v.into();
            if let Some(prev) = map.insert(k.clone(), v.clone()) {
                assert!(
                    prev == v,
                    "column {k:?} bound to two different values ({prev} vs {v})"
                );
            }
        }
        Tuple(map)
    }

    /// Builds the single-column tuple `{column ↦ value}`.
    pub fn singleton(column: impl Into<String>, value: impl Into<Value>) -> Self {
        let mut map = BTreeMap::new();
        map.insert(column.into(), value.into());
        Tuple(map)
    }

    /// The value bound to `column`, if any.
    pub fn get(&self, column: &str) -> Option<&Value> {
        self.0.get(column)
    }

    /// Whether `column` is in the tuple's domain.
    pub fn contains(&self, column: &str) -> bool {
        self.0.contains_key(column)
    }

    /// The tuple's schema `dom(t⃗)`, in column order.
    pub fn schema(&self) -> impl Iterator<Item = &str> {
        self.0.keys().map(String::as_str)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether this is the empty tuple `⟨⟩`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over `(column, value)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Returns a new tuple extended with `column ↦ value`.
    ///
    /// Returns `None` if `column` is already bound to a *different* value (so this is the
    /// natural join with a singleton).
    pub fn extended(&self, column: impl Into<String>, value: impl Into<Value>) -> Option<Self> {
        self.join(&Tuple::singleton(column, value))
    }

    /// Whether the two records are *consistent*: they agree on every shared column
    /// (`{t⃗} ⋈ {s⃗} ≠ ∅`).
    pub fn is_consistent_with(&self, other: &Self) -> bool {
        let (small, large) = if self.arity() <= other.arity() {
            (self, other)
        } else {
            (other, self)
        };
        small
            .0
            .iter()
            .all(|(k, v)| large.0.get(k).is_none_or(|w| w == v))
    }

    /// The natural join of two records: their union if consistent, `None` otherwise.
    pub fn join(&self, other: &Self) -> Option<Self> {
        if !self.is_consistent_with(other) {
            return None;
        }
        let mut map = self.0.clone();
        for (k, v) in &other.0 {
            map.insert(k.clone(), v.clone());
        }
        Some(Tuple(map))
    }

    /// The restriction `t⃗|_columns` of the record to a set of columns.
    pub fn project(&self, columns: &[&str]) -> Self {
        Tuple(
            self.0
                .iter()
                .filter(|(k, _)| columns.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        )
    }

    /// Whether `self` is a sub-record of `other` (i.e. `{self} ⋈ {other} = {other}`).
    pub fn is_subtuple_of(&self, other: &Self) -> bool {
        self.0
            .iter()
            .all(|(k, v)| other.0.get(k).is_some_and(|w| w == v))
    }

    /// All sub-records of this record (the `2^arity` restrictions of its domain).
    ///
    /// Used by the literal implementation of the `Sum` semantics; exponential in the arity,
    /// which is bounded by the (small, fixed) number of query variables.
    pub fn subtuples(&self) -> Vec<Tuple> {
        let entries: Vec<(&String, &Value)> = self.0.iter().collect();
        let mut out = Vec::with_capacity(1 << entries.len().min(20));
        let n = entries.len();
        for mask in 0u64..(1u64 << n) {
            let mut map = BTreeMap::new();
            for (i, (k, v)) in entries.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    map.insert((*k).clone(), (*v).clone());
                }
            }
            out.push(Tuple(map));
        }
        out
    }

    /// Renames a column, leaving the tuple unchanged if the column is absent.
    ///
    /// # Panics
    /// Panics if the target name is already bound to a different value.
    pub fn rename(&self, from: &str, to: &str) -> Self {
        match self.0.get(from) {
            None => self.clone(),
            Some(v) => {
                let mut map = self.0.clone();
                map.remove(from);
                if let Some(prev) = map.insert(to.to_string(), v.clone()) {
                    assert!(prev == *v, "rename collides with an existing binding");
                }
                Tuple(map)
            }
        }
    }
}

impl PartialMonoid for Tuple {
    fn partial_unit() -> Self {
        Tuple::empty()
    }
    fn try_combine(&self, other: &Self) -> Option<Self> {
        self.join(other)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "⟩")
    }
}

impl<K: Into<String>, V: Into<Value>> FromIterator<(K, V)> for Tuple {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Tuple::from_pairs(iter)
    }
}

/// Convenience macro for building tuples: `tuple! { "A" => 1, "B" => "x" }`.
#[macro_export]
macro_rules! tuple {
    () => { $crate::Tuple::empty() };
    ($($col:expr => $val:expr),+ $(,)?) => {
        $crate::Tuple::from_pairs(vec![$(($col, $crate::Value::from($val))),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t_ab() -> Tuple {
        Tuple::from_pairs(vec![("A", Value::int(1)), ("B", Value::str("x"))])
    }

    #[test]
    fn construction_and_access() {
        let t = t_ab();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.get("A"), Some(&Value::int(1)));
        assert_eq!(t.get("B"), Some(&Value::str("x")));
        assert_eq!(t.get("C"), None);
        assert!(t.contains("A"));
        assert!(!t.contains("C"));
        assert_eq!(t.schema().collect::<Vec<_>>(), vec!["A", "B"]);
        assert!(Tuple::empty().is_empty());
        assert!(!t.is_empty());
    }

    #[test]
    fn macro_builds_tuples() {
        let t = tuple! { "A" => 1, "B" => "x" };
        assert_eq!(t, t_ab());
        assert_eq!(tuple! {}, Tuple::empty());
    }

    #[test]
    #[should_panic]
    fn conflicting_pairs_panic() {
        let _ = Tuple::from_pairs(vec![("A", Value::int(1)), ("A", Value::int(2))]);
    }

    #[test]
    fn consistency_and_join() {
        let t = t_ab();
        let s = Tuple::from_pairs(vec![("B", Value::str("x")), ("C", Value::int(9))]);
        let u = Tuple::from_pairs(vec![("B", Value::str("y"))]);
        assert!(t.is_consistent_with(&s));
        assert!(!t.is_consistent_with(&u));
        let joined = t.join(&s).unwrap();
        assert_eq!(joined.arity(), 3);
        assert_eq!(joined.get("C"), Some(&Value::int(9)));
        assert_eq!(t.join(&u), None);
        // The empty tuple is the join unit.
        assert_eq!(t.join(&Tuple::empty()), Some(t.clone()));
        assert_eq!(Tuple::empty().join(&t), Some(t.clone()));
    }

    #[test]
    fn join_is_commutative_and_associative_on_examples() {
        let a = tuple! { "A" => 1 };
        let b = tuple! { "B" => 2 };
        let c = tuple! { "A" => 1, "C" => 3 };
        assert_eq!(a.join(&b), b.join(&a));
        let abc1 = a.join(&b).and_then(|x| x.join(&c));
        let abc2 = b.join(&c).and_then(|x| a.join(&x));
        assert_eq!(abc1, abc2);
    }

    #[test]
    fn partial_monoid_instance() {
        assert_eq!(<Tuple as PartialMonoid>::partial_unit(), Tuple::empty());
        let t = t_ab();
        let u = tuple! { "B" => "y" };
        assert_eq!(t.try_combine(&u), None);
        assert_eq!(t.try_combine(&Tuple::empty()), Some(t));
    }

    #[test]
    fn projection_and_subtuples() {
        let t = tuple! { "A" => 1, "B" => 2, "C" => 3 };
        assert_eq!(t.project(&["A", "C"]), tuple! { "A" => 1, "C" => 3 });
        assert_eq!(t.project(&["Z"]), Tuple::empty());
        assert!(tuple! { "A" => 1 }.is_subtuple_of(&t));
        assert!(!tuple! { "A" => 2 }.is_subtuple_of(&t));
        assert!(Tuple::empty().is_subtuple_of(&t));
        let subs = t.subtuples();
        assert_eq!(subs.len(), 8);
        assert!(subs.contains(&Tuple::empty()));
        assert!(subs.contains(&t));
        assert!(subs.contains(&tuple! { "A" => 1, "C" => 3 }));
    }

    #[test]
    fn extension_and_rename() {
        let t = tuple! { "A" => 1 };
        assert_eq!(t.extended("B", 2), Some(tuple! { "A" => 1, "B" => 2 }));
        assert_eq!(t.extended("A", 2), None);
        assert_eq!(t.extended("A", 1), Some(t.clone()));
        assert_eq!(t.rename("A", "X"), tuple! { "X" => 1 });
        assert_eq!(t.rename("Z", "X"), t);
    }

    #[test]
    fn display_is_deterministic() {
        let t = tuple! { "B" => 2, "A" => 1 };
        assert_eq!(t.to_string(), "⟨A=1, B=2⟩");
        assert_eq!(Tuple::empty().to_string(), "⟨⟩");
    }
}
