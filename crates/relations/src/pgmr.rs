//! Parametrized GMRs (Section 3.2): the avalanche ring over tuples.
//!
//! A parametrized GMR (pgmr) is a function from binding tuples to GMRs; the product
//! threads the tuple produced by the left factor into the binding context of the right
//! factor ("sideways binding passing"). This is the algebraic device by which AGCA
//! expresses conditions and assignments without a selection operator: Example 3.5 of the
//! paper shows a condition `A < B` as a pgmr that returns `{⟨⟩ ↦ 1}` exactly when its
//! binding satisfies the comparison, and multiplying a relation by it performs the
//! selection.
//!
//! The construction is inherited from the generic avalanche ring of `dbring-algebra`
//! instantiated at the tuple join monoid, so the (semi)ring laws of Proposition 3.4 come
//! from the same generic proofs/tests.

use dbring_algebra::{Avalanche, Number, Semiring};

use crate::gmr::Gmr;
use crate::tuple::Tuple;

/// A parametrized GMR: a function `T → A[T]` with the avalanche product.
pub type Pgmr<A = Number> = Avalanche<A, Tuple>;

/// The pgmr of a *condition*: returns `{⟨⟩ ↦ 1}` when `predicate` holds on the binding
/// tuple and `0` otherwise (Example 3.5).
pub fn condition<A: Semiring>(predicate: impl Fn(&Tuple) -> bool + 'static) -> Pgmr<A> {
    Pgmr::new(move |b: &Tuple| {
        if predicate(b) {
            Gmr::one()
        } else {
            Gmr::zero()
        }
    })
}

/// The pgmr of a GMR: returns the GMR restricted to the tuples consistent with the binding
/// context.
///
/// The restriction is what makes the result a *well-formed* pgmr in the paper's sense
/// (`f(b⃗)(x⃗) = 0` whenever `{b⃗} ⋈ {x⃗} = ∅`, Section 3.2); it matches the semantics of
/// relational atoms `[[R(x⃗)]]` in Section 4, which also filter against the bound
/// variables. Without it, the multiplicative identity law of `⇒A[T]` would only hold at
/// the empty binding.
pub fn constant<A: Semiring>(gmr: Gmr<A>) -> Pgmr<A> {
    Pgmr::new(move |b: &Tuple| {
        Gmr::from_pairs(
            gmr.iter()
                .filter(|(t, _)| t.is_consistent_with(b))
                .map(|(t, m)| (t.clone(), m.clone())),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gmr::GmrExt;
    use crate::tuple;
    use crate::value::Value;

    #[test]
    fn example_3_5_selection_via_condition_pgmr() {
        // R has tuples over {A, B}; multiplying by the condition A < B keeps exactly the
        // satisfying tuples with their original multiplicities.
        let r: Gmr<i64> = Gmr::from_rows(
            &["A", "B"],
            &[vec![1, 5], vec![7, 2], vec![3, 3], vec![1, 5]],
        );
        let f = constant(r);
        let lt = condition(|b: &Tuple| {
            match (
                b.get("A").and_then(Value::as_int),
                b.get("B").and_then(Value::as_int),
            ) {
                (Some(a), Some(bb)) => a < bb,
                _ => false,
            }
        });
        let selected = f.mul(&lt).at(&Tuple::empty());
        assert_eq!(selected.get(&tuple! { "A" => 1, "B" => 5 }), 2);
        assert_eq!(selected.get(&tuple! { "A" => 7, "B" => 2 }), 0);
        assert_eq!(selected.get(&tuple! { "A" => 3, "B" => 3 }), 0);
        assert_eq!(selected.support_size(), 1);
    }

    #[test]
    fn condition_sees_outer_bindings_joined_with_left_factor() {
        // The binding passed to the right factor is b ⋈ y where y is the tuple produced by
        // the left factor; conditions can therefore reference columns produced upstream.
        let r: Gmr<i64> = Gmr::from_rows(&["A"], &[vec![1], vec![2], vec![3]]);
        let keep_even = condition(|b: &Tuple| {
            b.get("A")
                .and_then(Value::as_int)
                .is_some_and(|a| a % 2 == 0)
        });
        let prod = constant(r).mul(&keep_even);
        let out = prod.at(&Tuple::empty());
        assert_eq!(out.support_size(), 1);
        assert_eq!(out.get(&tuple! { "A" => 2 }), 1);
        // With an outer binding that conflicts with every tuple of R, nothing survives:
        // sideways binding passing drops inconsistent combinations.
        let out2 = prod.at(&tuple! { "A" => 99 });
        assert!(out2.is_zero());
    }

    #[test]
    fn pgmr_ring_identities_pointwise() {
        let r: Gmr<i64> = Gmr::from_rows(&["A"], &[vec![1], vec![2]]);
        let f = constant(r.clone());
        let samples = [Tuple::empty(), tuple! { "A" => 1 }, tuple! { "B" => 7 }];
        for b in &samples {
            assert_eq!(Pgmr::one().mul(&f).at(b), f.at(b));
            assert_eq!(f.mul(&Pgmr::one()).at(b), f.at(b));
            assert!(f.mul(&Pgmr::zero()).at(b).is_zero());
            assert!(f.sub(&f).at(b).is_zero());
        }
    }

    #[test]
    fn distributivity_pointwise() {
        let f = constant::<i64>(Gmr::from_rows(&["A"], &[vec![1], vec![2]]));
        let g = constant::<i64>(Gmr::from_rows(&["B"], &[vec![10]]));
        let h = constant::<i64>(Gmr::from_rows(&["B"], &[vec![20]]));
        let lhs = f.mul(&g.add(&h));
        let rhs = f.mul(&g).add(&f.mul(&h));
        for b in [Tuple::empty(), tuple! { "A" => 1 }] {
            assert_eq!(lhs.at(&b), rhs.at(&b));
        }
    }
}
