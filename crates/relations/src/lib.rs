//! The ring of generalized multiset relations (Section 3 of *Incremental Query Evaluation
//! in a Ring of Databases*, Koch, PODS 2010).
//!
//! A *generalized multiset relation* (GMR) is a finite-support map from schema-polymorphic
//! tuples to multiplicities drawn from a ring. Addition generalizes multiset union,
//! multiplication generalizes the natural join, and — because multiplicities may be
//! negative — there is a full additive inverse, which is what makes compositional delta
//! processing possible.
//!
//! The crate provides:
//!
//! * [`value`] — the data values of the active domain (`Adom`), hashable and orderable so
//!   they can key sparse maps;
//! * [`tuple`](mod@tuple) — records as partial functions `Σ → Adom`; the natural join makes the set of
//!   tuples (minus the inconsistent combinations) a mutilated commutative monoid, so the GMR
//!   ring arises literally as the monoid ring `A[T]` of `dbring-algebra` (Proposition 3.3);
//! * [`gmr`] — the GMR type itself plus relation-flavoured helpers (classical-multiset
//!   checks, projections, schema inspection, pretty-printing);
//! * [`pgmr`] — parametrized GMRs, i.e. the avalanche ring over tuples (Section 3.2), which
//!   algebraizes sideways binding passing;
//! * [`database`] — named relations with declared column orders, plus single-tuple
//!   [`Update`]s (`±R(t⃗)`), the update streams consumed by every
//!   maintenance strategy in the workspace;
//! * [`batch`] — [`DeltaBatch`]: a sequence of updates normalized
//!   into consolidated, sorted per-(relation, sign) delta groups, the input of the
//!   executors' batch paths;
//! * [`intern`] — value interning and fixed-width keys: [`Interner`]
//!   maps strings to dense ids, [`IVal`] packs any value into a `Copy`
//!   128-bit word, [`KeyPool`] sorts flat key runs without per-tuple
//!   allocation, and [`BatchNormalizer`] is the
//!   scratch-reusing, interned equivalent of `DeltaBatch::from_updates`;
//! * [`snapshot`] — [`Snapshot`]: a write-optimized positional
//!   mirror of the base relations, maintained per update and materialized into a
//!   [`Database`] only when a late-registered view needs a
//!   backfill source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod database;
pub mod gmr;
pub mod intern;
pub mod pgmr;
pub mod snapshot;
pub mod tuple;
pub mod value;

pub use batch::{DeltaBatch, DeltaGroup};
pub use database::{Database, Update};
pub use gmr::{Gmr, GmrExt};
pub use intern::{BatchNormalizer, IVal, Interner, KeyPool};
pub use pgmr::Pgmr;
pub use snapshot::Snapshot;
pub use tuple::Tuple;
pub use value::Value;
