//! A write-optimized base snapshot: positional relation contents, cheap to maintain on
//! every update, materializable into a [`Database`] when something actually needs one.
//!
//! A multi-view engine that supports *late view registration* must be able to answer
//! "what do the base relations contain right now?" — but it must answer it rarely
//! (only when a view is created mid-stream), while paying for the bookkeeping on
//! *every* update. A [`Database`] is the wrong shape for that write path: its contents
//! are GMRs keyed by schema-carrying [`Tuple`](crate::tuple::Tuple)s, so recording one
//! update means building a `BTreeMap<String, Value>` with cloned column names — fine
//! for evaluation, wasteful as a mirror.
//!
//! [`Snapshot`] keeps the same information positionally: per relation, a hash map from
//! the tuple's value vector to its net multiplicity. Maintaining it costs one hash map
//! update per tuple (no column names, no tree), zero-sum entries are pruned, and
//! [`Snapshot::to_database`] rebuilds the schema-carrying form — paying the tuple
//! construction cost once per *distinct live tuple*, exactly when a backfill asks
//! for it.

use std::collections::HashMap;

use crate::batch::DeltaBatch;
use crate::database::{Database, DatabaseError, Update};
use crate::value::Value;

/// Positional relation contents mirrored from an update stream; see the
/// [module docs](self). Maintenance performs **no validation** — feed it only updates
/// the owning catalog has already vetted (unknown relations simply accumulate under
/// their name; arity is the caller's contract).
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    relations: HashMap<String, HashMap<Vec<Value>, i64>>,
}

impl Snapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::default()
    }

    /// Mirrors the contents of a loaded database (used when an engine starts from
    /// existing data rather than an empty stream). Relations are read in their
    /// declared column order, so a later [`Snapshot::to_database`] round-trips.
    pub fn from_database(db: &Database) -> Self {
        let mut snapshot = Snapshot::new();
        for relation in db.relation_names() {
            let columns = db.columns(relation).expect("declared relation has columns");
            let rows = snapshot.rows_mut(relation);
            for (tuple, multiplicity) in db.relation(relation).expect("declared").iter() {
                let values: Vec<Value> = columns
                    .iter()
                    .map(|c| {
                        tuple
                            .get(c)
                            .expect("database tuples carry their declared columns")
                            .clone()
                    })
                    .collect();
                *rows.entry(values).or_insert(0) += *multiplicity;
            }
            rows.retain(|_, m| *m != 0);
        }
        snapshot
    }

    fn rows_mut(&mut self, relation: &str) -> &mut HashMap<Vec<Value>, i64> {
        // `entry` would demand an owned key even on hits; updates are overwhelmingly
        // to existing relations, so probe first and clone the name only on a miss.
        if !self.relations.contains_key(relation) {
            self.relations.insert(relation.to_string(), HashMap::new());
        }
        self.relations.get_mut(relation).expect("just ensured")
    }

    /// Adds `delta` to one row's net multiplicity, cloning the key only on first
    /// insertion (the hot-key common case touches an existing entry and must not
    /// allocate) and pruning entries whose net reaches zero.
    fn bump(rows: &mut HashMap<Vec<Value>, i64>, values: &[Value], delta: i64) {
        if let Some(entry) = rows.get_mut(values) {
            *entry += delta;
            if *entry == 0 {
                rows.remove(values);
            }
        } else {
            rows.insert(values.to_vec(), delta);
        }
    }

    /// Records one single-tuple update (`±R(t⃗)` with any multiplicity; zero is a
    /// no-op). Entries whose net multiplicity reaches zero are pruned; a tuple's
    /// values are cloned only the first time the tuple is seen.
    pub fn apply(&mut self, update: &Update) {
        if update.multiplicity == 0 {
            return;
        }
        let rows = self.rows_mut(&update.relation);
        Self::bump(rows, &update.values, update.multiplicity);
    }

    /// Records an already-normalized [`DeltaBatch`] — one relation resolution per
    /// group, one hash-map update per *distinct* tuple.
    pub fn apply_delta_batch(&mut self, batch: &DeltaBatch<'_>) {
        for group in batch.groups() {
            let sign = if group.is_insert() { 1 } else { -1 };
            let rows = self.rows_mut(group.relation());
            for (values, weight) in group.deltas() {
                Self::bump(rows, values, sign * weight);
            }
        }
    }

    /// Number of distinct live tuples across all relations.
    pub fn total_support(&self) -> usize {
        self.relations.values().map(HashMap::len).sum()
    }

    /// Whether no live tuples are recorded.
    pub fn is_empty(&self) -> bool {
        self.relations.values().all(HashMap::is_empty)
    }

    /// Materializes the snapshot into a schema-carrying [`Database`] over the given
    /// catalog: the catalog's declarations plus this snapshot's contents. This is the
    /// rare, per-backfill operation the snapshot exists to defer — it costs one tuple
    /// construction per distinct live tuple. Errors if the snapshot holds a relation
    /// the catalog never declared, or rows of the wrong arity.
    pub fn to_database(&self, catalog: &Database) -> Result<Database, DatabaseError> {
        let mut db = catalog.schema_only();
        for (relation, rows) in &self.relations {
            for (values, multiplicity) in rows {
                db.apply(&Update {
                    relation: relation.clone(),
                    values: values.clone(),
                    multiplicity: *multiplicity,
                })?;
            }
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Database {
        let mut db = Database::new();
        db.declare("R", &["A", "B"]).unwrap();
        db.declare("S", &["X"]).unwrap();
        db
    }

    fn ins(rel: &str, vals: &[i64]) -> Update {
        Update::insert(rel, vals.iter().map(|&v| Value::int(v)).collect())
    }

    #[test]
    fn mirrors_updates_and_materializes_the_equivalent_database() {
        let mut snapshot = Snapshot::new();
        let mut reference = catalog();
        let updates = [
            ins("R", &[1, 2]),
            ins("R", &[1, 2]),
            ins("R", &[3, 4]),
            ins("S", &[7]),
            ins("R", &[3, 4]).inverse(),
        ];
        for u in &updates {
            snapshot.apply(u);
            reference.apply(u).unwrap();
        }
        assert_eq!(snapshot.total_support(), reference.total_support());
        let materialized = snapshot.to_database(&catalog()).unwrap();
        for rel in ["R", "S"] {
            let mut a: Vec<_> = materialized.relation(rel).unwrap().iter().collect();
            let mut b: Vec<_> = reference.relation(rel).unwrap().iter().collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "{rel}");
        }
    }

    #[test]
    fn batch_maintenance_matches_per_update_maintenance() {
        let updates = [
            ins("R", &[1, 1]),
            ins("R", &[1, 1]),
            ins("R", &[2, 2]),
            ins("R", &[2, 2]).inverse(),
            ins("S", &[5]),
        ];
        let mut per_update = Snapshot::new();
        for u in &updates {
            per_update.apply(u);
        }
        let mut batched = Snapshot::new();
        batched.apply_delta_batch(&DeltaBatch::from_updates(&updates));
        assert_eq!(per_update.total_support(), batched.total_support());
        assert_eq!(
            per_update.to_database(&catalog()).unwrap().total_support(),
            batched.to_database(&catalog()).unwrap().total_support()
        );
    }

    #[test]
    fn zero_sums_are_pruned_and_zero_multiplicity_is_a_no_op() {
        let mut snapshot = Snapshot::new();
        snapshot.apply(&ins("R", &[1, 2]));
        snapshot.apply(&ins("R", &[1, 2]).inverse());
        assert!(snapshot.is_empty());
        let mut zero = ins("R", &[9, 9]);
        zero.multiplicity = 0;
        snapshot.apply(&zero);
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.total_support(), 0);
    }

    #[test]
    fn from_database_round_trips() {
        let mut db = catalog();
        db.apply_all(&[ins("R", &[1, 2]), ins("R", &[1, 2]), ins("S", &[3])])
            .unwrap();
        let snapshot = Snapshot::from_database(&db);
        assert_eq!(snapshot.total_support(), 2);
        let back = snapshot.to_database(&catalog()).unwrap();
        assert_eq!(back.total_support(), db.total_support());
        assert_eq!(
            back.relation("R").unwrap().iter().count(),
            db.relation("R").unwrap().iter().count()
        );
    }

    #[test]
    fn materialization_validates_against_the_catalog() {
        let mut snapshot = Snapshot::new();
        snapshot.apply(&ins("Ghost", &[1]));
        assert!(matches!(
            snapshot.to_database(&catalog()),
            Err(DatabaseError::UnknownRelation(_))
        ));
        let mut bad_arity = Snapshot::new();
        bad_arity.apply(&ins("S", &[1, 2]));
        assert!(matches!(
            bad_arity.to_database(&catalog()),
            Err(DatabaseError::ArityMismatch { .. })
        ));
    }
}
