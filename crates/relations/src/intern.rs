//! Value interning and fixed-width keys for the ingest hot path.
//!
//! Batch normalization and executor write-buffer flushes spend most of their time
//! comparing tuples, and a [`Value`] comparison walks an enum tag, then —
//! for strings — a heap pointer. This module replaces that with a *fixed-width*
//! representation: every value encodes to one [`IVal`], a `Copy` 128-bit word packing a
//! variant tag and an order-preserving payload. Strings are mapped to dense `u32` ids by
//! an [`Interner`], so equality on `IVal` is exactly equality on `Value` and comparing a
//! key becomes a handful of branchless integer compares.
//!
//! The one wrinkle is *order*: interner ids are assigned in first-seen order, not
//! lexicographic order, so an `IVal` compare is only authoritative when no strings are
//! involved. [`KeyPool::sorted_groups`] therefore compares raw words first and falls back to the
//! interner's resolved strings only when two `Str`-tagged words differ — the common
//! integer-keyed case never touches a string, and string-keyed batches still come out in
//! exact `Value` order (which the ordered storage backend's merge pass relies on).
//!
//! [`KeyPool`] is the reusable flat arena the hot path sorts: encoded keys live in one
//! `Vec<IVal>` at a fixed stride, and sorting permutes a row-index vector instead of the
//! keys themselves. [`BatchNormalizer`] builds on both to normalize an update slice into
//! a [`DeltaBatch`](crate::DeltaBatch) without allocating per tuple — the scratch
//! (buckets, encoded keys, row indices, interner) persists across batches.

use std::collections::HashMap;
use std::sync::Arc;

use crate::value::Value;

/// Tag bits of an [`IVal`], mirroring the declaration order of [`Value`] so that
/// cross-variant comparisons agree with `Value`'s derived `Ord`.
const TAG_INT: u128 = 0;
const TAG_FLOAT: u128 = 1;
const TAG_STR: u128 = 2;
const TAG_BOOL: u128 = 3;

const SIGN_BIT: u64 = 1 << 63;

/// A fixed-width, `Copy` encoding of one [`Value`]: `(tag << 64) | payload`.
///
/// Equality on `IVal` coincides with equality on `Value` (given one [`Interner`]), and
/// the derived integer order coincides with `Value`'s order *except* between two
/// distinct strings, whose payloads are first-seen interner ids. Callers that need true
/// `Value` order on mixed data use [`KeyPool::sorted_groups`], which performs the string
/// fallback; callers on string-free data may compare `IVal`s directly.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct IVal(u128);

impl IVal {
    /// Encodes a value, interning strings through `interner`.
    ///
    /// Payloads are order-preserving within each tag: integers are sign-flipped to
    /// unsigned, floats get the usual `total_cmp` bit transform on their canonical
    /// bits, booleans are 0/1. String payloads are interner ids (dense, first-seen
    /// order) — equal-preserving but *not* order-preserving.
    pub fn encode(value: &Value, interner: &mut Interner) -> IVal {
        match value {
            Value::Int(i) => IVal(TAG_INT << 64 | ((*i as u64) ^ SIGN_BIT) as u128),
            Value::Float(f) => {
                // Canonical bits (the OrderedF64 invariant) mapped so that unsigned
                // compare == IEEE total_cmp: flip all bits of negatives, set the sign
                // bit of non-negatives.
                let b = f.get().to_bits();
                let key = if b & SIGN_BIT != 0 { !b } else { b | SIGN_BIT };
                IVal(TAG_FLOAT << 64 | key as u128)
            }
            Value::Str(s) => IVal(TAG_STR << 64 | u64::from(interner.intern(s)) as u128),
            Value::Bool(b) => IVal(TAG_BOOL << 64 | u64::from(*b) as u128),
        }
    }

    /// Whether this word encodes a string (its payload is an interner id).
    #[inline]
    pub fn is_str(self) -> bool {
        self.0 >> 64 == TAG_STR
    }

    /// The interner id, if this word encodes a string.
    #[inline]
    pub fn str_id(self) -> Option<u32> {
        if self.is_str() {
            Some(self.0 as u64 as u32)
        } else {
            None
        }
    }

    /// The raw `(tag << 64) | payload` word.
    #[inline]
    pub fn to_bits(self) -> u128 {
        self.0
    }
}

/// Maps strings to dense `u32` ids, first-seen order, never forgetting.
///
/// Ids are stable for the interner's lifetime: `intern` returns the same id for the
/// same string forever, and [`resolve`](Interner::resolve) inverts it. The table holds
/// `Arc<str>`s, so interning an already-`Arc`ed string costs a hash lookup and (on first
/// sight) two refcount bumps — no bytes are copied.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    ids: HashMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a shared string, returning its dense id (allocating a new id on first
    /// sight, sharing the `Arc` rather than copying the bytes).
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&id) = self.ids.get(&**s) {
            return id;
        }
        let id = u32::try_from(self.strings.len()).expect("interner id space exhausted");
        self.ids.insert(Arc::clone(s), id);
        self.strings.push(Arc::clone(s));
        id
    }

    /// Interns a borrowed string, copying the bytes only on first sight.
    pub fn intern_str(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let arc: Arc<str> = Arc::from(s);
        self.intern(&arc)
    }

    /// The id of `s`, if it has been interned.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.ids.get(s).copied()
    }

    /// The string behind an id. Panics on a dangling id — ids are never dropped, so a
    /// dangling id is a logic error.
    pub fn resolve(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// A [`Value::Str`] sharing the interned allocation for `s` — repeated calls with
    /// an equal string yield values backed by one `Arc`.
    pub fn value_str(&mut self, s: &str) -> Value {
        let id = self.intern_str(s);
        Value::Str(Arc::clone(&self.strings[id as usize]))
    }

    /// Number of distinct interned strings (also the next id to be assigned).
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no string has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Internal-consistency check for debug assertions: the forward map and the id
    /// table must be exact inverses, with every id in range.
    pub fn is_consistent(&self) -> bool {
        self.ids.len() == self.strings.len()
            && self
                .ids
                .iter()
                .all(|(s, &id)| self.strings.get(id as usize).map(|t| &**t) == Some(&**s))
    }
}

/// Compares two encoded keys in exact [`Value`] order, falling back to resolved strings
/// only where two distinct `Str` words meet.
fn cmp_keys(a: &[IVal], b: &[IVal], interner: &Interner) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let ord = x.cmp(y);
        if ord != std::cmp::Ordering::Equal {
            if let (Some(xi), Some(yi)) = (x.str_id(), y.str_id()) {
                let sord = interner.resolve(xi).cmp(interner.resolve(yi));
                debug_assert!(
                    sord != std::cmp::Ordering::Equal,
                    "distinct ids, equal strings"
                );
                return sord;
            }
            return ord;
        }
    }
    a.len().cmp(&b.len())
}

/// A reusable fixed-width key consolidator: the hot-path replacement for "sort all
/// tuples, then walk equal runs".
///
/// Keys are encoded into one flat `Vec<IVal>` at stride `arity` and *deduplicated on
/// arrival* through an open-addressing scratch table (cheap multiply-rotate hashing
/// over the fixed-width words, with full-key equality on probe, so hash quality only
/// affects speed, never correctness). Each push returns a dense group id; only the
/// *distinct* keys are ever sorted — on hot-key streams that is a small fraction of
/// the tuples, which is exactly where the classic comparison sort paid the most. All
/// storage is retained across [`begin`](KeyPool::begin) calls, so the steady state
/// allocates nothing.
#[derive(Clone, Debug, Default)]
pub struct KeyPool {
    /// One encoded key per distinct group, stride `arity`, in first-seen order.
    enc: Vec<IVal>,
    /// Open-addressing table: `0` = empty, otherwise group id + 1. Power-of-two size.
    table: Vec<u32>,
    /// Scratch for [`sorted_groups`](KeyPool::sorted_groups).
    order: Vec<u32>,
    groups: u32,
    arity: usize,
    has_str: bool,
}

/// Multiply-rotate hash over the fixed-width words of one encoded key.
#[inline]
fn hash_key(key: &[IVal]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in key {
        // Payload and tag words hashed separately (the tag word is tiny but keeps
        // cross-variant keys apart).
        let bits = w.to_bits();
        h = (h ^ bits as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h = (h ^ (bits >> 64) as u64).rotate_left(23);
    }
    h
}

impl KeyPool {
    /// A new, empty pool.
    pub fn new() -> Self {
        KeyPool::default()
    }

    /// Resets the pool for a run of at most `expected` keys of width `arity`,
    /// retaining capacity. The scratch table is sized to keep the load factor at or
    /// below one half.
    pub fn begin(&mut self, arity: usize, expected: usize) {
        self.enc.clear();
        self.groups = 0;
        self.arity = arity;
        self.has_str = false;
        let want = (expected.max(8) * 2).next_power_of_two();
        if self.table.len() < want {
            self.table.resize(want, 0);
        }
        self.table.fill(0);
    }

    /// Encodes one key and returns its dense group id: a fresh id (the current
    /// [`groups`](KeyPool::groups) count) on first sight, the existing id on a
    /// repeat. `key.len()` must equal the pool's arity.
    pub fn push_key_grouped(&mut self, key: &[Value], interner: &mut Interner) -> u32 {
        debug_assert_eq!(key.len(), self.arity);
        let arity = self.arity;
        let start = self.enc.len();
        for v in key {
            let w = IVal::encode(v, interner);
            self.has_str |= w.is_str();
            self.enc.push(w);
        }
        let mask = (self.table.len() - 1) as u64;
        let mut slot = (hash_key(&self.enc[start..]) & mask) as usize;
        loop {
            match self.table[slot] {
                0 => {
                    let g = self.groups;
                    self.table[slot] = g + 1;
                    self.groups += 1;
                    return g;
                }
                occupied => {
                    let g = (occupied - 1) as usize;
                    if self.enc[g * arity..(g + 1) * arity] == self.enc[start..start + arity] {
                        self.enc.truncate(start);
                        return occupied - 1;
                    }
                    slot = (slot + 1) & mask as usize;
                }
            }
        }
    }

    /// Number of distinct keys seen since the last [`begin`](KeyPool::begin).
    pub fn groups(&self) -> usize {
        self.groups as usize
    }

    /// The distinct group ids in ascending [`Value`] order of their keys.
    ///
    /// String-free pools sort by raw fixed-width words; pools that saw a string use
    /// the interner fallback, so the result is exact `Value` order, never id order.
    pub fn sorted_groups(&mut self, interner: &Interner) -> &[u32] {
        self.order.clear();
        self.order.extend(0..self.groups);
        let arity = self.arity;
        if arity > 0 {
            let enc = &self.enc;
            if self.has_str {
                self.order.sort_unstable_by(|&a, &b| {
                    cmp_keys(
                        &enc[a as usize * arity..(a as usize + 1) * arity],
                        &enc[b as usize * arity..(b as usize + 1) * arity],
                        interner,
                    )
                });
            } else if arity == 1 {
                self.order.sort_unstable_by_key(|&g| enc[g as usize]);
            } else {
                self.order.sort_unstable_by(|&a, &b| {
                    enc[a as usize * arity..(a as usize + 1) * arity]
                        .cmp(&enc[b as usize * arity..(b as usize + 1) * arity])
                });
            }
        }
        &self.order
    }
}

/// Scratch slot for one relation's updates within a batch (indices into the update
/// slice, so the scratch outlives any particular batch's borrow).
#[derive(Clone, Debug, Default)]
struct NormBucket {
    rel: u32,
    first: u32,
    rows: Vec<u32>,
}

/// Reusable batch normalizer: produces exactly what
/// [`DeltaBatch::from_updates`](crate::DeltaBatch::from_updates) produces, but on
/// interned fixed-width keys and with all scratch (relation ids, buckets, key pool,
/// interner) persisting across batches.
///
/// Per batch it performs one bucketing pass (relation names resolved once per *run* of
/// equal names via a memo, then a persistent name→id map — not per-update string
/// compares), then one encode-and-consolidate pass per relation through the
/// [`KeyPool`]'s scratch hash table, so only the *distinct* keys are sorted — on
/// hot-key streams that is a small fraction of the tuples. Buckets of non-uniform
/// arity (malformed streams that the executors reject later) fall back to the
/// reference comparison sort so behavior is bit-identical to the classic path.
#[derive(Clone, Debug, Default)]
pub struct BatchNormalizer {
    interner: Interner,
    rel_ids: HashMap<String, u32>,
    bucket_of: Vec<Option<u32>>,
    buckets: Vec<NormBucket>,
    pool: KeyPool,
    /// Per-group net multiplicity, indexed by the pool's group ids.
    nets: Vec<i64>,
    /// Per-group representative update index (first occurrence of the key).
    reps: Vec<u32>,
}

impl BatchNormalizer {
    /// A new normalizer with empty scratch.
    pub fn new() -> Self {
        BatchNormalizer::default()
    }

    /// The interner accumulated over every normalized batch (string ids are stable for
    /// the normalizer's lifetime).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Normalizes `updates` into a [`DeltaBatch`](crate::DeltaBatch) borrowing only
    /// from `updates`; equivalent to `DeltaBatch::from_updates(updates)`.
    pub fn normalize<'a>(
        &mut self,
        updates: &'a [crate::database::Update],
    ) -> crate::DeltaBatch<'a> {
        let mut active = 0usize;
        // Bucket by relation: a memo catches runs of one relation (the overwhelmingly
        // common stream shape), the persistent map catches everything else with one
        // hash lookup instead of per-update string compares.
        let mut memo: Option<(&'a str, usize)> = None;
        for (i, update) in updates.iter().enumerate() {
            if update.multiplicity == 0 {
                continue;
            }
            let slot = match memo {
                Some((name, slot)) if name == update.relation => slot,
                _ => {
                    let rid = match self.rel_ids.get(update.relation.as_str()) {
                        Some(&r) => r,
                        None => {
                            let r = u32::try_from(self.rel_ids.len())
                                .expect("relation id space exhausted");
                            self.rel_ids.insert(update.relation.clone(), r);
                            r
                        }
                    };
                    if rid as usize >= self.bucket_of.len() {
                        self.bucket_of.resize(rid as usize + 1, None);
                    }
                    let slot = match self.bucket_of[rid as usize] {
                        Some(slot) => slot as usize,
                        None => {
                            let slot = active;
                            if slot == self.buckets.len() {
                                self.buckets.push(NormBucket::default());
                            }
                            let b = &mut self.buckets[slot];
                            b.rel = rid;
                            b.first = i as u32;
                            b.rows.clear();
                            self.bucket_of[rid as usize] = Some(slot as u32);
                            active += 1;
                            slot
                        }
                    };
                    memo = Some((update.relation.as_str(), slot));
                    slot
                }
            };
            self.buckets[slot].rows.push(i as u32);
        }
        // Groups come out in ascending relation-name order.
        self.buckets[..active].sort_unstable_by(|a, b| {
            updates[a.first as usize]
                .relation
                .cmp(&updates[b.first as usize].relation)
        });
        let mut groups = Vec::new();
        for bucket in &mut self.buckets[..active] {
            let relation: &'a str = updates[bucket.first as usize].relation.as_str();
            let arity = updates[bucket.rows[0] as usize].values.len();
            let uniform = bucket
                .rows
                .iter()
                .all(|&r| updates[r as usize].values.len() == arity);
            let mut inserts: Vec<(&'a [Value], i64)> = Vec::new();
            let mut deletes: Vec<(&'a [Value], i64)> = Vec::new();
            if uniform {
                // Consolidate while pushing: duplicates collapse into the group's net
                // multiplicity on arrival, and only the distinct keys get sorted.
                self.pool.begin(arity, bucket.rows.len());
                self.nets.clear();
                self.reps.clear();
                for &r in &bucket.rows {
                    let u = &updates[r as usize];
                    let g = self.pool.push_key_grouped(&u.values, &mut self.interner) as usize;
                    if g == self.nets.len() {
                        self.nets.push(0);
                        self.reps.push(r);
                    }
                    self.nets[g] += u.multiplicity;
                }
                for &g in self.pool.sorted_groups(&self.interner) {
                    let net = self.nets[g as usize];
                    let values = updates[self.reps[g as usize] as usize].values.as_slice();
                    match net.cmp(&0) {
                        std::cmp::Ordering::Greater => inserts.push((values, net)),
                        std::cmp::Ordering::Less => deletes.push((values, -net)),
                        std::cmp::Ordering::Equal => {}
                    }
                }
            } else {
                // Mixed arity within one relation: malformed input the executors will
                // reject; take the classic comparison sort so the batch is identical.
                let mut refs: Vec<&'a crate::database::Update> =
                    bucket.rows.iter().map(|&r| &updates[r as usize]).collect();
                refs.sort_unstable_by(|a, b| a.values.cmp(&b.values));
                let mut i = 0usize;
                while i < refs.len() {
                    let values = refs[i].values.as_slice();
                    let mut net = 0i64;
                    while i < refs.len() && refs[i].values == values {
                        net += refs[i].multiplicity;
                        i += 1;
                    }
                    match net.cmp(&0) {
                        std::cmp::Ordering::Greater => inserts.push((values, net)),
                        std::cmp::Ordering::Less => deletes.push((values, -net)),
                        std::cmp::Ordering::Equal => {}
                    }
                }
            }
            bucket.rows.clear();
            self.bucket_of[bucket.rel as usize] = None;
            if !inserts.is_empty() {
                groups.push(crate::batch::DeltaGroup::new(relation, true, inserts));
            }
            if !deletes.is_empty() {
                groups.push(crate::batch::DeltaGroup::new(relation, false, deletes));
            }
        }
        crate::batch::DeltaBatch::from_groups(groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Update;
    use crate::DeltaBatch;

    #[test]
    fn ival_order_matches_value_order_without_strings() {
        let mut interner = Interner::new();
        let mut values = vec![
            Value::int(-3),
            Value::int(0),
            Value::int(7),
            Value::int(i64::MIN),
            Value::int(i64::MAX),
            Value::float(-1.5),
            Value::float(0.0),
            Value::float(-0.0),
            Value::float(f64::NEG_INFINITY),
            Value::float(f64::INFINITY),
            Value::float(f64::NAN),
            Value::Bool(false),
            Value::Bool(true),
        ];
        values.sort();
        let encoded: Vec<IVal> = values
            .iter()
            .map(|v| IVal::encode(v, &mut interner))
            .collect();
        let mut resorted = encoded.clone();
        resorted.sort();
        assert_eq!(encoded, resorted, "IVal order must match Value order");
        // Equality is exact both ways.
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                assert_eq!(
                    a == b,
                    encoded[i] == encoded[j],
                    "equality mismatch between {a} and {b}"
                );
            }
        }
    }

    #[test]
    fn interner_ids_are_dense_and_stable() {
        let mut interner = Interner::new();
        let a = interner.intern_str("alpha");
        let b = interner.intern_str("beta");
        assert_eq!((a, b), (0, 1));
        assert_eq!(interner.intern_str("alpha"), 0);
        assert_eq!(interner.resolve(1), "beta");
        assert_eq!(interner.get("beta"), Some(1));
        assert_eq!(interner.get("gamma"), None);
        assert_eq!(interner.len(), 2);
        assert!(interner.is_consistent());
        // value_str shares one allocation across equal strings.
        let v1 = interner.value_str("alpha");
        let v2 = interner.value_str("alpha");
        match (&v1, &v2) {
            (Value::Str(s1), Value::Str(s2)) => assert!(Arc::ptr_eq(s1, s2)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn string_keys_sort_in_value_order_not_id_order() {
        // Intern "zeta" first so id order disagrees with lexicographic order.
        let mut normalizer = BatchNormalizer::new();
        let warmup = [Update::insert("T", vec![Value::str("zeta")])];
        let _ = normalizer.normalize(&warmup);
        let updates = [
            Update::insert("T", vec![Value::str("zeta")]),
            Update::insert("T", vec![Value::str("alpha")]),
            Update::insert("T", vec![Value::str("mid")]),
        ];
        let batch = normalizer.normalize(&updates);
        assert_eq!(batch, DeltaBatch::from_updates(&updates));
        let keys: Vec<&str> = batch.groups()[0]
            .deltas()
            .iter()
            .map(|(k, _)| k[0].as_str().unwrap())
            .collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
    }

    #[test]
    fn normalizer_matches_classic_path_on_mixed_batches() {
        let mut normalizer = BatchNormalizer::new();
        let mut big_del = Update::delete("R", vec![Value::int(7), Value::str("x")]);
        big_del.multiplicity = -3;
        let mut zero = Update::insert("S", vec![Value::Bool(true)]);
        zero.multiplicity = 0;
        let updates = vec![
            Update::insert("R", vec![Value::int(7), Value::str("x")]),
            big_del,
            Update::insert("S", vec![Value::float(2.5)]),
            zero,
            Update::delete("S", vec![Value::float(2.5)]),
            Update::insert("R", vec![Value::int(1), Value::str("y")]),
            Update::insert("A", vec![]),
            Update::insert("A", vec![]),
        ];
        let batch = normalizer.normalize(&updates);
        assert_eq!(batch, DeltaBatch::from_updates(&updates));
        // Scratch reuse: a second, different batch through the same normalizer.
        let updates2 = vec![
            Update::insert("S", vec![Value::float(0.25)]),
            Update::insert("R", vec![Value::int(1), Value::str("y")]),
        ];
        assert_eq!(
            normalizer.normalize(&updates2),
            DeltaBatch::from_updates(&updates2)
        );
        assert!(normalizer.interner().is_consistent());
    }

    #[test]
    fn mixed_arity_bucket_falls_back_to_classic_sort() {
        let mut normalizer = BatchNormalizer::new();
        let updates = vec![
            Update::insert("R", vec![Value::int(2), Value::int(9)]),
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("R", vec![Value::int(2)]),
        ];
        assert_eq!(
            normalizer.normalize(&updates),
            DeltaBatch::from_updates(&updates)
        );
    }

    #[test]
    fn key_pool_groups_duplicates_and_sorts_distinct_keys() {
        let mut interner = Interner::new();
        let mut pool = KeyPool::new();
        pool.begin(2, 4);
        let keys = [
            vec![Value::int(5), Value::int(1)],
            vec![Value::int(3), Value::int(2)],
            vec![Value::int(5), Value::int(1)],
            vec![Value::int(3), Value::int(0)],
        ];
        let groups: Vec<u32> = keys
            .iter()
            .map(|k| pool.push_key_grouped(k, &mut interner))
            .collect();
        // Duplicates collapse onto first-seen group ids.
        assert_eq!(groups, vec![0, 1, 0, 2]);
        assert_eq!(pool.groups(), 3);
        // Sorted output is ascending Value order of the distinct keys:
        // (3,0) < (3,2) < (5,1).
        assert_eq!(pool.sorted_groups(&interner), &[2, 1, 0]);

        // A reused pool forgets previous groups entirely.
        pool.begin(1, 2);
        assert_eq!(pool.push_key_grouped(&[Value::int(5)], &mut interner), 0);
        assert_eq!(pool.push_key_grouped(&[Value::int(5)], &mut interner), 0);
        assert_eq!(pool.groups(), 1);
    }
}
