//! Abstract syntax of AGCA expressions and queries (Section 4).
//!
//! Expressions are built from relational atoms, constants, variables, comparisons and
//! assignments with `+`, `*`, unary `-` and the aggregate `Sum(·)`. A [`Query`] pairs an
//! expression with its *bound* (group-by) variables: the SQL translation of Section 5 maps
//! a `GROUP BY` aggregate query to a `Sum(…)` expression whose group keys are bound from
//! the outside.

use std::collections::BTreeSet;
use std::fmt;

use dbring_relations::Value;
use serde::{Deserialize, Serialize};

/// Comparison operators `θ` (and their complements `θ̄`, used by the delta rule for
/// conditions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// The complement `θ̄` (e.g. `≥` for `<`).
    pub fn complement(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Applies the comparison to an [`std::cmp::Ordering`].
    pub fn test(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// An AGCA expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Expr {
    /// `q₁ + q₂` — generalized union.
    Add(Box<Expr>, Box<Expr>),
    /// `q₁ * q₂` — generalized natural join with sideways binding passing.
    Mul(Box<Expr>, Box<Expr>),
    /// `-q` — additive inverse.
    Neg(Box<Expr>),
    /// `Sum(q)` — the aggregate sum of all multiplicities.
    Sum(Box<Expr>),
    /// A constant (numeric constants act as multiplicities on the empty tuple; string
    /// constants may only appear inside comparisons and assignments).
    Const(Value),
    /// A variable reference used as a value term (must be bound).
    Var(String),
    /// A relational atom `R(x₁, …, x_k)`; the variables rename the relation's columns.
    Rel(String, Vec<String>),
    /// A condition `q₁ θ q₂` (the paper's `q θ 0`, generalized: `q θ q'` abbreviates
    /// `(q − q') θ 0`). Evaluates to multiplicity 1 on the empty tuple when satisfied.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// An assignment `x := q`: binds variable `x` to the scalar value of `q`.
    Assign(String, Box<Expr>),
}

// `add`/`mul`/`neg` are associated smart constructors taking their operands by value
// (`Expr::add(a, b)`), named after the ring vocabulary of the paper — not operations on
// `self`, so they cannot actually shadow the `std::ops` methods at a call site.
#[allow(clippy::should_implement_trait)]
impl Expr {
    /// `q₁ + q₂`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// `q₁ * q₂`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// `-q`.
    pub fn neg(a: Expr) -> Expr {
        Expr::Neg(Box::new(a))
    }

    /// `Sum(q)`.
    pub fn sum(a: Expr) -> Expr {
        Expr::Sum(Box::new(a))
    }

    /// An integer constant.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// An arbitrary constant value.
    pub fn constant(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A relational atom `R(x₁, …, x_k)`.
    pub fn rel(name: impl Into<String>, vars: &[&str]) -> Expr {
        Expr::Rel(name.into(), vars.iter().map(|v| v.to_string()).collect())
    }

    /// A comparison `a θ b`.
    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    /// Equality `a = b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::cmp(CmpOp::Eq, a, b)
    }

    /// An assignment `x := q`.
    pub fn assign(var: impl Into<String>, term: Expr) -> Expr {
        Expr::Assign(var.into(), Box::new(term))
    }

    /// The product of a sequence of factors (`1` for the empty sequence), associating to
    /// the left so the sideways-binding order matches the sequence order.
    pub fn product(factors: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = factors.into_iter();
        match it.next() {
            None => Expr::int(1),
            Some(first) => it.fold(first, Expr::mul),
        }
    }

    /// The sum of a sequence of terms (`0` for the empty sequence).
    pub fn sum_of(terms: impl IntoIterator<Item = Expr>) -> Expr {
        let mut it = terms.into_iter();
        match it.next() {
            None => Expr::int(0),
            Some(first) => it.fold(first, Expr::add),
        }
    }

    /// Whether the expression is the constant zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Const(Value::Int(0)))
    }

    /// Whether the expression is the constant one.
    pub fn is_one(&self) -> bool {
        matches!(self, Expr::Const(Value::Int(1)))
    }

    /// All variables occurring anywhere in the expression (as atom arguments, value terms,
    /// assignment targets or comparison operands).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Add(a, b) | Expr::Mul(a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Expr::Neg(a) | Expr::Sum(a) => a.collect_variables(out),
            Expr::Const(_) => {}
            Expr::Var(x) => {
                out.insert(x.clone());
            }
            Expr::Rel(_, vars) => out.extend(vars.iter().cloned()),
            Expr::Cmp(_, a, b) => {
                a.collect_variables(out);
                b.collect_variables(out);
            }
            Expr::Assign(x, t) => {
                out.insert(x.clone());
                t.collect_variables(out);
            }
        }
    }

    /// The names of all relations referenced by the expression.
    pub fn relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Add(a, b) | Expr::Mul(a, b) => {
                a.collect_relations(out);
                b.collect_relations(out);
            }
            Expr::Neg(a) | Expr::Sum(a) => a.collect_relations(out),
            Expr::Cmp(_, a, b) => {
                a.collect_relations(out);
                b.collect_relations(out);
            }
            Expr::Assign(_, t) => t.collect_relations(out),
            Expr::Rel(name, _) => {
                out.insert(name.clone());
            }
            Expr::Const(_) | Expr::Var(_) => {}
        }
    }

    /// Renames every occurrence of variable `from` to `to` (in atoms, value terms,
    /// comparisons, assignment targets and assignment terms).
    pub fn rename_variable(&self, from: &str, to: &str) -> Expr {
        match self {
            Expr::Add(a, b) => Expr::add(a.rename_variable(from, to), b.rename_variable(from, to)),
            Expr::Mul(a, b) => Expr::mul(a.rename_variable(from, to), b.rename_variable(from, to)),
            Expr::Neg(a) => Expr::neg(a.rename_variable(from, to)),
            Expr::Sum(a) => Expr::sum(a.rename_variable(from, to)),
            Expr::Const(c) => Expr::Const(c.clone()),
            Expr::Var(x) => Expr::Var(if x == from { to.to_string() } else { x.clone() }),
            Expr::Rel(name, vars) => Expr::Rel(
                name.clone(),
                vars.iter()
                    .map(|v| if v == from { to.to_string() } else { v.clone() })
                    .collect(),
            ),
            Expr::Cmp(op, a, b) => Expr::cmp(
                *op,
                a.rename_variable(from, to),
                b.rename_variable(from, to),
            ),
            Expr::Assign(x, t) => Expr::Assign(
                if x == from { to.to_string() } else { x.clone() },
                Box::new(t.rename_variable(from, to)),
            ),
        }
    }

    /// Applies several variable renamings at once (simultaneously, not sequentially).
    pub fn rename_variables(&self, renaming: &std::collections::BTreeMap<String, String>) -> Expr {
        let lookup = |x: &String| renaming.get(x).cloned().unwrap_or_else(|| x.clone());
        match self {
            Expr::Add(a, b) => {
                Expr::add(a.rename_variables(renaming), b.rename_variables(renaming))
            }
            Expr::Mul(a, b) => {
                Expr::mul(a.rename_variables(renaming), b.rename_variables(renaming))
            }
            Expr::Neg(a) => Expr::neg(a.rename_variables(renaming)),
            Expr::Sum(a) => Expr::sum(a.rename_variables(renaming)),
            Expr::Const(c) => Expr::Const(c.clone()),
            Expr::Var(x) => Expr::Var(lookup(x)),
            Expr::Rel(name, vars) => Expr::Rel(name.clone(), vars.iter().map(lookup).collect()),
            Expr::Cmp(op, a, b) => Expr::cmp(
                *op,
                a.rename_variables(renaming),
                b.rename_variables(renaming),
            ),
            Expr::Assign(x, t) => Expr::Assign(lookup(x), Box::new(t.rename_variables(renaming))),
        }
    }

    /// The number of AST nodes (a crude size measure used in tests and diagnostics).
    pub fn size(&self) -> usize {
        match self {
            Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Cmp(_, a, b) => 1 + a.size() + b.size(),
            Expr::Neg(a) | Expr::Sum(a) | Expr::Assign(_, a) => 1 + a.size(),
            Expr::Const(_) | Expr::Var(_) | Expr::Rel(_, _) => 1,
        }
    }

    /// Whether the expression contains a `Sum` nested inside a comparison — i.e. whether
    /// it falls outside the *simple conditions* class of Theorem 6.4, for which the degree
    /// of the delta is guaranteed to drop.
    pub fn has_nested_aggregate_condition(&self) -> bool {
        fn contains_sum(e: &Expr) -> bool {
            match e {
                Expr::Sum(_) => true,
                Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Cmp(_, a, b) => {
                    contains_sum(a) || contains_sum(b)
                }
                Expr::Neg(a) | Expr::Assign(_, a) => contains_sum(a),
                _ => false,
            }
        }
        fn contains_rel(e: &Expr) -> bool {
            match e {
                Expr::Rel(_, _) => true,
                Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Cmp(_, a, b) => {
                    contains_rel(a) || contains_rel(b)
                }
                Expr::Neg(a) | Expr::Sum(a) | Expr::Assign(_, a) => contains_rel(a),
                _ => false,
            }
        }
        match self {
            Expr::Cmp(_, a, b) => {
                contains_sum(a) || contains_sum(b) || contains_rel(a) || contains_rel(b)
            }
            Expr::Add(a, b) | Expr::Mul(a, b) => {
                a.has_nested_aggregate_condition() || b.has_nested_aggregate_condition()
            }
            Expr::Neg(a) | Expr::Sum(a) => a.has_nested_aggregate_condition(),
            Expr::Assign(_, t) => t.has_nested_aggregate_condition(),
            _ => false,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Mul(a, b) => write!(f, "{a} * {b}"),
            Expr::Neg(a) => write!(f, "-({a})"),
            Expr::Sum(a) => write!(f, "Sum({a})"),
            Expr::Const(v) => match v {
                Value::Str(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Rel(name, vars) => {
                write!(f, "{name}({})", vars.join(", "))
            }
            Expr::Cmp(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Assign(x, t) => write!(f, "({x} := {t})"),
        }
    }
}

/// A named AGCA query: an expression plus the variables bound from the outside (the
/// group-by keys of the SQL translation).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Query {
    /// A name used for the materialized view of the query.
    pub name: String,
    /// The bound (group-by) variables `b⃗`, in output order.
    pub group_by: Vec<String>,
    /// The query body.
    pub expr: Expr,
}

impl Query {
    /// Creates a named query.
    pub fn new(name: impl Into<String>, group_by: &[&str], expr: Expr) -> Self {
        Query {
            name: name.into(),
            group_by: group_by.iter().map(|s| s.to_string()).collect(),
            expr,
        }
    }

    /// A query with no group-by variables (a single aggregate value).
    pub fn scalar(name: impl Into<String>, expr: Expr) -> Self {
        Query::new(name, &[], expr)
    }

    /// The relations referenced by the query.
    pub fn relations(&self) -> BTreeSet<String> {
        self.expr.relations()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.group_by.is_empty() {
            write!(f, "{} := {}", self.name, self.expr)
        } else {
            write!(
                f,
                "{}[{}] := {}",
                self.name,
                self.group_by.join(", "),
                self.expr
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_query() -> Expr {
        // Sum(C(c, n) * C(c2, n2) * (n = n2))  — Example 5.2 (with explicit variables).
        Expr::sum(Expr::product(vec![
            Expr::rel("C", &["c", "n"]),
            Expr::rel("C", &["c2", "n2"]),
            Expr::eq(Expr::var("n"), Expr::var("n2")),
        ]))
    }

    #[test]
    fn constructors_and_display() {
        let q = example_query();
        assert_eq!(q.to_string(), "Sum(C(c, n) * C(c2, n2) * (n = n2))");
        assert_eq!(Expr::int(3).to_string(), "3");
        assert_eq!(Expr::constant("FR").to_string(), "'FR'");
        assert_eq!(Expr::assign("x", Expr::int(1)).to_string(), "(x := 1)");
        assert_eq!(Expr::neg(Expr::var("x")).to_string(), "-(x)");
        assert_eq!(Expr::add(Expr::int(1), Expr::int(2)).to_string(), "(1 + 2)");
    }

    #[test]
    fn product_and_sum_of_edge_cases() {
        assert!(Expr::product(vec![]).is_one());
        assert!(Expr::sum_of(vec![]).is_zero());
        assert_eq!(Expr::product(vec![Expr::var("x")]), Expr::var("x"));
        assert_eq!(Expr::sum_of(vec![Expr::var("x")]), Expr::var("x"));
    }

    #[test]
    fn variable_and_relation_collection() {
        let q = example_query();
        let vars: Vec<String> = q.variables().into_iter().collect();
        assert_eq!(vars, vec!["c", "c2", "n", "n2"]);
        let rels: Vec<String> = q.relations().into_iter().collect();
        assert_eq!(rels, vec!["C"]);
        assert!(Expr::int(1).variables().is_empty());
        assert_eq!(Expr::assign("x", Expr::var("y")).variables().len(), 2);
    }

    #[test]
    fn renaming() {
        let q = example_query();
        let renamed = q.rename_variable("n", "nation");
        assert!(renamed.variables().contains("nation"));
        assert!(!renamed.variables().contains("n"));
        // n2 must be untouched.
        assert!(renamed.variables().contains("n2"));

        let mut map = std::collections::BTreeMap::new();
        map.insert("c".to_string(), "c2".to_string());
        map.insert("c2".to_string(), "c".to_string());
        let swapped = q.rename_variables(&map);
        // Simultaneous renaming swaps without capture.
        assert_eq!(swapped.rename_variables(&map), q);
    }

    #[test]
    fn complement_of_comparison_ops() {
        assert_eq!(CmpOp::Eq.complement(), CmpOp::Ne);
        assert_eq!(CmpOp::Lt.complement(), CmpOp::Ge);
        assert_eq!(CmpOp::Le.complement(), CmpOp::Gt);
        assert_eq!(CmpOp::Gt.complement().complement(), CmpOp::Gt);
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Le.test(Less));
        assert!(!CmpOp::Le.test(Greater));
        assert!(CmpOp::Ne.test(Less));
        assert!(!CmpOp::Eq.test(Less));
        assert!(CmpOp::Ge.test(Equal));
    }

    #[test]
    fn size_and_flags() {
        assert_eq!(Expr::int(1).size(), 1);
        assert_eq!(Expr::add(Expr::int(1), Expr::var("x")).size(), 3);
        let q = example_query();
        assert!(q.size() > 5);
        assert!(!q.has_nested_aggregate_condition());
        let nested = Expr::cmp(CmpOp::Gt, Expr::sum(Expr::rel("R", &["x"])), Expr::int(10));
        assert!(nested.has_nested_aggregate_condition());
        assert!(Expr::mul(Expr::rel("S", &["y"]), nested).has_nested_aggregate_condition());
    }

    #[test]
    fn query_construction_and_display() {
        let q = Query::new("by_nation", &["c"], example_query());
        assert_eq!(q.group_by, vec!["c"]);
        assert!(q.to_string().starts_with("by_nation[c] := Sum("));
        let s = Query::scalar("total", Expr::int(1));
        assert!(s.group_by.is_empty());
        assert_eq!(s.to_string(), "total := 1");
        assert_eq!(q.relations().len(), 1);
    }
}
