//! A light evaluation-order optimizer for the *reference* evaluation paths.
//!
//! The reference evaluator multiplies factors left to right, so a monomial written as
//! `R(a,b) * S(c,d) * (b = c)` first materializes the full cross product `R × S` and only
//! then filters it. Re-ordering the monomial to `R(a,b) * (… ) * S(c,d) * (b = c)` — more
//! generally, placing every condition and value term at the earliest position where all of
//! its variables are bound — is semantics-preserving (AGCA's product is commutative on
//! well-formed inputs) and turns cross products into index-nested-loop-style joins.
//!
//! This matters for the baselines (naive re-evaluation and classical first-order IVM) and
//! for view initialization from a non-empty database, all of which use the reference
//! evaluator; the compiled trigger programs never need it, since the compiler already
//! factorizes monomials and emits constant-work statements.

use std::collections::BTreeSet;

use crate::ast::Expr;
use crate::factorize::eliminate_equalities;
use crate::normalize::{normalize, Monomial, Polynomial};

/// Whether a factor *binds* new variables when evaluated (relational atoms and
/// assignments do; conditions, value terms and nested aggregates do not).
fn is_binder(factor: &Expr) -> bool {
    matches!(factor, Expr::Rel(_, _) | Expr::Assign(_, _))
}

/// Reorders the factors of a monomial so that every non-binding factor (condition, value
/// term, nested aggregate) is evaluated as soon as all of its variables are bound, while
/// binding factors keep their original relative order. Factors whose variables never
/// become fully bound are appended at the end in their original order (the evaluator will
/// then report the safety violation exactly as before).
pub fn optimize_factor_order(factors: &[Expr], initially_bound: &BTreeSet<String>) -> Vec<Expr> {
    // Split the monomial into binders (kept in order) and fillers (placed as early as
    // their variables allow, keeping their relative order among themselves).
    let binders: Vec<&Expr> = factors.iter().filter(|f| is_binder(f)).collect();
    let mut fillers: Vec<(&Expr, BTreeSet<String>)> = factors
        .iter()
        .filter(|f| !is_binder(f))
        .map(|f| (f, f.variables()))
        .collect();

    let mut bound = initially_bound.clone();
    let mut out: Vec<Expr> = Vec::with_capacity(factors.len());
    let emit_ready = |bound: &BTreeSet<String>,
                      fillers: &mut Vec<(&Expr, BTreeSet<String>)>,
                      out: &mut Vec<Expr>| {
        let mut remaining = Vec::with_capacity(fillers.len());
        for (factor, vars) in fillers.drain(..) {
            if vars.is_subset(bound) {
                out.push(factor.clone());
            } else {
                remaining.push((factor, vars));
            }
        }
        *fillers = remaining;
    };

    emit_ready(&bound, &mut fillers, &mut out);
    for binder in binders {
        out.push(binder.clone());
        match binder {
            Expr::Rel(_, vars) => bound.extend(vars.iter().cloned()),
            Expr::Assign(x, _) => {
                bound.insert(x.clone());
            }
            _ => unreachable!("is_binder covers exactly these"),
        }
        emit_ready(&bound, &mut fillers, &mut out);
    }
    // Anything left never becomes fully bound; keep it at the end in original order so the
    // evaluator reports the same safety error it would have reported before.
    out.extend(fillers.into_iter().map(|(f, _)| f.clone()));
    out
}

/// Rewrites an expression into an equivalent one whose monomials evaluate without
/// unnecessary cross products (see module docs). The group-by variables of the surrounding
/// query, if any, may be passed as `bound` since they are bound from the outside.
pub fn optimize_for_evaluation(expr: &Expr, bound: &BTreeSet<String>) -> Expr {
    fn optimize_polynomial(poly: &Polynomial, bound: &BTreeSet<String>) -> Polynomial {
        Polynomial {
            monomials: poly
                .monomials
                .iter()
                .map(|m| {
                    // Equality conditions between two query variables are folded into the
                    // atoms by renaming one side (Section 5's variable elimination): the
                    // evaluator's per-atom consistency filter then performs the join
                    // selection instead of a post-hoc filter over a cross product.
                    // Externally bound variables (group-by keys, update parameters) are
                    // protected so callers can still refer to them by name.
                    let (factors, _) = eliminate_equalities(&m.factors, bound);
                    Monomial {
                        coefficient: m.coefficient,
                        factors: optimize_factor_order(&factors, bound)
                            .iter()
                            .map(|f| match f {
                                // Recurse into nested aggregates so their bodies are
                                // optimized too.
                                Expr::Sum(inner) => {
                                    Expr::sum(optimize_for_evaluation(inner, bound))
                                }
                                other => other.clone(),
                            })
                            .collect(),
                    }
                })
                .collect(),
        }
    }
    match expr {
        // Keep a top-level Sum wrapper in place so group-by handling is unaffected.
        Expr::Sum(inner) => Expr::sum(optimize_for_evaluation(inner, bound)),
        other => optimize_polynomial(&normalize(other), bound).to_expr(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use crate::eval::eval;
    use crate::parser::parse_expr;
    use dbring_relations::{Database, Tuple, Value};

    fn bound(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn conditions_move_next_to_their_binding_atoms() {
        let factors = vec![
            Expr::rel("R", &["a", "b"]),
            Expr::rel("S", &["c", "d"]),
            Expr::rel("T", &["e", "f"]),
            Expr::eq(Expr::var("b"), Expr::var("c")),
            Expr::eq(Expr::var("d"), Expr::var("e")),
            Expr::var("a"),
            Expr::var("f"),
        ];
        let ordered = optimize_factor_order(&factors, &bound(&[]));
        let rendered: Vec<String> = ordered.iter().map(|f| f.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "R(a, b)", "a", // bound as soon as R is evaluated
                "S(c, d)", "(b = c)", "T(e, f)", "(d = e)", "f",
            ]
        );
    }

    #[test]
    fn externally_bound_variables_let_guards_move_to_the_front() {
        let factors = vec![
            Expr::rel("R", &["a", "b"]),
            Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::int(5)),
        ];
        let ordered = optimize_factor_order(&factors, &bound(&["x"]));
        assert_eq!(ordered[0].to_string(), "(x < 5)");
        assert_eq!(ordered[1].to_string(), "R(a, b)");
    }

    #[test]
    fn unsatisfiable_factors_stay_at_the_end() {
        let factors = vec![Expr::rel("R", &["a"]), Expr::var("never_bound")];
        let ordered = optimize_factor_order(&factors, &bound(&[]));
        assert_eq!(ordered.len(), 2);
        assert_eq!(ordered[1], Expr::var("never_bound"));
    }

    #[test]
    fn optimization_preserves_semantics() {
        let mut db = Database::new();
        db.declare("R", &["A", "B"]).unwrap();
        db.declare("S", &["C", "D"]).unwrap();
        db.declare("T", &["E", "F"]).unwrap();
        for (a, b) in [(1, 10), (2, 11), (3, 10)] {
            db.insert("R", vec![Value::int(a), Value::int(b)]).unwrap();
        }
        for (c, d) in [(10, 20), (11, 21), (10, 21)] {
            db.insert("S", vec![Value::int(c), Value::int(d)]).unwrap();
        }
        for (e, f) in [(20, 5), (21, 7)] {
            db.insert("T", vec![Value::int(e), Value::int(f)]).unwrap();
        }
        let q = parse_expr("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)").unwrap();
        let optimized = optimize_for_evaluation(&q, &BTreeSet::new());
        let original = eval(&q, &db, &Tuple::empty()).unwrap();
        let rewritten = eval(&optimized, &db, &Tuple::empty()).unwrap();
        assert_eq!(
            original.get(&Tuple::empty()),
            rewritten.get(&Tuple::empty())
        );
        // The equality join conditions have been folded into the atoms (shared variables),
        // so no explicit equality condition survives, the three atoms are still present,
        // and the join variables are now shared between adjacent atoms.
        let text = optimized.to_string();
        assert!(
            !text.contains('='),
            "equalities should be eliminated: {text}"
        );
        assert_eq!(optimized.relations().len(), 3);
        assert!(optimized.variables().len() < q.variables().len());
    }

    #[test]
    fn sums_of_monomials_and_nested_aggregates_are_handled() {
        let q = parse_expr("Sum(R(x, y) * (x = y)) + Sum(S(u, v) * u)").unwrap();
        let optimized = optimize_for_evaluation(&q, &BTreeSet::new());
        // Structure is preserved: still a sum of two aggregates.
        assert_eq!(optimized.relations().len(), 2);
        let mut db = Database::new();
        db.declare("R", &["A", "B"]).unwrap();
        db.declare("S", &["A", "B"]).unwrap();
        db.insert("R", vec![Value::int(1), Value::int(1)]).unwrap();
        db.insert("S", vec![Value::int(3), Value::int(9)]).unwrap();
        let a = eval(&q, &db, &Tuple::empty()).unwrap();
        let b = eval(&optimized, &db, &Tuple::empty()).unwrap();
        assert_eq!(a.get(&Tuple::empty()), b.get(&Tuple::empty()));
    }
}
