//! Range restriction ("safety") of AGCA expressions (end of Section 4).
//!
//! Evaluation of a variable `[[x]]` fails if `x` is not bound at evaluation time. The
//! static analysis here mirrors the classical range-restriction check of relational
//! calculus, with `∧`/`∨` replaced by `*`/`+`: it propagates the set of bound variables
//! left-to-right through products (sideways binding passing) and requires both summands of
//! an addition to be evaluable, returning only the variables guaranteed by *both* branches.
//! Queries that pass the check never raise `UnboundVariable` at runtime for the same
//! initial binding set.

use std::collections::BTreeSet;
use std::fmt;

use crate::ast::{Expr, Query};

/// A range-restriction violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SafetyError {
    /// A variable was used as a value (in a term, comparison or assignment right-hand
    /// side) without being bound first.
    UnboundVariable {
        /// The offending variable.
        var: String,
        /// A rendering of the sub-expression in which it occurred.
        context: String,
    },
    /// An assignment re-binds a variable that is already bound (the paper distinguishes
    /// `x := q` from the condition `x = q` precisely by whether `x` is already safe).
    RebindsBoundVariable {
        /// The assigned variable.
        var: String,
    },
}

impl fmt::Display for SafetyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyError::UnboundVariable { var, context } => {
                write!(f, "variable {var} is not range-restricted in {context}")
            }
            SafetyError::RebindsBoundVariable { var } => {
                write!(f, "assignment re-binds already bound variable {var}")
            }
        }
    }
}

impl std::error::Error for SafetyError {}

/// Checks that an expression is range-restricted given the initially bound variables, and
/// returns the set of variables guaranteed to be bound in (the schema of) its result.
pub fn check_safety(
    expr: &Expr,
    bound: &BTreeSet<String>,
) -> Result<BTreeSet<String>, SafetyError> {
    match expr {
        Expr::Const(_) => Ok(bound.clone()),
        Expr::Var(x) => {
            if bound.contains(x) {
                Ok(bound.clone())
            } else {
                Err(SafetyError::UnboundVariable {
                    var: x.clone(),
                    context: expr.to_string(),
                })
            }
        }
        Expr::Rel(_, vars) => {
            let mut out = bound.clone();
            out.extend(vars.iter().cloned());
            Ok(out)
        }
        Expr::Mul(a, b) => {
            // Sideways binding passing: the right factor sees what the left factor bound.
            let after_a = check_safety(a, bound)?;
            check_safety(b, &after_a)
        }
        Expr::Add(a, b) => {
            let oa = check_safety(a, bound)?;
            let ob = check_safety(b, bound)?;
            // Only variables guaranteed by both branches remain bound.
            Ok(oa.intersection(&ob).cloned().collect())
        }
        Expr::Neg(a) | Expr::Sum(a) => check_safety(a, bound),
        Expr::Cmp(_, a, b) => {
            // Both sides are value terms: every variable they use must be bound — either
            // from the outside / earlier factors, or internally by a nested aggregate (the
            // recursive check handles the latter, since a nested `Sum(R(y) * y)` binds `y`
            // before using it).
            check_safety(a, bound)?;
            check_safety(b, bound)?;
            Ok(bound.clone())
        }
        Expr::Assign(x, term) => {
            check_safety(term, bound)?;
            if bound.contains(x) {
                // `x := q` with `x` already bound behaves like the condition `x = q`; we
                // accept it (the evaluator implements exactly that), so this is not an
                // error — the variable simply stays bound.
                return Ok(bound.clone());
            }
            let mut out = bound.clone();
            out.insert(x.clone());
            Ok(out)
        }
    }
}

/// Checks a whole query: the body must be range-restricted when the group-by variables are
/// considered bound... and, conversely, each group-by variable must actually be produced by
/// the body (otherwise groups would be unidentifiable).
pub fn check_query_safety(query: &Query) -> Result<(), SafetyError> {
    let bound: BTreeSet<String> = query.group_by.iter().cloned().collect();
    check_safety(&query.expr, &bound)?;
    // The body evaluated with *no* outside bindings must still bind every group-by
    // variable (they are the grouping columns of the result).
    let produced = check_safety(&query.expr, &BTreeSet::new()).unwrap_or_default();
    for g in &query.group_by {
        if !produced.contains(g) {
            return Err(SafetyError::UnboundVariable {
                var: g.clone(),
                context: format!("group-by variable of {}", query.name),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn bound(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn atoms_bind_their_variables() {
        let out = check_safety(&Expr::rel("R", &["x", "y"]), &bound(&[])).unwrap();
        assert_eq!(out, bound(&["x", "y"]));
    }

    #[test]
    fn products_pass_bindings_sideways() {
        // R(x, y) * (x < y) is safe; (x < y) * R(x, y) is not.
        let safe = Expr::mul(
            Expr::rel("R", &["x", "y"]),
            Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::var("y")),
        );
        assert!(check_safety(&safe, &bound(&[])).is_ok());

        let unsafe_expr = Expr::mul(
            Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::var("y")),
            Expr::rel("R", &["x", "y"]),
        );
        assert!(matches!(
            check_safety(&unsafe_expr, &bound(&[])),
            Err(SafetyError::UnboundVariable { .. })
        ));
        // ... unless the variables are bound from the outside.
        assert!(check_safety(&unsafe_expr, &bound(&["x", "y"])).is_ok());
    }

    #[test]
    fn addition_keeps_only_common_bindings() {
        let e = Expr::add(Expr::rel("R", &["x", "y"]), Expr::rel("S", &["x", "z"]));
        let out = check_safety(&e, &bound(&[])).unwrap();
        assert_eq!(out, bound(&["x"]));
        // Using y after the union is unsafe.
        let bad = Expr::mul(e, Expr::var("y"));
        assert!(check_safety(&bad, &bound(&[])).is_err());
    }

    #[test]
    fn value_terms_require_bound_variables() {
        assert!(check_safety(&Expr::var("x"), &bound(&[])).is_err());
        assert!(check_safety(&Expr::var("x"), &bound(&["x"])).is_ok());
        let term = Expr::mul(Expr::rel("R", &["x"]), Expr::var("x"));
        assert!(check_safety(&term, &bound(&[])).is_ok());
    }

    #[test]
    fn assignments_bind_their_target() {
        // (x := 3) * R(x, y): the assignment makes x available for the atom's selection.
        let e = Expr::mul(Expr::assign("x", Expr::int(3)), Expr::rel("R", &["x", "y"]));
        let out = check_safety(&e, &bound(&[])).unwrap();
        assert!(out.contains("x") && out.contains("y"));
        // The assignment's term must itself be bound.
        let bad = Expr::assign("x", Expr::var("u"));
        assert!(check_safety(&bad, &bound(&[])).is_err());
        assert!(check_safety(&bad, &bound(&["u"])).is_ok());
        // Assigning to an already-bound variable degrades to an equality condition.
        let cond_like = Expr::mul(Expr::rel("R", &["x", "y"]), Expr::assign("x", Expr::int(3)));
        assert!(check_safety(&cond_like, &bound(&[])).is_ok());
    }

    #[test]
    fn sum_and_negation_are_transparent() {
        let e = Expr::sum(Expr::neg(Expr::mul(
            Expr::rel("R", &["x", "y"]),
            Expr::var("x"),
        )));
        assert!(check_safety(&e, &bound(&[])).is_ok());
    }

    #[test]
    fn nested_aggregate_conditions_are_checked_recursively() {
        // (Sum(S(y) * y) > x) * R(x): unsafe because x is compared before R binds it...
        let cond = Expr::cmp(
            CmpOp::Gt,
            Expr::sum(Expr::mul(Expr::rel("S", &["y"]), Expr::var("y"))),
            Expr::var("x"),
        );
        let bad = Expr::mul(cond.clone(), Expr::rel("R", &["x"]));
        assert!(check_safety(&bad, &bound(&[])).is_err());
        // ... but safe in the other order.
        let good = Expr::mul(Expr::rel("R", &["x"]), cond);
        assert!(check_safety(&good, &bound(&[])).is_ok());
    }

    #[test]
    fn query_safety_requires_group_by_vars_to_be_produced() {
        let q = crate::ast::Query::new("g", &["c"], Expr::sum(Expr::rel("C", &["c", "n"])));
        assert!(check_query_safety(&q).is_ok());
        let bad = crate::ast::Query::new("g", &["missing"], Expr::sum(Expr::rel("C", &["c", "n"])));
        assert!(check_query_safety(&bad).is_err());
    }

    #[test]
    fn error_display() {
        let e = SafetyError::UnboundVariable {
            var: "x".into(),
            context: "x".into(),
        };
        assert!(e.to_string().contains("range-restricted"));
        assert!(SafetyError::RebindsBoundVariable { var: "x".into() }
            .to_string()
            .contains("re-binds"));
    }
}
