//! A SQL-subset frontend, lowered to AGCA exactly as in Section 5 ("From SQL to the
//! calculus"): a query
//!
//! ```sql
//! SELECT b⃗, SUM(t) FROM R1 r1, R2 r2, ... WHERE φ GROUP BY b⃗
//! ```
//!
//! becomes `Sum(R1(x⃗₁) * R2(x⃗₂) * … * φ * t)` with the group-by columns as bound
//! variables. Supported: inner joins expressed in the `WHERE` clause, equality and
//! inequality predicates between columns and constants, arithmetic (`+`, `-`, `*`) inside
//! the aggregate, `SUM(expr)` and `COUNT(*)`, table aliases, and `GROUP BY`.
//!
//! Column references become AGCA variables named `alias.column`; each table mention gets a
//! distinct alias (explicitly, or implicitly the table name), which is what makes
//! self-joins such as Example 5.2 work.

use dbring_relations::Database;

use crate::ast::{Expr, Query};
use crate::parser::{Cursor, ParseError, Token};

/// One table mention in the FROM clause.
#[derive(Clone, Debug)]
struct FromItem {
    relation: String,
    alias: String,
    columns: Vec<String>,
}

impl FromItem {
    fn variable(&self, column: &str) -> String {
        format!("{}.{}", self.alias, column)
    }
}

/// Parses a SQL aggregate query and lowers it to an AGCA [`Query`].
///
/// The database supplies the column names of each referenced relation. The query name is
/// taken from the aggregate's `AS` alias when present, otherwise `"q"`.
pub fn parse_sql(input: &str, db: &Database) -> Result<Query, ParseError> {
    let mut cursor = Cursor::new(input)?;
    cursor.expect_keyword("SELECT")?;

    // --- SELECT list: group columns and exactly one aggregate ------------------------
    #[derive(Debug)]
    enum SelectItem {
        Column(String),
        SumAgg(ValueAst, Option<String>),
        CountStar(Option<String>),
    }
    let mut select_items = Vec::new();
    loop {
        if cursor.at_keyword("SUM") {
            cursor.next();
            cursor.expect(&Token::LParen)?;
            let term = parse_value(&mut cursor)?;
            cursor.expect(&Token::RParen)?;
            let alias = parse_optional_alias(&mut cursor)?;
            select_items.push(SelectItem::SumAgg(term, alias));
        } else if cursor.at_keyword("COUNT") {
            cursor.next();
            cursor.expect(&Token::LParen)?;
            cursor.expect(&Token::Star)?;
            cursor.expect(&Token::RParen)?;
            let alias = parse_optional_alias(&mut cursor)?;
            select_items.push(SelectItem::CountStar(alias));
        } else {
            let col = parse_column_ref(&mut cursor)?;
            // A plain column may carry an alias too; it does not affect the lowering.
            let _ = parse_optional_alias(&mut cursor)?;
            select_items.push(SelectItem::Column(col));
        }
        if !cursor.eat(&Token::Comma) {
            break;
        }
    }

    // --- FROM clause ------------------------------------------------------------------
    cursor.expect_keyword("FROM")?;
    let mut from_items: Vec<FromItem> = Vec::new();
    loop {
        let relation = cursor.expect_ident()?;
        let alias = match cursor.peek() {
            Some(Token::Ident(s))
                if !["WHERE", "GROUP", "AS"]
                    .iter()
                    .any(|k| s.eq_ignore_ascii_case(k)) =>
            {
                let a = s.clone();
                cursor.next();
                a
            }
            _ => {
                if cursor.at_keyword("AS") {
                    cursor.next();
                    cursor.expect_ident()?
                } else {
                    relation.clone()
                }
            }
        };
        let columns = db
            .columns(&relation)
            .ok_or_else(|| cursor.error(format!("unknown relation {relation}")))?
            .to_vec();
        if from_items.iter().any(|f| f.alias == alias) {
            return Err(cursor.error(format!("duplicate table alias {alias}")));
        }
        from_items.push(FromItem {
            relation,
            alias,
            columns,
        });
        if !cursor.eat(&Token::Comma) {
            break;
        }
    }

    let resolve = |cursor: &Cursor, column_ref: &str| -> Result<String, ParseError> {
        resolve_column(&from_items, column_ref).map_err(|message| cursor.error(message))
    };

    // --- WHERE clause -----------------------------------------------------------------
    let mut condition_factors: Vec<Expr> = Vec::new();
    if cursor.at_keyword("WHERE") {
        cursor.next();
        loop {
            let lhs = parse_value(&mut cursor)?;
            let op = match cursor.next() {
                Some(Token::Cmp(op)) => op,
                other => {
                    return Err(
                        cursor.error(format!("expected comparison operator, found {other:?}"))
                    )
                }
            };
            let rhs = parse_value(&mut cursor)?;
            condition_factors.push(Expr::cmp(
                op,
                lower_value(&lhs, &from_items, &cursor)?,
                lower_value(&rhs, &from_items, &cursor)?,
            ));
            if cursor.at_keyword("AND") {
                cursor.next();
            } else {
                break;
            }
        }
    }

    // --- GROUP BY clause ---------------------------------------------------------------
    let mut group_by: Vec<String> = Vec::new();
    if cursor.at_keyword("GROUP") {
        cursor.next();
        cursor.expect_keyword("BY")?;
        loop {
            let col = parse_column_ref(&mut cursor)?;
            group_by.push(resolve(&cursor, &col)?);
            if !cursor.eat(&Token::Comma) {
                break;
            }
        }
    }
    cursor.eat(&Token::Semicolon);
    if !cursor.at_end() {
        return Err(cursor.error("trailing input after SQL query"));
    }

    // --- Validate the SELECT list ------------------------------------------------------
    let mut aggregate: Option<(ValueAst, Option<String>)> = None;
    for item in &select_items {
        match item {
            SelectItem::SumAgg(term, alias) => {
                if aggregate.is_some() {
                    return Err(cursor.error("only one aggregate per query is supported"));
                }
                aggregate = Some((term.clone(), alias.clone()));
            }
            SelectItem::CountStar(alias) => {
                if aggregate.is_some() {
                    return Err(cursor.error("only one aggregate per query is supported"));
                }
                aggregate = Some((ValueAst::Int(1), alias.clone()));
            }
            SelectItem::Column(col) => {
                let var = resolve(&cursor, col)?;
                if !group_by.contains(&var) {
                    return Err(cursor.error(format!(
                        "non-aggregate select column {col} must appear in GROUP BY"
                    )));
                }
            }
        }
    }
    let (agg_term, agg_alias) =
        aggregate.ok_or_else(|| cursor.error("query must contain SUM(...) or COUNT(*)"))?;

    // --- Lower to AGCA ------------------------------------------------------------------
    let mut factors: Vec<Expr> = Vec::new();
    for item in &from_items {
        let vars: Vec<String> = item.columns.iter().map(|c| item.variable(c)).collect();
        factors.push(Expr::Rel(item.relation.clone(), vars));
    }
    factors.extend(condition_factors);
    let term_expr = lower_value(&agg_term, &from_items, &cursor)?;
    if !term_expr.is_one() {
        factors.push(term_expr);
    }
    let expr = Expr::sum(Expr::product(factors));
    Ok(Query {
        name: agg_alias.unwrap_or_else(|| "q".to_string()),
        group_by,
        expr,
    })
}

/// Arithmetic value expressions appearing inside SUM(...) and WHERE predicates.
#[derive(Clone, Debug)]
enum ValueAst {
    Column(String),
    Int(i64),
    Float(f64),
    Str(String),
    Add(Box<ValueAst>, Box<ValueAst>),
    Sub(Box<ValueAst>, Box<ValueAst>),
    Mul(Box<ValueAst>, Box<ValueAst>),
    Neg(Box<ValueAst>),
}

fn lower_value(
    value: &ValueAst,
    from_items: &[FromItem],
    cursor: &Cursor,
) -> Result<Expr, ParseError> {
    Ok(match value {
        ValueAst::Column(c) => {
            Expr::Var(resolve_column(from_items, c).map_err(|message| cursor.error(message))?)
        }
        ValueAst::Int(i) => Expr::int(*i),
        ValueAst::Float(f) => Expr::constant(*f),
        ValueAst::Str(s) => Expr::constant(s.as_str()),
        ValueAst::Add(a, b) => Expr::add(
            lower_value(a, from_items, cursor)?,
            lower_value(b, from_items, cursor)?,
        ),
        ValueAst::Sub(a, b) => Expr::add(
            lower_value(a, from_items, cursor)?,
            Expr::neg(lower_value(b, from_items, cursor)?),
        ),
        ValueAst::Mul(a, b) => Expr::mul(
            lower_value(a, from_items, cursor)?,
            lower_value(b, from_items, cursor)?,
        ),
        ValueAst::Neg(a) => Expr::neg(lower_value(a, from_items, cursor)?),
    })
}

fn resolve_column(from_items: &[FromItem], column_ref: &str) -> Result<String, String> {
    if let Some((alias, column)) = column_ref.split_once('.') {
        let item = from_items
            .iter()
            .find(|f| f.alias == alias)
            .ok_or_else(|| format!("unknown table alias {alias}"))?;
        if !item.columns.iter().any(|c| c == column) {
            return Err(format!("relation {} has no column {column}", item.relation));
        }
        Ok(item.variable(column))
    } else {
        let mut matches: Vec<&FromItem> = from_items
            .iter()
            .filter(|f| f.columns.iter().any(|c| c == column_ref))
            .collect();
        match (matches.len(), matches.pop()) {
            (1, Some(item)) => Ok(item.variable(column_ref)),
            (0, _) => Err(format!("unknown column {column_ref}")),
            _ => Err(format!("ambiguous column {column_ref}")),
        }
    }
}

fn parse_optional_alias(cursor: &mut Cursor) -> Result<Option<String>, ParseError> {
    if cursor.at_keyword("AS") {
        cursor.next();
        Ok(Some(cursor.expect_ident()?))
    } else {
        Ok(None)
    }
}

fn parse_column_ref(cursor: &mut Cursor) -> Result<String, ParseError> {
    let first = cursor.expect_ident()?;
    if cursor.eat(&Token::Dot) {
        let second = cursor.expect_ident()?;
        Ok(format!("{first}.{second}"))
    } else {
        Ok(first)
    }
}

fn parse_value(cursor: &mut Cursor) -> Result<ValueAst, ParseError> {
    let mut lhs = parse_value_term(cursor)?;
    loop {
        if cursor.eat(&Token::Plus) {
            lhs = ValueAst::Add(Box::new(lhs), Box::new(parse_value_term(cursor)?));
        } else if cursor.eat(&Token::Minus) {
            lhs = ValueAst::Sub(Box::new(lhs), Box::new(parse_value_term(cursor)?));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_value_term(cursor: &mut Cursor) -> Result<ValueAst, ParseError> {
    let mut lhs = parse_value_factor(cursor)?;
    loop {
        if cursor.eat(&Token::Star) {
            lhs = ValueAst::Mul(Box::new(lhs), Box::new(parse_value_factor(cursor)?));
        } else if cursor.peek() == Some(&Token::Slash) {
            return Err(cursor.error("division is not supported in the SQL subset"));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_value_factor(cursor: &mut Cursor) -> Result<ValueAst, ParseError> {
    match cursor.next() {
        Some(Token::Int(i)) => Ok(ValueAst::Int(i)),
        Some(Token::Float(f)) => Ok(ValueAst::Float(f)),
        Some(Token::Str(s)) => Ok(ValueAst::Str(s)),
        Some(Token::Minus) => Ok(ValueAst::Neg(Box::new(parse_value_factor(cursor)?))),
        Some(Token::LParen) => {
            let inner = parse_value(cursor)?;
            cursor.expect(&Token::RParen)?;
            Ok(inner)
        }
        Some(Token::Ident(first)) => {
            if cursor.eat(&Token::Dot) {
                let second = cursor.expect_ident()?;
                Ok(ValueAst::Column(format!("{first}.{second}")))
            } else {
                Ok(ValueAst::Column(first))
            }
        }
        other => Err(cursor.error(format!("expected a value expression, found {other:?}"))),
    }
}

/// A helper for tests and examples: builds a catalog-only database (declared relations,
/// no contents) from `(relation, columns)` pairs.
pub fn catalog(relations: &[(&str, &[&str])]) -> Database {
    let mut db = Database::new();
    for (name, columns) in relations {
        db.declare(*name, columns)
            .expect("duplicate relation in catalog");
    }
    db
}

/// Re-exported for documentation: the mapping from SQL column references to AGCA variable
/// names (`alias.column`).
pub fn column_variable(alias: &str, column: &str) -> String {
    format!("{alias}.{column}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::degree;

    fn example_catalog() -> Database {
        catalog(&[
            ("C", &["cid", "nation"]),
            ("R", &["A", "B"]),
            ("S", &["C", "D"]),
            ("T", &["E", "F"]),
        ])
    }

    #[test]
    fn example_5_2_translates_to_agca() {
        let db = example_catalog();
        let q = parse_sql(
            "SELECT C1.cid, SUM(1) FROM C C1, C C2 \
             WHERE C1.nation = C2.nation GROUP BY C1.cid;",
            &db,
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["C1.cid"]);
        assert_eq!(degree(&q.expr), 2);
        // Shape: Sum(C(C1.cid, C1.nation) * C(C2.cid, C2.nation) * (C1.nation = C2.nation))
        let expected = Expr::sum(Expr::product(vec![
            Expr::rel("C", &["C1.cid", "C1.nation"]),
            Expr::rel("C", &["C2.cid", "C2.nation"]),
            Expr::eq(Expr::var("C1.nation"), Expr::var("C2.nation")),
        ]));
        assert_eq!(q.expr, expected);
    }

    #[test]
    fn example_1_3_translates_to_agca() {
        let db = example_catalog();
        let q = parse_sql("SELECT SUM(A * F) FROM R, S, T WHERE B = C AND D = E", &db).unwrap();
        assert!(q.group_by.is_empty());
        assert_eq!(degree(&q.expr), 3);
        assert_eq!(q.relations().len(), 3);
        let expected = Expr::sum(Expr::product(vec![
            Expr::rel("R", &["R.A", "R.B"]),
            Expr::rel("S", &["S.C", "S.D"]),
            Expr::rel("T", &["T.E", "T.F"]),
            Expr::eq(Expr::var("R.B"), Expr::var("S.C")),
            Expr::eq(Expr::var("S.D"), Expr::var("T.E")),
            Expr::mul(Expr::var("R.A"), Expr::var("T.F")),
        ]));
        assert_eq!(q.expr, expected);
    }

    #[test]
    fn example_1_2_count_star_self_join() {
        let db = catalog(&[("R", &["A"])]);
        let q = parse_sql("SELECT COUNT(*) FROM R r1, R r2 WHERE r1.A = r2.A", &db).unwrap();
        assert!(q.group_by.is_empty());
        assert_eq!(degree(&q.expr), 2);
        // COUNT(*) is SUM(1): the value term is dropped (multiplying by 1).
        let expected = Expr::sum(Expr::product(vec![
            Expr::rel("R", &["r1.A"]),
            Expr::rel("R", &["r2.A"]),
            Expr::eq(Expr::var("r1.A"), Expr::var("r2.A")),
        ]));
        assert_eq!(q.expr, expected);
    }

    #[test]
    fn aggregate_alias_names_the_query() {
        let db = example_catalog();
        let q = parse_sql("SELECT SUM(A) AS total_a FROM R", &db).unwrap();
        assert_eq!(q.name, "total_a");
        let q2 = parse_sql("SELECT SUM(A) FROM R", &db).unwrap();
        assert_eq!(q2.name, "q");
    }

    #[test]
    fn constants_and_arithmetic_in_aggregates_and_predicates() {
        let db = example_catalog();
        let q = parse_sql(
            "SELECT SUM(2 * A + B - 1) FROM R WHERE A >= 10 AND B <> 'x'",
            &db,
        )
        .unwrap();
        let text = q.expr.to_string();
        assert!(text.contains("(R.A >= 10)"));
        assert!(text.contains("(R.B != 'x')"));
        assert!(text.contains("2 * R.A"));
        assert_eq!(degree(&q.expr), 1);
    }

    #[test]
    fn unqualified_columns_resolve_when_unambiguous() {
        let db = example_catalog();
        let q = parse_sql("SELECT cid, SUM(1) FROM C GROUP BY cid", &db).unwrap();
        assert_eq!(q.group_by, vec!["C.cid"]);
        // Ambiguous without qualification across a self-join:
        let err = parse_sql("SELECT cid, SUM(1) FROM C C1, C C2 GROUP BY cid", &db).unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn error_cases() {
        let db = example_catalog();
        assert!(parse_sql("SELECT SUM(1) FROM Missing", &db).is_err());
        assert!(parse_sql("SELECT SUM(1) FROM R R, S R", &db)
            .unwrap_err()
            .to_string()
            .contains("duplicate table alias"));
        assert!(parse_sql("SELECT nation FROM C GROUP BY nation", &db)
            .unwrap_err()
            .to_string()
            .contains("SUM"));
        assert!(parse_sql("SELECT cid, SUM(1) FROM C", &db)
            .unwrap_err()
            .to_string()
            .contains("GROUP BY"));
        assert!(parse_sql("SELECT SUM(1), SUM(2) FROM C", &db)
            .unwrap_err()
            .to_string()
            .contains("only one aggregate"));
        assert!(parse_sql("SELECT SUM(A / 2) FROM R", &db)
            .unwrap_err()
            .to_string()
            .contains("division"));
        assert!(parse_sql("SELECT SUM(Z) FROM R", &db)
            .unwrap_err()
            .to_string()
            .contains("unknown column"));
        assert!(parse_sql("SELECT SUM(X.A) FROM R", &db)
            .unwrap_err()
            .to_string()
            .contains("unknown table alias"));
    }

    #[test]
    fn translated_queries_are_safe_and_evaluable() {
        use dbring_relations::Value;
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(2), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(3), Value::str("DE")])
            .unwrap();
        let q = parse_sql(
            "SELECT C1.cid, SUM(1) FROM C C1, C C2 \
             WHERE C1.nation = C2.nation GROUP BY C1.cid",
            &db,
        )
        .unwrap();
        crate::safety::check_query_safety(&q).unwrap();
        let groups = crate::eval::eval_all_groups(&q, &db).unwrap();
        assert_eq!(groups[&vec![Value::int(1)]], dbring_algebra::Number::Int(2));
        assert_eq!(groups[&vec![Value::int(3)]], dbring_algebra::Number::Int(1));
    }
}
