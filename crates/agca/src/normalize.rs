//! The polynomial normal form of AGCA expressions (Section 5).
//!
//! Because AGCA inherits distributivity from the GMR ring, every expression can be
//! rewritten as a *sum of monomials*: each monomial is a numeric coefficient times an
//! ordered product of atomic factors (relational atoms, conditions, assignments, variables
//! and `Sum` sub-aggregates). `Sum` is linear, so it is pushed through addition and
//! constant coefficients are pulled out of it. The normal form is what the delta transform
//! and the compiler operate on: deltas are computed monomial by monomial, and monomials
//! are what factorizes along variable connectivity (Example 1.3).
//!
//! Factor *order is preserved* throughout: AGCA's product passes bindings sideways from
//! left to right, so reordering factors could turn a safe query into an unsafe one.

use dbring_algebra::{Number, Ring, Semiring};
use dbring_relations::Value;
use serde::{Deserialize, Serialize};

use crate::ast::Expr;
use crate::degree::degree;

/// A monomial: `coefficient * f₁ * f₂ * … * f_k` with atomic factors in evaluation order.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Monomial {
    /// The numeric coefficient (product of all constant factors and signs).
    pub coefficient: Number,
    /// The non-constant factors, in left-to-right evaluation order.
    pub factors: Vec<Expr>,
}

impl Monomial {
    /// The monomial `1` (empty product).
    pub fn one() -> Self {
        Monomial {
            coefficient: Number::Int(1),
            factors: Vec::new(),
        }
    }

    /// A constant monomial.
    pub fn constant(c: Number) -> Self {
        Monomial {
            coefficient: c,
            factors: Vec::new(),
        }
    }

    /// A monomial with coefficient 1 and a single factor.
    pub fn factor(f: Expr) -> Self {
        Monomial {
            coefficient: Number::Int(1),
            factors: vec![f],
        }
    }

    /// The product of two monomials (coefficients multiply, factor lists concatenate in
    /// order).
    pub fn multiply(&self, other: &Self) -> Self {
        Monomial {
            coefficient: self.coefficient.mul(&other.coefficient),
            factors: self
                .factors
                .iter()
                .chain(other.factors.iter())
                .cloned()
                .collect(),
        }
    }

    /// The monomial with negated coefficient.
    pub fn negate(&self) -> Self {
        Monomial {
            coefficient: self.coefficient.neg(),
            factors: self.factors.clone(),
        }
    }

    /// The polynomial degree of the monomial (sum of its factors' degrees).
    pub fn degree(&self) -> usize {
        self.factors.iter().map(degree).sum()
    }

    /// Rebuilds an [`Expr`] from the monomial.
    pub fn to_expr(&self) -> Expr {
        if self.coefficient.is_zero() {
            return Expr::int(0);
        }
        let product = Expr::product(self.factors.iter().cloned());
        if self.coefficient.is_one() && !self.factors.is_empty() {
            product
        } else if self.factors.is_empty() {
            Expr::Const(Value::from(self.coefficient))
        } else if self.coefficient == Number::Int(-1) {
            Expr::neg(product)
        } else {
            Expr::mul(Expr::Const(Value::from(self.coefficient)), product)
        }
    }
}

/// A polynomial: a sum of monomials. The zero polynomial has no monomials.
#[derive(Clone, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct Polynomial {
    /// The monomials, with like terms combined and zero terms removed.
    pub monomials: Vec<Monomial>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial::default()
    }

    /// Builds a polynomial from monomials, combining like terms (identical factor lists)
    /// and dropping zero coefficients.
    pub fn from_monomials(monomials: impl IntoIterator<Item = Monomial>) -> Self {
        let mut combined: Vec<Monomial> = Vec::new();
        for m in monomials {
            if m.coefficient.is_zero() {
                continue;
            }
            if let Some(existing) = combined.iter_mut().find(|e| e.factors == m.factors) {
                existing.coefficient = existing.coefficient.add(&m.coefficient);
            } else {
                combined.push(m);
            }
        }
        combined.retain(|m| !m.coefficient.is_zero());
        Polynomial {
            monomials: combined,
        }
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.monomials.is_empty()
    }

    /// The degree of the polynomial: the maximum monomial degree (0 for the zero
    /// polynomial).
    pub fn degree(&self) -> usize {
        self.monomials
            .iter()
            .map(Monomial::degree)
            .max()
            .unwrap_or(0)
    }

    /// Rebuilds an [`Expr`] (a right-leaning sum of the monomials' expressions).
    pub fn to_expr(&self) -> Expr {
        if self.is_zero() {
            return Expr::int(0);
        }
        Expr::sum_of(self.monomials.iter().map(Monomial::to_expr))
    }

    /// The sum of two polynomials.
    pub fn add(&self, other: &Self) -> Self {
        Polynomial::from_monomials(self.monomials.iter().chain(other.monomials.iter()).cloned())
    }

    /// The product of two polynomials (distributes monomials pairwise, left factors first).
    pub fn multiply(&self, other: &Self) -> Self {
        let mut out = Vec::with_capacity(self.monomials.len() * other.monomials.len());
        for a in &self.monomials {
            for b in &other.monomials {
                out.push(a.multiply(b));
            }
        }
        Polynomial::from_monomials(out)
    }

    /// The additive inverse.
    pub fn negate(&self) -> Self {
        Polynomial {
            monomials: self.monomials.iter().map(Monomial::negate).collect(),
        }
    }
}

/// Rewrites an expression into polynomial normal form: distributes products over sums,
/// folds signs and numeric constants into coefficients, pushes `Sum` through `+` and pulls
/// constant coefficients out of it, and combines like monomials.
pub fn normalize(expr: &Expr) -> Polynomial {
    match expr {
        Expr::Add(a, b) => normalize(a).add(&normalize(b)),
        Expr::Neg(a) => normalize(a).negate(),
        Expr::Mul(a, b) => normalize(a).multiply(&normalize(b)),
        Expr::Const(v) => match v.as_number() {
            Some(n) => Polynomial::from_monomials([Monomial::constant(n)]),
            // Non-numeric constants cannot be multiplicities; keep them as an opaque factor
            // so the evaluator reports the proper error.
            None => Polynomial::from_monomials([Monomial::factor(expr.clone())]),
        },
        Expr::Sum(q) => {
            // Sum is linear: Sum(Σ cᵢ·mᵢ) = Σ cᵢ·Sum(mᵢ); Sum of a constant is the constant.
            let inner = normalize(q);
            Polynomial::from_monomials(inner.monomials.into_iter().map(|m| {
                if m.factors.is_empty() {
                    m
                } else {
                    Monomial {
                        coefficient: m.coefficient,
                        factors: vec![Expr::sum(Expr::product(m.factors))],
                    }
                }
            }))
        }
        Expr::Var(_) | Expr::Rel(_, _) | Expr::Cmp(_, _, _) | Expr::Assign(_, _) => {
            Polynomial::from_monomials([Monomial::factor(expr.clone())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    #[test]
    fn constants_fold_into_coefficients() {
        let e = Expr::mul(
            Expr::int(3),
            Expr::mul(Expr::rel("R", &["x"]), Expr::int(-2)),
        );
        let p = normalize(&e);
        assert_eq!(p.monomials.len(), 1);
        assert_eq!(p.monomials[0].coefficient, Number::Int(-6));
        assert_eq!(p.monomials[0].factors, vec![Expr::rel("R", &["x"])]);
    }

    #[test]
    fn products_distribute_over_sums() {
        // R(x) * (S(y) + T(z)) = R(x)*S(y) + R(x)*T(z)
        let e = Expr::mul(
            Expr::rel("R", &["x"]),
            Expr::add(Expr::rel("S", &["y"]), Expr::rel("T", &["z"])),
        );
        let p = normalize(&e);
        assert_eq!(p.monomials.len(), 2);
        assert_eq!(
            p.monomials[0].factors,
            vec![Expr::rel("R", &["x"]), Expr::rel("S", &["y"])]
        );
        assert_eq!(
            p.monomials[1].factors,
            vec![Expr::rel("R", &["x"]), Expr::rel("T", &["z"])]
        );
        assert_eq!(p.degree(), 2);
    }

    #[test]
    fn like_terms_combine_and_cancel() {
        let r = Expr::rel("R", &["x"]);
        // R + R = 2R
        let p = normalize(&Expr::add(r.clone(), r.clone()));
        assert_eq!(p.monomials.len(), 1);
        assert_eq!(p.monomials[0].coefficient, Number::Int(2));
        // R - R = 0
        let q = normalize(&Expr::add(r.clone(), Expr::neg(r.clone())));
        assert!(q.is_zero());
        assert!(q.to_expr().is_zero());
    }

    #[test]
    fn negation_folds_into_coefficients() {
        let e = Expr::neg(Expr::mul(Expr::int(2), Expr::rel("R", &["x"])));
        let p = normalize(&e);
        assert_eq!(p.monomials[0].coefficient, Number::Int(-2));
        // Double negation cancels.
        let p2 = normalize(&Expr::neg(e));
        assert_eq!(p2.monomials[0].coefficient, Number::Int(2));
    }

    #[test]
    fn sum_is_pushed_through_addition_and_constants() {
        // Sum(2*R(x) + 3) = 2*Sum(R(x)) + 3
        let e = Expr::sum(Expr::add(
            Expr::mul(Expr::int(2), Expr::rel("R", &["x"])),
            Expr::int(3),
        ));
        let p = normalize(&e);
        assert_eq!(p.monomials.len(), 2);
        let with_sum = p.monomials.iter().find(|m| !m.factors.is_empty()).unwrap();
        assert_eq!(with_sum.coefficient, Number::Int(2));
        assert_eq!(with_sum.factors, vec![Expr::sum(Expr::rel("R", &["x"]))]);
        let constant = p.monomials.iter().find(|m| m.factors.is_empty()).unwrap();
        assert_eq!(constant.coefficient, Number::Int(3));
    }

    #[test]
    fn factor_order_is_preserved() {
        // R(x, y) * (x < y): the condition must stay to the right of the atom that binds
        // its variables.
        let e = Expr::mul(
            Expr::rel("R", &["x", "y"]),
            Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::var("y")),
        );
        let p = normalize(&e);
        assert_eq!(p.monomials.len(), 1);
        assert!(matches!(p.monomials[0].factors[0], Expr::Rel(_, _)));
        assert!(matches!(p.monomials[0].factors[1], Expr::Cmp(_, _, _)));
    }

    #[test]
    fn to_expr_roundtrips_through_normalization() {
        let e = Expr::mul(
            Expr::add(Expr::rel("R", &["x"]), Expr::neg(Expr::rel("S", &["x"]))),
            Expr::add(Expr::rel("T", &["x"]), Expr::int(2)),
        );
        let p = normalize(&e);
        // Re-normalizing the rebuilt expression is a fixpoint.
        assert_eq!(normalize(&p.to_expr()), p);
    }

    #[test]
    fn monomial_helpers() {
        let m = Monomial::factor(Expr::rel("R", &["x"]));
        assert_eq!(m.degree(), 1);
        assert_eq!(m.to_expr(), Expr::rel("R", &["x"]));
        let neg = m.negate();
        assert_eq!(neg.to_expr(), Expr::neg(Expr::rel("R", &["x"])));
        let c = Monomial::constant(Number::Int(5));
        assert_eq!(c.to_expr(), Expr::int(5));
        assert_eq!(Monomial::one().to_expr(), Expr::int(1));
        let prod = m.multiply(&Monomial::constant(Number::Int(3)));
        assert_eq!(prod.coefficient, Number::Int(3));
        assert_eq!(prod.factors.len(), 1);
        assert_eq!(Monomial::constant(Number::Int(0)).to_expr(), Expr::int(0));
    }

    #[test]
    fn polynomial_arithmetic() {
        let r = Polynomial::from_monomials([Monomial::factor(Expr::rel("R", &["x"]))]);
        let s = Polynomial::from_monomials([Monomial::factor(Expr::rel("S", &["x"]))]);
        let sum = r.add(&s);
        assert_eq!(sum.monomials.len(), 2);
        let prod = r.multiply(&s);
        assert_eq!(prod.monomials.len(), 1);
        assert_eq!(prod.degree(), 2);
        assert!(r.add(&r.negate()).is_zero());
        assert_eq!(Polynomial::zero().degree(), 0);
        assert_eq!(Polynomial::zero().to_expr(), Expr::int(0));
    }

    #[test]
    fn degree_matches_ast_degree() {
        let e = Expr::add(
            Expr::mul(Expr::rel("R", &["x"]), Expr::rel("S", &["y"])),
            Expr::rel("T", &["z"]),
        );
        assert_eq!(normalize(&e).degree(), crate::degree::degree(&e));
    }

    #[test]
    fn zero_coefficient_monomials_are_dropped() {
        let e = Expr::mul(Expr::int(0), Expr::rel("R", &["x"]));
        assert!(normalize(&e).is_zero());
    }
}
