//! The reference evaluator: the denotational semantics `[[·]]` of Section 4.
//!
//! Evaluation takes an expression, a database and a binding tuple `b⃗` and produces a GMR
//! over [`Number`] multiplicities — one point of the parametrized GMR `[[q]](A)`. The
//! evaluator follows the paper's equations literally (including sideways binding passing
//! in products and the sub-tuple semantics of `Sum`); it is deliberately simple and serves
//! as the correctness oracle for the compiled incremental programs, as the engine of the
//! non-incremental baselines, and as the initializer for materialized views over non-empty
//! databases.

use std::collections::BTreeMap;
use std::fmt;

use dbring_algebra::{Number, Ring, Semiring};
use dbring_relations::{Database, Gmr, Tuple, Value};

#[cfg(test)]
use crate::ast::CmpOp;
use crate::ast::{Expr, Query};

/// Errors raised during evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// A variable was used as a value before being bound (the `fail` case of `[[y]]`).
    UnboundVariable(String),
    /// The expression references a relation the database does not declare.
    UnknownRelation(String),
    /// A relational atom's variable list does not match the relation's declared arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of variables in the atom.
        got: usize,
    },
    /// A non-numeric value (e.g. a string) was used where a multiplicity or arithmetic
    /// operand is required.
    NonNumericValue {
        /// Where the value was used.
        context: String,
        /// The offending value.
        value: Value,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(x) => write!(f, "unbound variable {x}"),
            EvalError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            EvalError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "atom {relation} has {got} variables, relation has arity {expected}"
            ),
            EvalError::NonNumericValue { context, value } => {
                write!(f, "non-numeric value {value} used in {context}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Compares two values: numerically when both are numeric, structurally otherwise.
pub fn compare_values(a: &Value, b: &Value) -> std::cmp::Ordering {
    match (a.as_number(), b.as_number()) {
        (Some(x), Some(y)) => x.compare(&y),
        _ => a.cmp(b),
    }
}

/// Evaluates `[[expr]](db)(bindings)`: the GMR produced by the expression under the given
/// binding tuple.
pub fn eval(expr: &Expr, db: &Database, bindings: &Tuple) -> Result<Gmr<Number>, EvalError> {
    match expr {
        Expr::Add(a, b) => Ok(eval(a, db, bindings)?.add(&eval(b, db, bindings)?)),
        Expr::Neg(a) => Ok(eval(a, db, bindings)?.neg()),
        Expr::Mul(a, b) => {
            // (f * g)(b)(x) = Σ_{x = y ⋈ z, {b}⋈{y} ≠ ∅} f(b)(y) * g(b ⋈ y)(z)
            let left = eval(a, db, bindings)?;
            let mut out = Gmr::zero();
            for (y, m1) in left.iter() {
                let Some(by) = bindings.join(y) else {
                    continue;
                };
                let right = eval(b, db, &by)?;
                for (z, m2) in right.iter() {
                    if let Some(x) = y.join(z) {
                        out.add_entry(x, m1.mul(m2));
                    }
                }
            }
            Ok(out)
        }
        Expr::Sum(q) => {
            // [[Sum q]](b)(x) = Σ_{x ⋈ y = y} [[q]](b)(y): each result tuple contributes its
            // multiplicity to every one of its sub-tuples (including ⟨⟩, the grand total).
            let inner = eval(q, db, bindings)?;
            let mut out = Gmr::zero();
            for (y, m) in inner.iter() {
                for x in y.subtuples() {
                    out.add_entry(x, *m);
                }
            }
            Ok(out)
        }
        Expr::Const(v) => {
            let n = v.as_number().ok_or_else(|| EvalError::NonNumericValue {
                context: "constant multiplicity".to_string(),
                value: v.clone(),
            })?;
            Ok(Gmr::singleton(Tuple::empty(), n))
        }
        Expr::Var(x) => {
            let v = bindings
                .get(x)
                .ok_or_else(|| EvalError::UnboundVariable(x.clone()))?;
            let n = v.as_number().ok_or_else(|| EvalError::NonNumericValue {
                context: format!("variable {x} used as a multiplicity"),
                value: v.clone(),
            })?;
            Ok(Gmr::singleton(Tuple::empty(), n))
        }
        Expr::Rel(name, vars) => {
            let columns = db
                .columns(name)
                .ok_or_else(|| EvalError::UnknownRelation(name.clone()))?;
            if columns.len() != vars.len() {
                return Err(EvalError::ArityMismatch {
                    relation: name.clone(),
                    expected: columns.len(),
                    got: vars.len(),
                });
            }
            let columns = columns.to_vec();
            let data = db.relation(name).expect("columns() implies existence");
            let mut out = Gmr::zero();
            'tuples: for (t, m) in data.iter() {
                // Rename the stored columns to the atom's variables.
                let mut renamed = Tuple::empty();
                for (var, col) in vars.iter().zip(columns.iter()) {
                    let value = t
                        .get(col)
                        .expect("stored tuples always carry the declared schema")
                        .clone();
                    match renamed.extended(var.clone(), value) {
                        Some(next) => renamed = next,
                        // A repeated variable bound to two different values: the atom does
                        // not match this tuple.
                        None => continue 'tuples,
                    }
                }
                // |dom(x⃗)| must equal the relation's arity (repeated variables collapse the
                // domain and are rejected by the paper's semantics).
                if renamed.arity() != vars.len() {
                    continue;
                }
                // Selection on bound variables: {b} ⋈ {x} ≠ ∅.
                if !renamed.is_consistent_with(bindings) {
                    continue;
                }
                out.add_entry(renamed, Number::Int(*m));
            }
            Ok(out)
        }
        Expr::Cmp(op, lhs, rhs) => {
            let l = eval_scalar(lhs, db, bindings)?;
            let r = eval_scalar(rhs, db, bindings)?;
            if op.test(compare_values(&l, &r)) {
                Ok(Gmr::one())
            } else {
                Ok(Gmr::zero())
            }
        }
        Expr::Assign(x, term) => {
            let v = eval_scalar(term, db, bindings)?;
            // Well-formedness: if x is already bound to a different value, the singleton
            // {x ↦ v} is inconsistent with the binding and the result is 0.
            if let Some(existing) = bindings.get(x) {
                if *existing != v {
                    return Ok(Gmr::zero());
                }
            }
            Ok(Gmr::singleton(
                Tuple::singleton(x.clone(), v),
                Number::Int(1),
            ))
        }
    }
}

/// Evaluates an expression as a *scalar value* under the bindings: the value
/// `[[q]](db)(b)(⟨⟩)`, with variables and constants passed through as their actual values
/// (so string-valued comparisons work).
pub fn eval_scalar(expr: &Expr, db: &Database, bindings: &Tuple) -> Result<Value, EvalError> {
    fn numeric(
        expr: &Expr,
        db: &Database,
        bindings: &Tuple,
        context: &str,
    ) -> Result<Number, EvalError> {
        let v = eval_scalar(expr, db, bindings)?;
        v.as_number().ok_or_else(|| EvalError::NonNumericValue {
            context: context.to_string(),
            value: v,
        })
    }
    match expr {
        Expr::Var(x) => bindings
            .get(x)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
        Expr::Const(v) => Ok(v.clone()),
        Expr::Add(a, b) => Ok(Value::from(
            numeric(a, db, bindings, "addition")?.add(&numeric(b, db, bindings, "addition")?),
        )),
        Expr::Mul(a, b) => Ok(Value::from(
            numeric(a, db, bindings, "multiplication")?.mul(&numeric(
                b,
                db,
                bindings,
                "multiplication",
            )?),
        )),
        Expr::Neg(a) => Ok(Value::from(numeric(a, db, bindings, "negation")?.neg())),
        Expr::Sum(q) => Ok(Value::from(eval(q, db, bindings)?.total())),
        // Relational atoms, comparisons and assignments used as scalars: the value at ⟨⟩.
        other => Ok(Value::from(eval(other, db, bindings)?.get(&Tuple::empty()))),
    }
}

/// Evaluates a group-by query for a single group: `[[q]](db)(b⃗)(⟨⟩)` where `b⃗` binds the
/// group-by variables to `group`.
pub fn eval_group(query: &Query, db: &Database, group: &[Value]) -> Result<Number, EvalError> {
    assert_eq!(
        group.len(),
        query.group_by.len(),
        "group key arity mismatch"
    );
    let bindings = Tuple::from_pairs(query.group_by.iter().cloned().zip(group.iter().cloned()));
    Ok(eval(&query.expr, db, &bindings)?.get(&Tuple::empty()))
}

/// Evaluates a group-by aggregate query for *all* groups present in the data.
///
/// The query's expression must be a top-level `Sum(…)` (the shape produced by the SQL
/// translation); the groups are the distinct values of the group-by variables in the
/// support of the inner expression. A query without group-by variables yields a single
/// entry with the empty key.
pub fn eval_all_groups(
    query: &Query,
    db: &Database,
) -> Result<BTreeMap<Vec<Value>, Number>, EvalError> {
    let inner: &Expr = match &query.expr {
        Expr::Sum(q) => q,
        other => other,
    };
    let mut out: BTreeMap<Vec<Value>, Number> = BTreeMap::new();
    if query.group_by.is_empty() {
        let total = eval(inner, db, &Tuple::empty())?.total();
        out.insert(Vec::new(), total);
        return Ok(out);
    }
    let result = eval(inner, db, &Tuple::empty())?;
    for (t, m) in result.iter() {
        let mut key = Vec::with_capacity(query.group_by.len());
        for var in &query.group_by {
            match t.get(var) {
                Some(v) => key.push(v.clone()),
                None => return Err(EvalError::UnboundVariable(var.clone())),
            }
        }
        let entry = out.entry(key).or_insert(Number::Int(0));
        *entry = entry.add(m);
    }
    // Drop groups whose aggregate cancelled to zero, mirroring GMR support pruning.
    out.retain(|_, v| !v.is_zero());
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_relations::tuple;

    /// The database of Example 4.1 / 4.3: R(a, b) = {(a1, b1) ↦ r1, (a2, b2) ↦ r2},
    /// with concrete values a1=10, b1=20, a2=30, b2=40, r1=2, r2=3.
    fn example_4_db() -> Database {
        let mut db = Database::new();
        db.declare("R", &["a", "b"]).unwrap();
        for _ in 0..2 {
            db.insert("R", vec![Value::int(10), Value::int(20)])
                .unwrap();
        }
        for _ in 0..3 {
            db.insert("R", vec![Value::int(30), Value::int(40)])
                .unwrap();
        }
        db
    }

    #[test]
    fn example_4_1_atom_with_bound_variable_selects() {
        let db = example_4_db();
        // [[R(x, y)]]({y ↦ 20}) keeps only the tuple with y = 20, renamed to (x, y).
        let r = eval(&Expr::rel("R", &["x", "y"]), &db, &tuple! { "y" => 20 }).unwrap();
        assert_eq!(r.support_size(), 1);
        assert_eq!(r.get(&tuple! { "x" => 10, "y" => 20 }), Number::Int(2));
    }

    #[test]
    fn example_4_2_conditions_filter_by_comparison() {
        let db = example_4_db();
        let lt = Expr::mul(
            Expr::rel("R", &["x", "y"]),
            Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::var("y")),
        );
        let out = eval(&lt, &db, &Tuple::empty()).unwrap();
        // Both tuples satisfy x < y here (10<20, 30<40).
        assert_eq!(out.support_size(), 2);
        let ge = Expr::mul(
            Expr::rel("R", &["x", "y"]),
            Expr::cmp(CmpOp::Ge, Expr::var("x"), Expr::var("y")),
        );
        assert!(eval(&ge, &db, &Tuple::empty()).unwrap().is_zero());
    }

    #[test]
    fn example_4_3_sum_with_value_term() {
        let db = example_4_db();
        // Sum(R(x, y) * 3 * x) = r1*3*a1 + r2*3*a2 = 2*3*10 + 3*3*30 = 330.
        let q = Expr::sum(Expr::product(vec![
            Expr::rel("R", &["x", "y"]),
            Expr::int(3),
            Expr::var("x"),
        ]));
        let out = eval(&q, &db, &Tuple::empty()).unwrap();
        assert_eq!(out.get(&Tuple::empty()), Number::Int(330));
    }

    #[test]
    fn example_4_4_constructing_gmrs_from_scratch() {
        // [[(x := x1)*(y := y1)*z + (x := x2)*(-3)]] under the given bindings builds a GMR
        // with no database access at all.
        let db = Database::new();
        let expr = Expr::add(
            Expr::product(vec![
                Expr::assign("x", Expr::var("x1")),
                Expr::assign("y", Expr::var("y1")),
                Expr::var("z"),
            ]),
            Expr::mul(Expr::assign("x", Expr::var("x2")), Expr::int(-3)),
        );
        let bindings = tuple! { "x1" => "a1", "y1" => "b1", "x2" => "a2", "z" => 2 };
        let out = eval(&expr, &db, &bindings).unwrap();
        assert_eq!(
            out.get(&tuple! { "x" => "a1", "y" => "b1" }),
            Number::Int(2)
        );
        assert_eq!(out.get(&tuple! { "x" => "a2" }), Number::Int(-3));
        assert_eq!(out.support_size(), 2);
    }

    #[test]
    fn unbound_variable_fails() {
        let db = example_4_db();
        let err = eval(&Expr::var("z"), &db, &Tuple::empty()).unwrap_err();
        assert_eq!(err, EvalError::UnboundVariable("z".to_string()));
        let err2 = eval(
            &Expr::mul(Expr::rel("R", &["x", "y"]), Expr::var("z")),
            &db,
            &Tuple::empty(),
        )
        .unwrap_err();
        assert_eq!(err2, EvalError::UnboundVariable("z".to_string()));
    }

    #[test]
    fn unknown_relation_and_arity_errors() {
        let db = example_4_db();
        assert_eq!(
            eval(&Expr::rel("S", &["x"]), &db, &Tuple::empty()).unwrap_err(),
            EvalError::UnknownRelation("S".to_string())
        );
        assert!(matches!(
            eval(&Expr::rel("R", &["x"]), &db, &Tuple::empty()).unwrap_err(),
            EvalError::ArityMismatch {
                expected: 2,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn string_values_work_in_equality_conditions() {
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(2), Value::str("DE")])
            .unwrap();
        db.insert("C", vec![Value::int(3), Value::str("FR")])
            .unwrap();
        // Customers from France: Sum(C(c, n) * (n = 'FR'))
        let q = Expr::sum(Expr::mul(
            Expr::rel("C", &["c", "n"]),
            Expr::eq(Expr::var("n"), Expr::constant("FR")),
        ));
        assert_eq!(
            eval(&q, &db, &Tuple::empty()).unwrap().get(&Tuple::empty()),
            Number::Int(2)
        );
    }

    #[test]
    fn example_5_2_group_by_customers_same_nation() {
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(2), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(3), Value::str("DE")])
            .unwrap();
        // Sum(C(c, n) * C(c2, n2) * (n = n2)) with bound variable c.
        let q = Query::new(
            "per_customer",
            &["c"],
            Expr::sum(Expr::product(vec![
                Expr::rel("C", &["c", "n"]),
                Expr::rel("C", &["c2", "n2"]),
                Expr::eq(Expr::var("n"), Expr::var("n2")),
            ])),
        );
        // Per-group evaluation (the paper's [[Sum(…)]](A)({c ↦ v})).
        assert_eq!(
            eval_group(&q, &db, &[Value::int(1)]).unwrap(),
            Number::Int(2)
        );
        assert_eq!(
            eval_group(&q, &db, &[Value::int(3)]).unwrap(),
            Number::Int(1)
        );
        // All groups at once.
        let groups = eval_all_groups(&q, &db).unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&vec![Value::int(1)]], Number::Int(2));
        assert_eq!(groups[&vec![Value::int(2)]], Number::Int(2));
        assert_eq!(groups[&vec![Value::int(3)]], Number::Int(1));
    }

    #[test]
    fn example_1_2_self_join_count() {
        // Q(R) = select count(*) from R r1, R r2 where r1.A = r2.A
        let mut db = Database::new();
        db.declare("R", &["A"]).unwrap();
        let q = Query::scalar(
            "q",
            Expr::sum(Expr::product(vec![
                Expr::rel("R", &["x"]),
                Expr::rel("R", &["y"]),
                Expr::eq(Expr::var("x"), Expr::var("y")),
            ])),
        );
        let count = |db: &Database| eval_all_groups(&q, db).unwrap().get(&vec![]).copied();
        // A scalar (no group-by) query always reports a value, even on the empty database.
        assert_eq!(count(&db), Some(Number::Int(0)));
        // Replay the update trace of Example 1.2 and check Q(R) along the way.
        let c = Value::str("c");
        let d = Value::str("d");
        db.insert("R", vec![c.clone()]).unwrap();
        assert_eq!(count(&db), Some(Number::Int(1)));
        db.insert("R", vec![c.clone()]).unwrap();
        assert_eq!(count(&db), Some(Number::Int(4)));
        db.insert("R", vec![d.clone()]).unwrap();
        assert_eq!(count(&db), Some(Number::Int(5)));
        db.insert("R", vec![c.clone()]).unwrap();
        assert_eq!(count(&db), Some(Number::Int(10)));
        db.delete("R", vec![d.clone()]).unwrap();
        assert_eq!(count(&db), Some(Number::Int(9)));
        db.insert("R", vec![c.clone()]).unwrap();
        assert_eq!(count(&db), Some(Number::Int(16)));
        db.delete("R", vec![c.clone()]).unwrap();
        assert_eq!(count(&db), Some(Number::Int(9)));
    }

    #[test]
    fn scalar_arithmetic_and_errors() {
        let db = Database::new();
        let b = tuple! { "x" => 3, "s" => "txt" };
        assert_eq!(
            eval_scalar(&Expr::add(Expr::var("x"), Expr::int(4)), &db, &b).unwrap(),
            Value::int(7)
        );
        assert_eq!(
            eval_scalar(&Expr::neg(Expr::var("x")), &db, &b).unwrap(),
            Value::int(-3)
        );
        assert_eq!(
            eval_scalar(&Expr::var("s"), &db, &b).unwrap(),
            Value::str("txt")
        );
        assert!(matches!(
            eval_scalar(&Expr::add(Expr::var("s"), Expr::int(1)), &db, &b),
            Err(EvalError::NonNumericValue { .. })
        ));
        // String constants cannot be multiplicities.
        assert!(matches!(
            eval(&Expr::constant("oops"), &db, &Tuple::empty()),
            Err(EvalError::NonNumericValue { .. })
        ));
    }

    #[test]
    fn negation_and_deletion_semantics() {
        let db = example_4_db();
        let r = Expr::rel("R", &["x", "y"]);
        let zero = eval(
            &Expr::add(r.clone(), Expr::neg(r.clone())),
            &db,
            &Tuple::empty(),
        )
        .unwrap();
        assert!(zero.is_zero());
    }

    #[test]
    fn repeated_variables_in_atoms_match_nothing() {
        // Per the |dom(x⃗)| = |sch(R)| side condition, R(x, x) never matches; the idiom is
        // R(x, y) * (x = y).
        let db = example_4_db();
        let out = eval(&Expr::rel("R", &["x", "x"]), &db, &Tuple::empty()).unwrap();
        assert!(out.is_zero());
    }

    #[test]
    fn sum_produces_all_subtuple_marginals() {
        let db = example_4_db();
        let q = Expr::sum(Expr::rel("R", &["x", "y"]));
        let out = eval(&q, &db, &Tuple::empty()).unwrap();
        // Grand total.
        assert_eq!(out.get(&Tuple::empty()), Number::Int(5));
        // Marginal per x value.
        assert_eq!(out.get(&tuple! { "x" => 10 }), Number::Int(2));
        assert_eq!(out.get(&tuple! { "x" => 30 }), Number::Int(3));
        // Full tuples keep their multiplicities.
        assert_eq!(out.get(&tuple! { "x" => 10, "y" => 20 }), Number::Int(2));
    }

    #[test]
    fn error_display() {
        assert!(EvalError::UnboundVariable("x".into())
            .to_string()
            .contains("x"));
        assert!(EvalError::UnknownRelation("R".into())
            .to_string()
            .contains("R"));
        let e = EvalError::NonNumericValue {
            context: "test".into(),
            value: Value::str("s"),
        };
        assert!(e.to_string().contains("test"));
    }
}
