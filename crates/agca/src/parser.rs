//! A text syntax for AGCA expressions and queries, with a hand-written lexer and
//! recursive-descent parser.
//!
//! Grammar (comparisons and assignments are parenthesized, which keeps the syntax
//! unambiguous without a precedence table for `θ`):
//!
//! ```text
//! query   :=  NAME ('[' var (',' var)* ']')? ':=' expr
//! expr    :=  term (('+' | '-') term)*
//! term    :=  unary ('*' unary)*
//! unary   :=  '-' unary | atom
//! atom    :=  'Sum' '(' expr ')'
//!          |  '(' inner ')'
//!          |  NUMBER | STRING
//!          |  NAME '(' var (',' var)* ')'          -- relational atom
//!          |  NAME                                  -- variable
//! inner   :=  expr ( cmp expr | ':=' expr )?        -- comparison / assignment / grouping
//! cmp     :=  '=' | '!=' | '<>' | '<' | '<=' | '>' | '>='
//! ```
//!
//! Examples: `Sum(C(c, n) * C(c2, n2) * (n = n2))`, `Sum(R(a, b) * (b = c) * a)`,
//! `q[c] := Sum(C(c, n) * C(c2, n) )`.

use std::fmt;

use crate::ast::{CmpOp, Expr, Query};

/// A parse error with a human-readable message and the byte offset it refers to.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte position in the input at which the error was detected.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokens shared by the AGCA parser and the SQL frontend.
#[derive(Clone, PartialEq, Debug)]
pub(crate) enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Plus,
    Minus,
    Star,
    Slash,
    Dot,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Cmp(CmpOp),
    Assign,
    Semicolon,
}

/// Lexes an input string into tokens paired with their byte positions.
pub(crate) fn lex(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '+' => {
                tokens.push((Token::Plus, i));
                i += 1;
            }
            '-' => {
                tokens.push((Token::Minus, i));
                i += 1;
            }
            '*' => {
                tokens.push((Token::Star, i));
                i += 1;
            }
            '/' => {
                tokens.push((Token::Slash, i));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, i));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, i));
                i += 1;
            }
            ';' => {
                tokens.push((Token::Semicolon, i));
                i += 1;
            }
            '(' => {
                tokens.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, i));
                i += 1;
            }
            '[' => {
                tokens.push((Token::LBracket, i));
                i += 1;
            }
            ']' => {
                tokens.push((Token::RBracket, i));
                i += 1;
            }
            '=' => {
                tokens.push((Token::Cmp(CmpOp::Eq), i));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Cmp(CmpOp::Ne), i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected '=' after '!'".to_string(),
                        position: i,
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Cmp(CmpOp::Le), i));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push((Token::Cmp(CmpOp::Ne), i));
                    i += 2;
                } else {
                    tokens.push((Token::Cmp(CmpOp::Lt), i));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Cmp(CmpOp::Ge), i));
                    i += 2;
                } else {
                    tokens.push((Token::Cmp(CmpOp::Gt), i));
                    i += 1;
                }
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push((Token::Assign, i));
                    i += 2;
                } else {
                    return Err(ParseError {
                        message: "expected '=' after ':'".to_string(),
                        position: i,
                    });
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(ParseError {
                        message: "unterminated string literal".to_string(),
                        position: i,
                    });
                }
                tokens.push((Token::Str(input[start..j].to_string()), i));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                let mut is_float = false;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_digit()
                        || (bytes[j] == b'.'
                            && j + 1 < bytes.len()
                            && (bytes[j + 1] as char).is_ascii_digit()))
                {
                    if bytes[j] == b'.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text = &input[start..j];
                let token = if is_float {
                    Token::Float(text.parse().map_err(|_| ParseError {
                        message: format!("invalid float literal {text}"),
                        position: start,
                    })?)
                } else {
                    Token::Int(text.parse().map_err(|_| ParseError {
                        message: format!("invalid integer literal {text}"),
                        position: start,
                    })?)
                };
                tokens.push((token, start));
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                tokens.push((Token::Ident(input[start..j].to_string()), start));
                i = j;
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character {other:?}"),
                    position: i,
                });
            }
        }
    }
    Ok(tokens)
}

/// A token cursor shared by the AGCA and SQL parsers.
pub(crate) struct Cursor {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    input_len: usize,
}

impl Cursor {
    pub(crate) fn new(input: &str) -> Result<Self, ParseError> {
        Ok(Cursor {
            tokens: lex(input)?,
            pos: 0,
            input_len: input.len(),
        })
    }

    pub(crate) fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    pub(crate) fn position(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(_, p)| *p)
            .unwrap_or(self.input_len)
    }

    pub(crate) fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.position(),
        }
    }

    pub(crate) fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == token => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected {token:?}, found {other:?}"))),
        }
    }

    pub(crate) fn eat(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    pub(crate) fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    /// Consumes an identifier equal (case-insensitively) to `keyword`.
    pub(crate) fn expect_keyword(&mut self, keyword: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(keyword) => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.error(format!("expected keyword {keyword}, found {other:?}"))),
        }
    }

    /// Whether the next token is the given keyword (case-insensitive), without consuming.
    pub(crate) fn at_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(keyword))
    }

    pub(crate) fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }
}

/// Parses an AGCA expression from its text syntax.
pub fn parse_expr(input: &str) -> Result<Expr, ParseError> {
    let mut cursor = Cursor::new(input)?;
    let expr = parse_add(&mut cursor)?;
    if !cursor.at_end() {
        return Err(cursor.error("trailing input after expression"));
    }
    Ok(expr)
}

/// Parses a named query definition `name := expr` or `name[x, y] := expr`.
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut cursor = Cursor::new(input)?;
    let name = cursor.expect_ident()?;
    let mut group_by = Vec::new();
    if cursor.eat(&Token::LBracket) {
        loop {
            group_by.push(cursor.expect_ident()?);
            if !cursor.eat(&Token::Comma) {
                break;
            }
        }
        cursor.expect(&Token::RBracket)?;
    }
    cursor.expect(&Token::Assign)?;
    let expr = parse_add(&mut cursor)?;
    if !cursor.at_end() {
        return Err(cursor.error("trailing input after query"));
    }
    Ok(Query {
        name,
        group_by,
        expr,
    })
}

fn parse_add(cursor: &mut Cursor) -> Result<Expr, ParseError> {
    let mut lhs = parse_mul(cursor)?;
    loop {
        if cursor.eat(&Token::Plus) {
            let rhs = parse_mul(cursor)?;
            lhs = Expr::add(lhs, rhs);
        } else if cursor.eat(&Token::Minus) {
            let rhs = parse_mul(cursor)?;
            lhs = Expr::add(lhs, Expr::neg(rhs));
        } else {
            return Ok(lhs);
        }
    }
}

fn parse_mul(cursor: &mut Cursor) -> Result<Expr, ParseError> {
    let mut lhs = parse_unary(cursor)?;
    while cursor.eat(&Token::Star) {
        let rhs = parse_unary(cursor)?;
        lhs = Expr::mul(lhs, rhs);
    }
    Ok(lhs)
}

fn parse_unary(cursor: &mut Cursor) -> Result<Expr, ParseError> {
    if cursor.eat(&Token::Minus) {
        Ok(Expr::neg(parse_unary(cursor)?))
    } else {
        parse_atom(cursor)
    }
}

fn parse_atom(cursor: &mut Cursor) -> Result<Expr, ParseError> {
    match cursor.next() {
        Some(Token::Int(i)) => Ok(Expr::int(i)),
        Some(Token::Float(f)) => Ok(Expr::constant(f)),
        Some(Token::Str(s)) => Ok(Expr::Const(dbring_relations::Value::str(&s))),
        Some(Token::LParen) => {
            let inner = parse_inner(cursor)?;
            cursor.expect(&Token::RParen)?;
            Ok(inner)
        }
        Some(Token::Ident(name)) => {
            if name.eq_ignore_ascii_case("Sum") && cursor.peek() == Some(&Token::LParen) {
                cursor.expect(&Token::LParen)?;
                let inner = parse_add(cursor)?;
                cursor.expect(&Token::RParen)?;
                return Ok(Expr::sum(inner));
            }
            if cursor.peek() == Some(&Token::LParen) {
                // Relational atom.
                cursor.expect(&Token::LParen)?;
                let mut vars = Vec::new();
                if cursor.peek() != Some(&Token::RParen) {
                    loop {
                        vars.push(cursor.expect_ident()?);
                        if !cursor.eat(&Token::Comma) {
                            break;
                        }
                    }
                }
                cursor.expect(&Token::RParen)?;
                return Ok(Expr::Rel(name, vars));
            }
            Ok(Expr::Var(name))
        }
        other => Err(cursor.error(format!("expected an atom, found {other:?}"))),
    }
}

/// The interior of a parenthesized group: an expression, optionally followed by a
/// comparison operator or `:=` and a right-hand side.
fn parse_inner(cursor: &mut Cursor) -> Result<Expr, ParseError> {
    let lhs = parse_add(cursor)?;
    match cursor.peek() {
        Some(Token::Cmp(op)) => {
            let op = *op;
            cursor.next();
            let rhs = parse_add(cursor)?;
            Ok(Expr::cmp(op, lhs, rhs))
        }
        Some(Token::Assign) => {
            cursor.next();
            let rhs = parse_add(cursor)?;
            match lhs {
                Expr::Var(x) => Ok(Expr::assign(x, rhs)),
                other => Err(cursor.error(format!(
                    "left-hand side of ':=' must be a variable, found {other}"
                ))),
            }
        }
        _ => Ok(lhs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_running_example() {
        let q = parse_expr("Sum(C(c, n) * C(c2, n2) * (n = n2))").unwrap();
        let expected = Expr::sum(Expr::product(vec![
            Expr::rel("C", &["c", "n"]),
            Expr::rel("C", &["c2", "n2"]),
            Expr::eq(Expr::var("n"), Expr::var("n2")),
        ]));
        assert_eq!(q, expected);
    }

    #[test]
    fn parses_example_1_3() {
        let q = parse_expr("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)").unwrap();
        assert_eq!(crate::degree::degree(&q), 3);
        assert_eq!(q.relations().len(), 3);
    }

    #[test]
    fn precedence_and_associativity() {
        // a + b * c parses as a + (b * c)
        let e = parse_expr("x + y * z").unwrap();
        assert_eq!(
            e,
            Expr::add(Expr::var("x"), Expr::mul(Expr::var("y"), Expr::var("z")))
        );
        // Subtraction desugars to + (−·).
        let e2 = parse_expr("x - y").unwrap();
        assert_eq!(e2, Expr::add(Expr::var("x"), Expr::neg(Expr::var("y"))));
        // Parenthesized grouping.
        let e3 = parse_expr("(x + y) * z").unwrap();
        assert_eq!(
            e3,
            Expr::mul(Expr::add(Expr::var("x"), Expr::var("y")), Expr::var("z"))
        );
    }

    #[test]
    fn comparisons_and_assignments() {
        assert_eq!(
            parse_expr("(x < y)").unwrap(),
            Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::var("y"))
        );
        assert_eq!(
            parse_expr("(x >= 3)").unwrap(),
            Expr::cmp(CmpOp::Ge, Expr::var("x"), Expr::int(3))
        );
        assert_eq!(
            parse_expr("(x <> y)").unwrap(),
            Expr::cmp(CmpOp::Ne, Expr::var("x"), Expr::var("y"))
        );
        assert_eq!(
            parse_expr("(x != y)").unwrap(),
            Expr::cmp(CmpOp::Ne, Expr::var("x"), Expr::var("y"))
        );
        assert_eq!(
            parse_expr("(x := 3 + y)").unwrap(),
            Expr::assign("x", Expr::add(Expr::int(3), Expr::var("y")))
        );
        assert_eq!(
            parse_expr("(n = 'FR')").unwrap(),
            Expr::eq(Expr::var("n"), Expr::constant("FR"))
        );
    }

    #[test]
    fn literals_and_unary_minus() {
        assert_eq!(parse_expr("42").unwrap(), Expr::int(42));
        assert_eq!(parse_expr("2.5").unwrap(), Expr::constant(2.5));
        assert_eq!(parse_expr("-x").unwrap(), Expr::neg(Expr::var("x")));
        assert_eq!(
            parse_expr("- 3 * R(x)").unwrap(),
            Expr::mul(Expr::neg(Expr::int(3)), Expr::rel("R", &["x"]))
        );
        assert_eq!(parse_expr("'abc'").unwrap(), Expr::constant("abc"));
    }

    #[test]
    fn relation_atoms() {
        assert_eq!(parse_expr("R(x, y)").unwrap(), Expr::rel("R", &["x", "y"]));
        assert_eq!(
            parse_expr("R()").unwrap(),
            Expr::Rel("R".to_string(), vec![])
        );
        // `Sum` used as a relation name still works if not followed by a single argument
        // expression... it is treated as the aggregate, so use a different name.
        assert_eq!(parse_expr("Total(x)").unwrap(), Expr::rel("Total", &["x"]));
    }

    #[test]
    fn query_definitions() {
        let q = parse_query("per_nation[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        assert_eq!(q.name, "per_nation");
        assert_eq!(q.group_by, vec!["c"]);
        assert_eq!(crate::degree::degree(&q.expr), 2);
        let s = parse_query("total := Sum(R(x) * x)").unwrap();
        assert!(s.group_by.is_empty());
        let multi = parse_query("m[a, b] := Sum(R(a, b, v) * v)").unwrap();
        assert_eq!(multi.group_by, vec!["a", "b"]);
    }

    #[test]
    fn error_cases() {
        assert!(parse_expr("").is_err());
        assert!(parse_expr("R(x").is_err());
        assert!(parse_expr("x +").is_err());
        assert!(parse_expr("x ! y").is_err());
        assert!(parse_expr("'unterminated").is_err());
        assert!(parse_expr("x : 3").is_err());
        assert!(parse_expr("(3 := x)").is_err());
        assert!(parse_expr("x y").is_err()); // trailing input
        assert!(parse_query("q[ := R(x)").is_err());
        assert!(parse_query("q = R(x)").is_err());
        let err = parse_expr("x @ y").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn display_roundtrip() {
        // Display of a parsed expression parses back to the same AST.
        for text in [
            "Sum(C(c, n) * C(c2, n2) * (n = n2))",
            "(x := 3) * R(x, y)",
            "Sum(R(a, b) * (b = c) * a)",
            "(1 + R(x)) * -(S(y))",
        ] {
            let parsed = parse_expr(text).unwrap();
            let reparsed = parse_expr(&parsed.to_string()).unwrap();
            assert_eq!(parsed, reparsed, "roundtrip failed for {text}");
        }
    }
}
