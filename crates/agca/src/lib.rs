//! AGCA — the AGgregation CAlculus of *Incremental Query Evaluation in a Ring of
//! Databases* (Koch, PODS 2010), Sections 4 and 5.
//!
//! AGCA builds aggregate queries from an extremely small set of connectives over the ring
//! of generalized multiset relations:
//!
//! ```text
//! q ::=  q * q  |  q + q  |  -q  |  Sum(q)  |  c  |  x  |  R(x⃗)  |  q θ 0  |  x := q
//! ```
//!
//! The language behaves like a polynomial ring of relations: it has an additive inverse, a
//! normal form of polynomials (sums of monomials), and monomials factorize along variable
//! connectivity — the three properties that recursive delta processing (in `dbring-delta`
//! and `dbring-compiler`) builds on.
//!
//! Modules:
//!
//! * [`ast`] — expression and query types, constructors and traversals;
//! * [`parser`] — a hand-written lexer/recursive-descent parser for the AGCA text syntax;
//! * [`sql`] — a SQL-subset frontend (`SELECT … SUM(…) FROM … WHERE … GROUP BY …`)
//!   lowered to AGCA exactly as in Section 5 ("From SQL to the calculus");
//! * [`eval`](mod@eval) — the reference evaluator implementing the denotational semantics `[[·]]`
//!   of Section 4 over `Gmr<Number>`;
//! * [`safety`] — range restriction: the static check that variables are bound before use;
//! * [`normalize`] — the polynomial normal form (sums of monomials) of Section 5;
//! * [`factorize`] — monomial factorization along connected components of the variable
//!   hypergraph (Section 5, Example 1.3) and variable renaming/elimination helpers;
//! * [`degree`](mod@degree) — the polynomial degree of a query (Definition 6.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod degree;
pub mod eval;
pub mod factorize;
pub mod normalize;
pub mod optimize;
pub mod parser;
pub mod safety;
pub mod sql;

pub use ast::{CmpOp, Expr, Query};
pub use degree::degree;
pub use eval::{eval, eval_all_groups, eval_scalar, EvalError};
pub use normalize::{Monomial, Polynomial};
pub use optimize::optimize_for_evaluation;
pub use parser::{parse_expr, parse_query, ParseError};
pub use safety::{check_safety, SafetyError};
pub use sql::parse_sql;
