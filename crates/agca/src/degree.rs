//! The polynomial degree of an AGCA expression (Definition 6.3).
//!
//! The degree counts, per monomial, the number of relational atoms joined together; it is
//! the exponent in the `O(n^deg)` data complexity of non-incremental evaluation and the
//! quantity that strictly decreases under the delta transform (Theorem 6.4), which is what
//! makes recursive delta compilation terminate.

use crate::ast::Expr;

/// The degree `deg(q)` of an AGCA expression, per Definition 6.3:
///
/// * `deg(α * β) = deg(α) + deg(β)`
/// * `deg(α + β) = max(deg(α), deg(β))`
/// * `deg(−α) = deg(Sum(α)) = deg(α θ 0) = deg(α)`
/// * `deg(R(x⃗)) = 1`, and `deg(·) = 0` for constants, variables and assignments.
pub fn degree(expr: &Expr) -> usize {
    match expr {
        Expr::Mul(a, b) => degree(a) + degree(b),
        Expr::Add(a, b) => degree(a).max(degree(b)),
        Expr::Neg(a) | Expr::Sum(a) => degree(a),
        Expr::Cmp(_, a, b) => degree(a).max(degree(b)),
        Expr::Rel(_, _) => 1,
        Expr::Const(_) | Expr::Var(_) => 0,
        // `x := q` is treated like the condition `x = q` (Section 6); its degree is that
        // of the term.
        Expr::Assign(_, t) => degree(t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    #[test]
    fn base_cases() {
        assert_eq!(degree(&Expr::int(5)), 0);
        assert_eq!(degree(&Expr::var("x")), 0);
        assert_eq!(degree(&Expr::rel("R", &["x", "y"])), 1);
        assert_eq!(degree(&Expr::assign("x", Expr::int(1))), 0);
        assert_eq!(
            degree(&Expr::cmp(CmpOp::Lt, Expr::var("x"), Expr::int(0))),
            0
        );
    }

    #[test]
    fn products_add_and_sums_take_max() {
        let r = Expr::rel("R", &["x"]);
        let s = Expr::rel("S", &["y"]);
        assert_eq!(degree(&Expr::mul(r.clone(), s.clone())), 2);
        assert_eq!(
            degree(&Expr::add(r.clone(), Expr::mul(r.clone(), s.clone()))),
            2
        );
        assert_eq!(degree(&Expr::add(r.clone(), Expr::int(1))), 1);
        assert_eq!(degree(&Expr::neg(Expr::mul(r.clone(), s.clone()))), 2);
        assert_eq!(degree(&Expr::sum(Expr::mul(r, s))), 2);
    }

    #[test]
    fn example_6_2_degrees() {
        // q = Sum(C(c,n) * C(c',n)) has degree 2.
        let q = Expr::sum(Expr::mul(
            Expr::rel("C", &["c", "n"]),
            Expr::rel("C", &["c2", "n"]),
        ));
        assert_eq!(degree(&q), 2);
    }

    #[test]
    fn degree_of_example_1_3() {
        // Sum(R(a,b) * S(c,d) * T(e,f) * (b = c) * (d = e) * a * f) has degree 3.
        let q = Expr::sum(Expr::product(vec![
            Expr::rel("R", &["a", "b"]),
            Expr::rel("S", &["c", "d"]),
            Expr::rel("T", &["e", "f"]),
            Expr::eq(Expr::var("b"), Expr::var("c")),
            Expr::eq(Expr::var("d"), Expr::var("e")),
            Expr::var("a"),
            Expr::var("f"),
        ]));
        assert_eq!(degree(&q), 3);
    }

    #[test]
    fn conditions_with_nested_aggregates_inherit_the_inner_degree() {
        // deg(α θ 0) = deg(α): a nested aggregate with a relation has degree 1.
        let cond = Expr::cmp(CmpOp::Gt, Expr::sum(Expr::rel("R", &["x"])), Expr::int(10));
        assert_eq!(degree(&cond), 1);
    }
}
