//! Monomial factorization and variable elimination (Section 5, Example 1.3).
//!
//! A monomial factorizes into the connected components of its factor hypergraph: two
//! factors are connected when they share a variable that is *not* externally bound
//! (externally bound variables — group-by keys and trigger parameters — are fixed at
//! evaluation time and therefore do not create a dependency). Each component can be
//! aggregated independently and the component aggregates multiplied, because the SQL
//! aggregate sum distributes over multiplication; this is precisely how the delta of
//! Example 1.3 splits into `(∆Q)₁(c) ∗ (∆Q)₂(d)`, turning one quadratic-size view into two
//! linear-size ones.
//!
//! Variable elimination removes the variable-to-variable assignments (`x := y`) that the
//! delta transform introduces for relational atoms, by renaming `x` to `y` in the rest of
//! the monomial; the resulting expressions are smaller and their factorizations finer.

use std::collections::{BTreeMap, BTreeSet};

use dbring_relations::Value;

use crate::ast::Expr;

/// Partitions the factors of a monomial into connected components.
///
/// Two factors are connected when they share at least one variable outside `bound` (the
/// externally-bound variables: group-by keys and trigger parameters). The result contains
/// the factor *indices*, each component listing its factors in their original order —
/// preserving the left-to-right binding order within a component. Factors with no
/// connecting variables form singleton components.
pub fn connected_components(factors: &[Expr], bound: &BTreeSet<String>) -> Vec<Vec<usize>> {
    let n = factors.len();
    // Union-find over factor indices.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, i: usize) -> usize {
        if parent[i] != i {
            let root = find(parent, parent[i]);
            parent[i] = root;
        }
        parent[i]
    }
    // Map each connecting variable to the first factor that mentions it.
    let mut var_owner: BTreeMap<String, usize> = BTreeMap::new();
    for (i, factor) in factors.iter().enumerate() {
        for var in factor.variables() {
            if bound.contains(&var) {
                continue;
            }
            match var_owner.get(&var) {
                Some(&j) => {
                    let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                    if ri != rj {
                        parent[ri] = rj;
                    }
                }
                None => {
                    var_owner.insert(var, i);
                }
            }
        }
    }
    // Group indices by root, preserving order of first appearance and order within groups.
    let mut components: Vec<Vec<usize>> = Vec::new();
    let mut root_to_component: BTreeMap<usize, usize> = BTreeMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        match root_to_component.get(&root) {
            Some(&c) => components[c].push(i),
            None => {
                root_to_component.insert(root, components.len());
                components.push(vec![i]);
            }
        }
    }
    components
}

/// Like [`connected_components`], but returns the factors themselves.
pub fn factor_groups(factors: &[Expr], bound: &BTreeSet<String>) -> Vec<Vec<Expr>> {
    connected_components(factors, bound)
        .into_iter()
        .map(|idxs| idxs.into_iter().map(|i| factors[i].clone()).collect())
        .collect()
}

/// Eliminates variable-to-variable assignments `x := y` from a monomial by renaming `x`
/// to `y` in every other factor and dropping the assignment.
///
/// Returns the remaining factors and the renaming that was applied (so callers can rewrite
/// group-by keys or statement target keys accordingly). Assignments to constants or to
/// complex terms are left in place.
pub fn eliminate_assignments(
    factors: &[Expr],
    protect: &BTreeSet<String>,
) -> (Vec<Expr>, BTreeMap<String, String>) {
    let mut remaining: Vec<Expr> = factors.to_vec();
    let mut renaming: BTreeMap<String, String> = BTreeMap::new();
    loop {
        // Find the next eliminable assignment x := y where x is not protected, or where the
        // target is another plain variable we may redirect keys to.
        let position = remaining.iter().position(|f| {
            matches!(f, Expr::Assign(x, t)
                if matches!(**t, Expr::Var(_)) && !protect.contains(x))
        });
        let Some(idx) = position else { break };
        let Expr::Assign(x, t) = remaining.remove(idx) else {
            unreachable!()
        };
        let Expr::Var(y) = *t else { unreachable!() };
        // Apply x -> y to every remaining factor.
        remaining = remaining
            .iter()
            .map(|f| f.rename_variable(&x, &y))
            .collect();
        // Compose with the renaming accumulated so far (earlier targets may themselves be
        // renamed later).
        for target in renaming.values_mut() {
            if *target == x {
                *target = y.clone();
            }
        }
        renaming.insert(x, y);
    }
    (remaining, renaming)
}

/// Eliminates equality conditions between two variables (`x = y`) from a monomial by
/// renaming one side to the other and dropping the condition — the "variable elimination"
/// of Section 5 applied to equalities rather than assignments.
///
/// A variable in `protect` (typically the trigger parameters, whose values are given from
/// the outside) is never renamed away; if both sides are protected the condition is kept
/// as a runtime guard. Returns the remaining factors and the applied renaming.
pub fn eliminate_equalities(
    factors: &[Expr],
    protect: &BTreeSet<String>,
) -> (Vec<Expr>, BTreeMap<String, String>) {
    // An equality between two arguments of the *same* relational atom must stay a
    // condition: renaming would produce a repeated-variable atom, which AGCA's semantics
    // defines to be empty (the `|dom(x⃗)| = |sch(R)|` side condition).
    let same_atom_pair = |factors: &[Expr], x: &str, y: &str| {
        factors.iter().any(|f| {
            matches!(f, Expr::Rel(_, vars)
                if vars.iter().any(|v| v == x) && vars.iter().any(|v| v == y))
        })
    };
    let mut remaining: Vec<Expr> = factors.to_vec();
    let mut renaming: BTreeMap<String, String> = BTreeMap::new();
    let mut skipped: Vec<Expr> = Vec::new();
    loop {
        let position = remaining.iter().position(|f| {
            matches!(f, Expr::Cmp(crate::ast::CmpOp::Eq, a, b)
                if matches!((&**a, &**b), (Expr::Var(x), Expr::Var(y))
                    if x != y && (!protect.contains(x) || !protect.contains(y))))
        });
        let Some(idx) = position else { break };
        let Expr::Cmp(_, a, b) = remaining.remove(idx) else {
            unreachable!()
        };
        let (Expr::Var(x), Expr::Var(y)) = (*a, *b) else {
            unreachable!()
        };
        if same_atom_pair(&remaining, &x, &y) {
            skipped.push(Expr::eq(Expr::Var(x), Expr::Var(y)));
            continue;
        }
        // Rename the unprotected side to the other one.
        let (from, to) = if protect.contains(&x) { (y, x) } else { (x, y) };
        remaining = remaining
            .iter()
            .map(|f| f.rename_variable(&from, &to))
            .collect();
        for target in renaming.values_mut() {
            if *target == from {
                *target = to.clone();
            }
        }
        // Skipped same-atom equalities may mention the renamed variable too.
        skipped = skipped
            .iter()
            .map(|f| f.rename_variable(&from, &to))
            .collect();
        renaming.insert(from, to);
    }
    remaining.extend(skipped);
    (remaining, renaming)
}

/// Replaces every occurrence of `var` *as a value term* (`Expr::Var`) and inside
/// comparison/assignment operands with the constant `value`. Occurrences as relational-atom
/// arguments are left untouched (atom arguments must stay variables); callers that need to
/// bind an atom argument to a constant keep the assignment factor instead.
pub fn substitute_value(expr: &Expr, var: &str, value: &Value) -> Expr {
    match expr {
        Expr::Var(x) if x == var => Expr::Const(value.clone()),
        Expr::Var(_) | Expr::Const(_) | Expr::Rel(_, _) => expr.clone(),
        Expr::Add(a, b) => Expr::add(
            substitute_value(a, var, value),
            substitute_value(b, var, value),
        ),
        Expr::Mul(a, b) => Expr::mul(
            substitute_value(a, var, value),
            substitute_value(b, var, value),
        ),
        Expr::Neg(a) => Expr::neg(substitute_value(a, var, value)),
        Expr::Sum(a) => Expr::sum(substitute_value(a, var, value)),
        Expr::Cmp(op, a, b) => Expr::cmp(
            *op,
            substitute_value(a, var, value),
            substitute_value(b, var, value),
        ),
        Expr::Assign(x, t) => Expr::Assign(x.clone(), Box::new(substitute_value(t, var, value))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    fn bound(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn example_1_3_delta_factorizes_into_two_components() {
        // ∆Q(±S(c, d)) = ± Sum over:  R(a, b) * (b = c) * a   and   T(e, f) * (d = e) * f
        // with c, d the update parameters (externally bound).
        let factors = vec![
            Expr::rel("R", &["a", "b"]),
            Expr::eq(Expr::var("b"), Expr::var("c")),
            Expr::var("a"),
            Expr::rel("T", &["e", "f"]),
            Expr::eq(Expr::var("d"), Expr::var("e")),
            Expr::var("f"),
        ];
        let comps = connected_components(&factors, &bound(&["c", "d"]));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]); // the R-side: shares a, b
        assert_eq!(comps[1], vec![3, 4, 5]); // the T-side: shares e, f
                                             // Without treating c, d as bound the two sides are still independent (they share
                                             // no variable at all), so the factorization is the same.
        let comps2 = connected_components(&factors, &bound(&[]));
        assert_eq!(comps2.len(), 2);
    }

    #[test]
    fn shared_free_variables_merge_components() {
        // R(x, y) and S(y, z) share y → one component; T(w) is independent.
        let factors = vec![
            Expr::rel("R", &["x", "y"]),
            Expr::rel("S", &["y", "z"]),
            Expr::rel("T", &["w"]),
        ];
        let comps = connected_components(&factors, &bound(&[]));
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1]);
        assert_eq!(comps[1], vec![2]);
        // If y is externally bound, R and S decouple.
        let comps_bound = connected_components(&factors, &bound(&["y"]));
        assert_eq!(comps_bound.len(), 3);
    }

    #[test]
    fn conditions_glue_their_atoms_together() {
        let factors = vec![
            Expr::rel("R", &["x"]),
            Expr::rel("S", &["y"]),
            Expr::eq(Expr::var("x"), Expr::var("y")),
        ];
        let comps = connected_components(&factors, &bound(&[]));
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0], vec![0, 1, 2]);
    }

    #[test]
    fn factor_groups_returns_expressions_in_order() {
        let factors = vec![
            Expr::rel("R", &["x"]),
            Expr::rel("S", &["y"]),
            Expr::var("x"),
        ];
        let groups = factor_groups(&factors, &bound(&[]));
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], vec![Expr::rel("R", &["x"]), Expr::var("x")]);
        assert_eq!(groups[1], vec![Expr::rel("S", &["y"])]);
    }

    #[test]
    fn empty_and_constant_monomials() {
        assert!(connected_components(&[], &bound(&[])).is_empty());
        // A variable-free condition forms its own component.
        let factors = vec![
            Expr::cmp(CmpOp::Lt, Expr::int(1), Expr::int(2)),
            Expr::rel("R", &["x"]),
        ];
        let comps = connected_components(&factors, &bound(&[]));
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn assignment_elimination_renames_and_drops() {
        // (x := c1) * (y := n1) * C(z, y): eliminate both assignments (nothing protected).
        let factors = vec![
            Expr::assign("x", Expr::var("c1")),
            Expr::assign("y", Expr::var("n1")),
            Expr::rel("C", &["z", "y"]),
            Expr::eq(Expr::var("x"), Expr::var("z")),
        ];
        let (remaining, renaming) = eliminate_assignments(&factors, &bound(&[]));
        assert_eq!(remaining.len(), 2);
        assert_eq!(remaining[0], Expr::rel("C", &["z", "n1"]));
        assert_eq!(remaining[1], Expr::eq(Expr::var("c1"), Expr::var("z")));
        assert_eq!(renaming.get("x"), Some(&"c1".to_string()));
        assert_eq!(renaming.get("y"), Some(&"n1".to_string()));
    }

    #[test]
    fn protected_variables_keep_their_assignments() {
        let factors = vec![
            Expr::assign("c", Expr::var("c1")),
            Expr::rel("C", &["c2", "n"]),
        ];
        let (remaining, renaming) = eliminate_assignments(&factors, &bound(&["c"]));
        assert_eq!(remaining.len(), 2);
        assert!(renaming.is_empty());
        assert!(matches!(remaining[0], Expr::Assign(_, _)));
    }

    #[test]
    fn constant_assignments_are_not_eliminated() {
        let factors = vec![Expr::assign("x", Expr::int(3)), Expr::rel("R", &["x"])];
        let (remaining, renaming) = eliminate_assignments(&factors, &bound(&[]));
        assert_eq!(remaining.len(), 2);
        assert!(renaming.is_empty());
    }

    #[test]
    fn chained_assignments_compose() {
        // (x := y) * (z := x): after eliminating both, z maps to y.
        let factors = vec![
            Expr::assign("x", Expr::var("y")),
            Expr::assign("z", Expr::var("x")),
            Expr::var("z"),
        ];
        let (remaining, renaming) = eliminate_assignments(&factors, &bound(&[]));
        assert_eq!(remaining, vec![Expr::var("y")]);
        assert_eq!(renaming.get("z"), Some(&"y".to_string()));
        assert_eq!(renaming.get("x"), Some(&"y".to_string()));
    }

    #[test]
    fn value_substitution_touches_terms_but_not_atom_arguments() {
        let e = Expr::mul(
            Expr::rel("R", &["x", "y"]),
            Expr::mul(
                Expr::cmp(CmpOp::Gt, Expr::var("x"), Expr::var("y")),
                Expr::var("x"),
            ),
        );
        let sub = substitute_value(&e, "x", &Value::int(7));
        // The atom still uses the variable name x; the comparison and the value term use 7.
        assert!(sub.to_string().contains("R(x, y)"));
        assert!(sub.to_string().contains("(7 > y)"));
        assert!(sub.to_string().ends_with("* 7"));
    }
}
