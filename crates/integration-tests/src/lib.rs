//! Shared helpers for the cross-crate integration tests (and for the benchmark harness's
//! correctness self-checks): run a workload under every maintenance strategy and assert
//! that they agree.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

use dbring::{
    ClassicalIvm, Executor, IncrementalView, MaintenanceStrategy, NaiveReeval, Number, Value,
};
use dbring_workloads::Workload;

/// The result tables of every strategy after consuming the workload, in a fixed order:
/// `[recursive-ivm, classical-ivm, naive]`.
pub fn run_all_strategies(workload: &Workload) -> Vec<(String, BTreeMap<Vec<Value>, Number>)> {
    let initial_db = workload.initial_database();

    let mut recursive = IncrementalView::new(&workload.catalog, workload.query.clone())
        .expect("workload query compiles")
        .with_initial_database(&initial_db)
        .expect("initialization succeeds");
    let mut classical = ClassicalIvm::new(initial_db.clone(), workload.query.clone())
        .expect("classical baseline initializes");
    let mut naive =
        NaiveReeval::new(initial_db, workload.query.clone()).expect("naive baseline initializes");

    for update in &workload.stream {
        recursive
            .apply(update)
            .expect("recursive IVM applies update");
        classical
            .apply_update(update)
            .expect("classical IVM applies update");
        naive.apply_update(update).expect("naive applies update");
    }

    vec![
        ("recursive-ivm".to_string(), recursive.table()),
        ("classical-ivm".to_string(), classical.current_result()),
        ("naive".to_string(), naive.current_result()),
    ]
}

/// Compares two result tables: integer aggregates must match exactly, floating-point
/// aggregates up to a relative tolerance (the strategies sum in different orders, so the
/// usual IEEE rounding differences are expected and not a bug).
pub fn tables_match(
    a: &BTreeMap<Vec<Value>, Number>,
    b: &BTreeMap<Vec<Value>, Number>,
) -> Result<(), String> {
    let keys: std::collections::BTreeSet<&Vec<Value>> = a.keys().chain(b.keys()).collect();
    for key in keys {
        let x = a.get(key).copied().unwrap_or(Number::Int(0));
        let y = b.get(key).copied().unwrap_or(Number::Int(0));
        let equal = match (x, y) {
            (Number::Int(i), Number::Int(j)) => i == j,
            _ => {
                let (xf, yf) = (x.as_f64(), y.as_f64());
                (xf - yf).abs() <= 1e-6 * xf.abs().max(yf.abs()).max(1.0)
            }
        };
        if !equal {
            return Err(format!("mismatch at key {key:?}: {x} vs {y}"));
        }
    }
    Ok(())
}

/// Panics with context unless the two tables match (see [`tables_match`]).
pub fn assert_tables_match(
    a: &BTreeMap<Vec<Value>, Number>,
    b: &BTreeMap<Vec<Value>, Number>,
    context: &str,
) {
    if let Err(message) = tables_match(a, b) {
        panic!("{context}: {message}");
    }
}

/// Asserts that every strategy produced the same result table for the workload.
pub fn assert_strategies_agree(workload: &Workload) {
    let results = run_all_strategies(workload);
    let (reference_name, reference) = &results[0];
    for (name, table) in &results[1..] {
        assert_tables_match(
            table,
            reference,
            &format!(
                "strategy {name} disagrees with {reference_name} on workload {}",
                workload.name
            ),
        );
    }
}

/// Streams a workload through a fresh executor (no initial database) and returns it,
/// checking against naive re-evaluation every `check_every` updates.
pub fn stream_with_oracle(workload: &Workload, check_every: usize) -> Executor {
    let program =
        dbring::compile(&workload.catalog, &workload.query).expect("workload query compiles");
    let mut exec = Executor::new(program);
    let mut oracle = NaiveReeval::new(workload.catalog.clone(), workload.query.clone())
        .expect("oracle initializes");
    for (i, update) in workload
        .initial
        .iter()
        .chain(workload.stream.iter())
        .enumerate()
    {
        exec.apply(update).expect("executor applies update");
        oracle.apply_update(update).expect("oracle applies update");
        if check_every > 0 && (i + 1) % check_every == 0 {
            assert_tables_match(
                &exec.output_table(),
                &oracle.current_result(),
                &format!(
                    "divergence after {} updates of workload {}",
                    i + 1,
                    workload.name
                ),
            );
        }
    }
    assert_tables_match(
        &exec.output_table(),
        &oracle.current_result(),
        &format!("final divergence on workload {}", workload.name),
    );
    exec
}
