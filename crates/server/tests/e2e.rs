//! End-to-end tests for the serving front end: a real `Server` on an ephemeral TCP
//! port, scripted clients, snapshot-read semantics, tenant isolation, and shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

use dbring::StorageBackend;
use dbring_server::{Server, ServerConfig};

/// A tiny line-protocol client over a real TCP connection.
struct Client {
    reader: BufReader<TcpStream>,
    out: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            out: stream,
        }
    }

    /// Sends one request and reads a single reply line.
    fn send(&mut self, line: &str) -> String {
        writeln!(self.out, "{line}").expect("send");
        self.out.flush().expect("flush");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("reply");
        reply.trim_end().to_string()
    }

    /// Sends one request and reads reply lines until the `END` terminator.
    fn send_multi(&mut self, line: &str) -> Vec<String> {
        writeln!(self.out, "{line}").expect("send");
        self.out.flush().expect("flush");
        let mut lines = Vec::new();
        loop {
            let mut reply = String::new();
            self.reader.read_line(&mut reply).expect("reply");
            let reply = reply.trim_end().to_string();
            let done = reply.starts_with("END") || reply.starts_with("ERR");
            lines.push(reply);
            if done {
                return lines;
            }
        }
    }
}

fn start(config: ServerConfig) -> (SocketAddr, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(("127.0.0.1", 0), config).expect("bind");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shutdown(addr: SocketAddr, handle: std::thread::JoinHandle<std::io::Result<()>>) {
    let mut client = Client::connect(addr);
    assert_eq!(client.send("SHUTDOWN"), "OK shutting down");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn declare_view_ingest_read_roundtrip() {
    let (addr, handle) = start(ServerConfig::default());
    let mut c = Client::connect(addr);

    assert_eq!(c.send("PING"), "OK pong");
    assert_eq!(
        c.send("DECLARE t1 Sales cust price qty"),
        "OK declared Sales"
    );
    assert_eq!(
        c.send("VIEW t1 revenue SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust"),
        "OK created revenue as view#0"
    );
    assert_eq!(c.send("INSERT t1 Sales 1 10 2"), "OK queued");
    assert_eq!(c.send("INSERT t1 Sales 2 3 3"), "OK queued");
    assert_eq!(c.send("FLUSH t1"), "OK ingested=2");
    assert_eq!(c.send("GET t1 revenue 1"), "VALUE 20");
    assert_eq!(c.send("GET t1 revenue 2"), "VALUE 9");
    // Absent group keys read as the ring zero, not an error.
    assert_eq!(c.send("GET t1 revenue 42"), "VALUE 0");

    let table = c.send_multi("TABLE t1 revenue");
    assert_eq!(table.len(), 3);
    assert_eq!(table[0], "ROW 1 20");
    assert_eq!(table[1], "ROW 2 9");
    assert!(
        table[2].starts_with("END rows=2 ingested=2 epoch="),
        "unexpected terminator: {}",
        table[2]
    );

    drop(c);
    shutdown(addr, handle);
}

#[test]
fn tenants_are_isolated_rings() {
    let (addr, handle) = start(ServerConfig::default());
    let mut c = Client::connect(addr);

    for tenant in ["alpha", "beta"] {
        assert_eq!(c.send(&format!("DECLARE {tenant} R x")), "OK declared R");
        assert_eq!(
            c.send(&format!(
                "VIEW {tenant} total SELECT SUM(x) AS total FROM R"
            )),
            "OK created total as view#0"
        );
    }
    assert_eq!(c.send("INSERT alpha R 5"), "OK queued");
    assert_eq!(c.send("FLUSH alpha"), "OK ingested=1");
    // beta's ring is untouched by alpha's ingest.
    assert_eq!(c.send("GET alpha total"), "VALUE 5");
    assert_eq!(c.send("GET beta total"), "VALUE 0");
    assert_eq!(c.send("FLUSH beta"), "OK ingested=0");

    drop(c);
    shutdown(addr, handle);
}

#[test]
fn reads_come_from_published_snapshots() {
    // batch_max 1000 ≫ the test's updates: nothing commits until the queue drains
    // or an explicit FLUSH, so this exercises the quiescent-point publication.
    let config = ServerConfig {
        backend: StorageBackend::Ordered,
        batch_max: 1000,
    };
    let (addr, handle) = start(config);
    let mut c = Client::connect(addr);

    c.send("DECLARE t R k v");
    c.send("VIEW t by_k SELECT k, SUM(v) AS s FROM R GROUP BY k");
    for i in 0..50 {
        assert_eq!(c.send(&format!("INSERT t R {} 1", i % 5)), "OK queued");
    }
    assert_eq!(c.send("FLUSH t"), "OK ingested=50");
    for k in 0..5 {
        assert_eq!(c.send(&format!("GET t by_k {k}")), "VALUE 10");
    }
    // SCAN narrows to the keys matching the given prefix.
    let scan = c.send_multi("SCAN t by_k 3");
    assert_eq!(scan.len(), 2);
    assert_eq!(scan[0], "ROW 3 10");
    assert!(
        scan[1].starts_with("END rows=1 ingested=50 epoch="),
        "unexpected terminator: {}",
        scan[1]
    );

    drop(c);
    shutdown(addr, handle);
}

#[test]
fn errors_are_per_request_and_recoverable() {
    let (addr, handle) = start(ServerConfig::default());
    let mut c = Client::connect(addr);

    assert_eq!(c.send("GET ghost v 1"), "ERR unknown tenant ghost");
    assert_eq!(
        c.send("DECLARE t Sales cust price qty"),
        "OK declared Sales"
    );
    assert_eq!(
        c.send("VIEW t rev SELECT cust, SUM(price) AS r FROM Sales GROUP BY cust"),
        "OK created rev as view#0"
    );
    // The catalog is frozen once the ring is built.
    assert_eq!(
        c.send("DECLARE t Late x"),
        "ERR relations must be declared before the first view or update"
    );
    assert_eq!(c.send("INSERT t Nope 1"), "ERR unknown relation Nope");
    assert_eq!(
        c.send("INSERT t Sales 1 2"),
        "ERR Sales expects 3 values, got 2"
    );
    assert_eq!(c.send("GET t nope 1"), "ERR no live view nope on this ring");
    assert_eq!(c.send("BOGUS"), "ERR unknown command BOGUS");
    // The tenant still works after every error above.
    assert_eq!(c.send("INSERT t Sales 1 2 3"), "OK queued");
    assert_eq!(c.send("FLUSH t"), "OK ingested=1");
    assert_eq!(c.send("GET t rev 1"), "VALUE 2");

    drop(c);
    shutdown(addr, handle);
}

#[test]
fn drop_view_releases_and_later_reads_error() {
    let (addr, handle) = start(ServerConfig::default());
    let mut c = Client::connect(addr);

    c.send("DECLARE t R x");
    c.send("VIEW t total SELECT SUM(x) AS total FROM R");
    c.send("INSERT t R 7");
    assert_eq!(c.send("FLUSH t"), "OK ingested=1");
    assert_eq!(c.send("GET t total"), "VALUE 7");
    assert_eq!(c.send("DROP t total"), "OK dropped total");
    assert_eq!(c.send("GET t total"), "ERR no live view total on this ring");

    drop(c);
    shutdown(addr, handle);
}

#[test]
fn concurrent_clients_share_a_tenant() {
    let (addr, handle) = start(ServerConfig::default());
    let mut admin = Client::connect(addr);
    admin.send("DECLARE t R k v");
    admin.send("VIEW t by_k SELECT k, SUM(v) AS s FROM R GROUP BY k");

    // Four writer connections race into the same tenant's ingest queue.
    let writers: Vec<_> = (0..4)
        .map(|w| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                for _ in 0..25 {
                    assert_eq!(c.send(&format!("INSERT t R {w} 1")), "OK queued");
                }
            })
        })
        .collect();
    for w in writers {
        w.join().expect("writer");
    }
    assert_eq!(admin.send("FLUSH t"), "OK ingested=100");
    for k in 0..4 {
        assert_eq!(admin.send(&format!("GET t by_k {k}")), "VALUE 25");
    }

    drop(admin);
    shutdown(addr, handle);
}
