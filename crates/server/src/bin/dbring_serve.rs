//! `dbring-serve`: the line-protocol serving front end as a standalone binary.
//!
//! ```text
//! dbring-serve [--port N] [--backend hash|ordered] [--batch N] [--self-test]
//! ```
//!
//! Binds 127.0.0.1 (port 0 lets the OS pick), prints `LISTENING <port>` once ready,
//! then serves until a client sends `SHUTDOWN`. With `--self-test` it instead spawns
//! the server on an ephemeral port, runs a scripted client session against it over
//! TCP, and exits non-zero on any unexpected reply — the CI smoke test.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

use dbring::StorageBackend;
use dbring_server::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut config = ServerConfig::default();
    let mut port: u16 = 0;
    let mut self_test = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => match args.next().and_then(|v| v.parse().ok()) {
                Some(p) => port = p,
                None => return usage("--port needs a number"),
            },
            "--batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.batch_max = n,
                None => return usage("--batch needs a number"),
            },
            "--backend" => match args.next().as_deref() {
                Some("hash") => config.backend = StorageBackend::Hash,
                Some("ordered") => config.backend = StorageBackend::Ordered,
                _ => return usage("--backend is hash or ordered"),
            },
            "--self-test" => self_test = true,
            other => return usage(&format!("unknown argument {other}")),
        }
    }

    if self_test {
        return match run_self_test(config) {
            Ok(()) => {
                println!("self-test PASS");
                ExitCode::SUCCESS
            }
            Err(message) => {
                eprintln!("self-test FAIL: {message}");
                ExitCode::FAILURE
            }
        };
    }

    let server = match Server::bind(("127.0.0.1", port), config) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("bind failed: {error}");
            return ExitCode::FAILURE;
        }
    };
    println!("LISTENING {}", server.local_addr().port());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("server error: {error}");
            ExitCode::FAILURE
        }
    }
}

fn usage(message: &str) -> ExitCode {
    eprintln!("{message}");
    eprintln!("usage: dbring-serve [--port N] [--backend hash|ordered] [--batch N] [--self-test]");
    ExitCode::FAILURE
}

/// One scripted client connection: line out, reply line back.
struct Session {
    reader: BufReader<TcpStream>,
    out: TcpStream,
}

impl Session {
    fn connect(addr: std::net::SocketAddr) -> Result<Session, String> {
        let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
        Ok(Session {
            reader: BufReader::new(stream.try_clone().map_err(|e| e.to_string())?),
            out: stream,
        })
    }

    fn send(&mut self, line: &str) -> Result<String, String> {
        writeln!(self.out, "{line}").map_err(|e| e.to_string())?;
        self.out.flush().map_err(|e| e.to_string())?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| e.to_string())?;
        Ok(reply.trim_end().to_string())
    }

    fn expect(&mut self, line: &str, want: &str) -> Result<(), String> {
        let got = self.send(line)?;
        if got == want {
            Ok(())
        } else {
            Err(format!("{line:?}: expected {want:?}, got {got:?}"))
        }
    }
}

/// A scripted end-to-end session: declare a schema, create a view, ingest, flush,
/// and read back through snapshots — all over real TCP.
fn run_self_test(config: ServerConfig) -> Result<(), String> {
    let server = Server::bind(("127.0.0.1", 0), config).map_err(|e| e.to_string())?;
    let addr = server.local_addr();
    let worker = std::thread::spawn(move || server.run());

    let mut s = Session::connect(addr)?;

    s.expect("PING", "OK pong")?;
    s.expect("DECLARE acme Sales cust price qty", "OK declared Sales")?;
    s.expect(
        "VIEW acme revenue SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
        "OK created revenue as view#0",
    )?;
    s.expect("INSERT acme Sales 1 10 2", "OK queued")?;
    s.expect("INSERT acme Sales 1 5 4", "OK queued")?;
    s.expect("INSERT acme Sales 2 7 1", "OK queued")?;
    s.expect("FLUSH acme", "OK ingested=3")?;
    s.expect("GET acme revenue 1", "VALUE 40")?;
    s.expect("GET acme revenue 2", "VALUE 7")?;
    s.expect("GET acme revenue 99", "VALUE 0")?;
    s.expect("DELETE acme Sales 2 7 1", "OK queued")?;
    s.expect("FLUSH acme", "OK ingested=4")?;
    s.expect("GET acme revenue 2", "VALUE 0")?;
    // Errors are per-request, never fatal.
    s.expect("INSERT acme Nope 1", "ERR unknown relation Nope")?;
    s.expect("INSERT acme Sales 1", "ERR Sales expects 3 values, got 1")?;
    s.expect(
        "GET acme missing 1",
        "ERR no live view missing on this ring",
    )?;
    s.expect("GET ghost revenue 1", "ERR unknown tenant ghost")?;

    let stats = s.send("STATS acme")?;
    if !stats.starts_with("OK views=1 ingested=4") {
        return Err(format!("unexpected STATS reply {stats:?}"));
    }

    s.expect("SHUTDOWN", "OK shutting down")?;
    worker
        .join()
        .map_err(|_| "server thread panicked".to_string())?
        .map_err(|e| e.to_string())
}
