//! A small threaded serving front end over [`dbring`]: tenants map to independent
//! [`Ring`] shards, writes flow through a per-tenant ingest thread, and reads are
//! answered from lock-free [`ViewSnapshot`](dbring::ViewSnapshot) handles without ever
//! touching the writer.
//!
//! ## Architecture
//!
//! ```text
//!   TCP connections (one handler thread each)
//!        │ writes: DECLARE / VIEW / INSERT / DELETE / FLUSH   (mpsc round-trip)
//!        ▼
//!   per-tenant ingest thread ── owns the &mut Ring, batches updates between
//!        │                      quiescent points, publishes snapshots on commit
//!        │ reads: GET / TABLE / SCAN                    (no ingest round-trip)
//!        ▼
//!   RingHandle ── Arc-shared snapshot store; O(1) acquire, lock-free reads
//! ```
//!
//! Each tenant's ingest thread owns its [`Ring`] exclusively (the `RingHandle` split:
//! writers never wait for readers, readers never block the writer). Updates accumulate
//! into a batch and are committed when the request queue drains — a **quiescent point**
//! — or when the batch reaches [`ServerConfig::batch_max`], or on an explicit `FLUSH`.
//! Snapshot publication happens inside the ring at exactly those commit points, so a
//! reader always observes a batch-consistent prefix of the tenant's update stream.
//!
//! ## Protocol
//!
//! Line-delimited text, one request per line, whitespace-separated tokens. Values
//! parse as integer, then float, then (optionally double-quoted) string. Responses are
//! one or more lines; every response ends with a line starting `OK`, `ERR`, `VALUE`,
//! or `END`.
//!
//! | Request | Reply |
//! |---|---|
//! | `PING` | `OK pong` |
//! | `DECLARE <tenant> <relation> <col>...` | `OK declared <relation>` |
//! | `VIEW <tenant> <name> <sql>...` | `OK created <name> ...` |
//! | `DROP <tenant> <view>` | `OK dropped <view>` |
//! | `INSERT <tenant> <relation> <val>...` | `OK queued` |
//! | `DELETE <tenant> <relation> <val>...` | `OK queued` |
//! | `FLUSH <tenant>` | `OK ingested=<n>` |
//! | `GET <tenant> <view> <key>...` | `VALUE <number>` |
//! | `TABLE <tenant> <view>` | `ROW <key>... <number>` lines, then `END ...` |
//! | `SCAN <tenant> <view> <prefix>...` | `ROW` lines, then `END ...` |
//! | `STATS <tenant>` | `OK <key=value>...` |
//! | `QUIT` | `OK bye` (closes the connection) |
//! | `SHUTDOWN` | `OK shutting down` (stops the whole server) |
//!
//! Relations must be declared before the tenant's first view or update (a ring's
//! catalog is fixed when the ring is built). `INSERT`/`DELETE` validate the relation
//! name and arity synchronously but apply asynchronously; `GET` after `FLUSH` is
//! guaranteed to observe the flushed rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use dbring::{
    Catalog, Number, Ring, RingBuilder, RingHandle, StorageBackend, Update, Value, ViewDef,
};

/// Server-wide configuration: the storage backend new tenant rings are built on and
/// the batch size that forces a commit even without a quiescent point.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Storage backend for every tenant ring ([`StorageBackend::Hash`] by default).
    pub backend: StorageBackend,
    /// Commit the pending batch once it holds this many updates, even if more
    /// requests are queued (bounds snapshot staleness under sustained ingest).
    pub batch_max: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            backend: StorageBackend::Hash,
            batch_max: 256,
        }
    }
}

/// A request routed to a tenant's ingest thread, paired with a reply channel.
struct Request {
    command: Command,
    reply: Sender<Result<String, String>>,
}

/// Commands the ingest thread executes while holding the tenant's `&mut Ring`.
enum Command {
    Declare {
        relation: String,
        columns: Vec<String>,
    },
    CreateView {
        name: String,
        sql: String,
    },
    DropView {
        name: String,
    },
    Ingest {
        update: Update,
    },
    Flush,
    Stats,
    Stop,
}

/// State shared between a tenant's ingest thread and connection handlers.
struct TenantShared {
    /// Set exactly once, when the tenant transitions from schema-building to serving
    /// (its ring is built). Read paths clone the handle out and never lock again.
    reader: Mutex<Option<RingHandle>>,
}

struct Tenant {
    requests: Sender<Request>,
    shared: Arc<TenantShared>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

/// The tenant's ring, or the catalog still being declared before the first view.
/// The ring is boxed: `Core` lives on the ingest thread's stack frame and a `Ring`
/// is a large value to move through enum reassignment.
enum Core {
    Building(Catalog),
    Serving(Box<Ring>),
}

struct ServerState {
    config: ServerConfig,
    addr: SocketAddr,
    tenants: Mutex<HashMap<String, Arc<Tenant>>>,
    shutdown: AtomicBool,
}

/// A serving front end bound to a TCP address. [`Server::run`] accepts connections
/// until a client issues `SHUTDOWN`.
pub struct Server {
    listener: TcpListener,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds to `addr` (use port 0 to let the OS pick) with the given configuration.
    pub fn bind(addr: impl ToSocketAddrs, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(ServerState {
            config,
            addr: listener.local_addr()?,
            tenants: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
        });
        Ok(Server { listener, state })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Accepts and serves connections until `SHUTDOWN`; each connection gets its own
    /// handler thread. Returns once every tenant ingest thread has drained and exited.
    pub fn run(self) -> io::Result<()> {
        let mut handlers = Vec::new();
        for stream in self.listener.incoming() {
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let state = Arc::clone(&self.state);
            handlers.push(std::thread::spawn(move || {
                // Connection errors (client hangs up mid-line) only affect that client.
                let _ = handle_connection(&state, stream);
            }));
        }
        for handle in handlers {
            let _ = handle.join();
        }
        // Stop every tenant worker and wait for its final flush.
        let tenants: Vec<Arc<Tenant>> = self
            .state
            .tenants
            .lock()
            .unwrap()
            .drain()
            .map(|(_, t)| t)
            .collect();
        for tenant in tenants {
            let _ = roundtrip(&tenant, Command::Stop);
            if let Some(worker) = tenant.worker.lock().unwrap().take() {
                let _ = worker.join();
            }
        }
        Ok(())
    }
}

/// Sends one command to the tenant's ingest thread and waits for the reply.
fn roundtrip(tenant: &Tenant, command: Command) -> Result<String, String> {
    let (reply, rx) = mpsc::channel();
    tenant
        .requests
        .send(Request { command, reply })
        .map_err(|_| "tenant worker stopped".to_string())?;
    rx.recv().map_err(|_| "tenant worker stopped".to_string())?
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) -> io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (lines, close) = dispatch(state, trimmed);
        for reply_line in &lines {
            writeln!(out, "{reply_line}")?;
        }
        out.flush()?;
        if close {
            break;
        }
    }
    Ok(())
}

/// Parses one request line and produces the response lines plus a close-connection
/// flag.
fn dispatch(state: &Arc<ServerState>, line: &str) -> (Vec<String>, bool) {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let verb = tokens[0].to_ascii_uppercase();
    let reply = match verb.as_str() {
        "PING" => Ok(vec!["OK pong".to_string()]),
        "QUIT" => return (vec!["OK bye".to_string()], true),
        "SHUTDOWN" => {
            state.shutdown.store(true, Ordering::SeqCst);
            // Wake the accept loop so `run` can observe the flag and drain tenants.
            let _ = TcpStream::connect(state.addr);
            return (vec!["OK shutting down".to_string()], true);
        }
        "DECLARE" => with_args(&tokens, 3, |t| {
            let tenant = tenant_entry(state, t[1]);
            let command = Command::Declare {
                relation: t[2].to_string(),
                columns: t[3..].iter().map(|c| c.to_string()).collect(),
            };
            roundtrip(&tenant, command).map(ok_line)
        }),
        "VIEW" => with_args(&tokens, 4, |t| {
            let tenant = tenant_entry(state, t[1]);
            let command = Command::CreateView {
                name: t[2].to_string(),
                // SQL is whitespace-insensitive, so rejoining tokens is lossless
                // for the Section 5 subset the parser accepts.
                sql: t[3..].join(" "),
            };
            roundtrip(&tenant, command).map(ok_line)
        }),
        "DROP" => with_args(&tokens, 3, |t| {
            let tenant = tenant_entry(state, t[1]);
            roundtrip(
                &tenant,
                Command::DropView {
                    name: t[2].to_string(),
                },
            )
            .map(ok_line)
        }),
        "INSERT" | "DELETE" => with_args(&tokens, 3, |t| {
            let tenant = known_tenant(state, t[1])?;
            let values: Vec<Value> = t[3..].iter().copied().map(parse_value).collect();
            let update = if verb == "INSERT" {
                Update::insert(t[2], values)
            } else {
                Update::delete(t[2], values)
            };
            roundtrip(&tenant, Command::Ingest { update }).map(ok_line)
        }),
        "FLUSH" => with_args(&tokens, 2, |t| {
            let tenant = known_tenant(state, t[1])?;
            roundtrip(&tenant, Command::Flush).map(ok_line)
        }),
        "STATS" => with_args(&tokens, 2, |t| {
            let tenant = known_tenant(state, t[1])?;
            roundtrip(&tenant, Command::Stats).map(ok_line)
        }),
        "GET" => with_args(&tokens, 3, |t| {
            let snapshot = acquire(state, t[1], t[2])?;
            let key: Vec<Value> = t[3..].iter().copied().map(parse_value).collect();
            Ok(vec![format!("VALUE {}", snapshot.value(&key))])
        }),
        "TABLE" => with_args(&tokens, 3, |t| {
            let snapshot = acquire(state, t[1], t[2])?;
            Ok(render_rows(snapshot.iter(), &snapshot))
        }),
        "SCAN" => with_args(&tokens, 3, |t| {
            let snapshot = acquire(state, t[1], t[2])?;
            let prefix: Vec<Value> = t[3..].iter().copied().map(parse_value).collect();
            Ok(render_rows(snapshot.prefix_scan(&prefix), &snapshot))
        }),
        _ => Err(format!("unknown command {verb}")),
    };
    match reply {
        Ok(lines) => (lines, false),
        Err(message) => (vec![format!("ERR {message}")], false),
    }
}

/// Runs `body` if the request has at least `min` tokens, else an arity error.
fn with_args<'a>(
    tokens: &[&'a str],
    min: usize,
    body: impl FnOnce(&[&'a str]) -> Result<Vec<String>, String>,
) -> Result<Vec<String>, String> {
    if tokens.len() < min {
        return Err(format!(
            "{} needs at least {} arguments",
            tokens[0].to_ascii_uppercase(),
            min - 1
        ));
    }
    body(tokens)
}

fn ok_line(detail: String) -> Vec<String> {
    vec![format!("OK {detail}")]
}

/// Returns the tenant, creating it (and its ingest thread) on first use.
fn tenant_entry(state: &Arc<ServerState>, name: &str) -> Arc<Tenant> {
    let mut tenants = state.tenants.lock().unwrap();
    if let Some(tenant) = tenants.get(name) {
        return Arc::clone(tenant);
    }
    let (requests, rx) = mpsc::channel();
    let shared = Arc::new(TenantShared {
        reader: Mutex::new(None),
    });
    let worker_shared = Arc::clone(&shared);
    let config = state.config;
    let worker = std::thread::spawn(move || tenant_loop(rx, worker_shared, config));
    let tenant = Arc::new(Tenant {
        requests,
        shared,
        worker: Mutex::new(Some(worker)),
    });
    tenants.insert(name.to_string(), Arc::clone(&tenant));
    tenant
}

/// Returns an existing tenant, or an error: reads and ingest never auto-create.
fn known_tenant(state: &Arc<ServerState>, name: &str) -> Result<Arc<Tenant>, String> {
    state
        .tenants
        .lock()
        .unwrap()
        .get(name)
        .cloned()
        .ok_or_else(|| format!("unknown tenant {name}"))
}

/// Acquires a point-in-time snapshot of `view` for `tenant` — no ingest round-trip;
/// this is the lock-free read path.
fn acquire(
    state: &Arc<ServerState>,
    tenant: &str,
    view: &str,
) -> Result<dbring::ViewSnapshot, String> {
    let tenant = known_tenant(state, tenant)?;
    let handle = tenant
        .shared
        .reader
        .lock()
        .unwrap()
        .clone()
        .ok_or_else(|| "tenant has no views yet".to_string())?;
    handle.snapshot_named(view).map_err(|e| e.to_string())
}

fn render_rows<'a>(
    rows: impl Iterator<Item = (&'a [Value], Number)>,
    snapshot: &dbring::ViewSnapshot,
) -> Vec<String> {
    let mut lines = Vec::new();
    for (key, value) in rows {
        let mut line = String::from("ROW");
        for v in key {
            line.push(' ');
            line.push_str(&v.to_string());
        }
        line.push(' ');
        line.push_str(&value.to_string());
        lines.push(line);
    }
    lines.push(format!(
        "END rows={} ingested={} epoch={}",
        lines.len(),
        snapshot.ingested(),
        snapshot.epoch()
    ));
    lines
}

/// Parses a protocol token: integer, then float, then (optionally quoted) string.
fn parse_value(token: &str) -> Value {
    if let Ok(i) = token.parse::<i64>() {
        return Value::int(i);
    }
    if let Ok(f) = token.parse::<f64>() {
        return Value::float(f);
    }
    let unquoted = token
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .unwrap_or(token);
    Value::str(unquoted)
}

/// The tenant ingest loop: owns the tenant's [`Ring`] exclusively, accumulates
/// updates into a batch, and commits (publishing snapshots) at quiescent points —
/// when the request queue drains, the batch hits `batch_max`, or on explicit `FLUSH`.
fn tenant_loop(rx: Receiver<Request>, shared: Arc<TenantShared>, config: ServerConfig) {
    let mut core = Core::Building(Catalog::new());
    let mut pending: Vec<Update> = Vec::new();
    let mut last_error: Option<String> = None;
    loop {
        let request = match rx.try_recv() {
            Ok(request) => request,
            Err(TryRecvError::Empty) => {
                // Queue drained: a quiescent point. Commit what we have so readers
                // observe it, then block for the next request.
                flush(&mut core, &mut pending, &mut last_error);
                match rx.recv() {
                    Ok(request) => request,
                    Err(_) => break,
                }
            }
            Err(TryRecvError::Disconnected) => break,
        };
        let stop = matches!(request.command, Command::Stop);
        let reply = handle_command(
            request.command,
            &mut core,
            &mut pending,
            &mut last_error,
            &shared,
            &config,
        );
        let _ = request.reply.send(reply);
        if pending.len() >= config.batch_max {
            flush(&mut core, &mut pending, &mut last_error);
        }
        if stop {
            break;
        }
    }
    flush(&mut core, &mut pending, &mut last_error);
}

fn handle_command(
    command: Command,
    core: &mut Core,
    pending: &mut Vec<Update>,
    last_error: &mut Option<String>,
    shared: &TenantShared,
    config: &ServerConfig,
) -> Result<String, String> {
    match command {
        Command::Declare { relation, columns } => match core {
            Core::Building(catalog) => {
                let cols: Vec<&str> = columns.iter().map(|c| c.as_str()).collect();
                catalog
                    .declare(&relation, &cols)
                    .map_err(|e| e.to_string())?;
                Ok(format!("declared {relation}"))
            }
            Core::Serving(_) => {
                Err("relations must be declared before the first view or update".to_string())
            }
        },
        Command::CreateView { name, sql } => {
            let ring = ensure_serving(core, shared, config);
            flush_ring(ring, pending, last_error);
            let id = ring
                .create_view(&name, ViewDef::Sql(&sql))
                .map_err(|e| e.to_string())?;
            Ok(format!("created {name} as {id}"))
        }
        Command::DropView { name } => {
            let ring = serving_ring(core)?;
            flush_ring(ring, pending, last_error);
            let id = ring
                .view_id(&name)
                .ok_or_else(|| format!("unknown view {name}"))?;
            ring.drop_view(id).map_err(|e| e.to_string())?;
            Ok(format!("dropped {name}"))
        }
        Command::Ingest { update } => {
            let ring = ensure_serving(core, shared, config);
            match ring.catalog().columns(&update.relation) {
                None => Err(format!("unknown relation {}", update.relation)),
                Some(cols) if cols.len() != update.values.len() => Err(format!(
                    "{} expects {} values, got {}",
                    update.relation,
                    cols.len(),
                    update.values.len()
                )),
                Some(_) => {
                    pending.push(update);
                    Ok("queued".to_string())
                }
            }
        }
        Command::Flush => {
            let ring = serving_ring(core)?;
            flush_ring(ring, pending, last_error);
            match last_error.take() {
                Some(error) => Err(error),
                None => Ok(format!("ingested={}", ring.updates_ingested())),
            }
        }
        Command::Stats => match core {
            Core::Building(catalog) => Ok(format!(
                "building relations={}",
                catalog.relation_names().count()
            )),
            Core::Serving(ring) => Ok(format!(
                "views={} ingested={} pending={} publish_ns={} snapshot_entries={}",
                ring.len(),
                ring.updates_ingested(),
                pending.len(),
                ring.snapshot_publish_ns(),
                ring.snapshot_footprint()
            )),
        },
        Command::Stop => Ok("stopping".to_string()),
    }
}

/// Builds the tenant's ring on first view/update, freezing the catalog and handing
/// a [`RingHandle`] to the read path.
fn ensure_serving<'a>(
    core: &'a mut Core,
    shared: &TenantShared,
    config: &ServerConfig,
) -> &'a mut Ring {
    if let Core::Building(catalog) = core {
        let ring = RingBuilder::new(std::mem::take(catalog))
            .backend(config.backend)
            .build();
        *shared.reader.lock().unwrap() = Some(ring.reader());
        *core = Core::Serving(Box::new(ring));
    }
    match core {
        Core::Serving(ring) => ring,
        Core::Building(_) => unreachable!("just transitioned to serving"),
    }
}

fn serving_ring(core: &mut Core) -> Result<&mut Ring, String> {
    match core {
        Core::Serving(ring) => Ok(ring),
        Core::Building(_) => Err("tenant has no views yet".to_string()),
    }
}

fn flush(core: &mut Core, pending: &mut Vec<Update>, last_error: &mut Option<String>) {
    if let Core::Serving(ring) = core {
        flush_ring(ring, pending, last_error);
    }
}

/// Commits the pending batch. Ingest is failure-atomic: on error the whole batch is
/// rolled back by the ring; the error is surfaced on the next `FLUSH`.
fn flush_ring(ring: &mut Ring, pending: &mut Vec<Update>, last_error: &mut Option<String>) {
    if pending.is_empty() {
        return;
    }
    if let Err(error) = ring.apply_batch(pending) {
        *last_error = Some(error.to_string());
    }
    pending.clear();
}
