//! Equivalence of the hash- and ordered-backed executors, mirroring
//! `lowered_equivalence.rs` one layer down.
//!
//! The [`ViewStorage`] contract promises that a backend only changes *where* entries
//! physically live, never *which* entries a probe or partial-key enumeration sees. If
//! that holds, both executors must produce identical output tables, identical view
//! hierarchies, and — because [`ExecStats`] counts one operation per visited entry —
//! *exactly* equal work counters on every backend, for random mixed-multiplicity traces.
//! A backend whose index misses an entry (the `register_index` backfill regression) or
//! whose range scan over- or under-shoots fails these tests, not just a benchmark.

use dbring_agca::ast::Query;
use dbring_agca::eval::eval_all_groups;
use dbring_agca::parser::parse_query;
use dbring_algebra::{Number, Semiring};
use dbring_compiler::compile;
use dbring_relations::{Database, DeltaBatch, Update, Value};
use dbring_runtime::{
    ExecStats, Executor, HashViewStorage, InterpretedExecutor, OrderedViewStorage, ViewStorage,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn catalog() -> Database {
    let mut db = Database::new();
    db.declare("C", &["cid", "nation"]).unwrap();
    db.declare("R", &["A"]).unwrap();
    db
}

/// Queries covering every plan-op shape: probes, enumerates (grouped and ungrouped,
/// prefix and non-prefix slice patterns), guards, and scalar value terms.
fn corpus() -> Vec<Query> {
    [
        "q1[c] := Sum(C(c, n) * C(c2, n))",
        "q2 := Sum(R(x) * R(y) * (x = y))",
        "q3[n] := Sum(C(c, n) * n)",
        "q4 := Sum(C(c, n) * R(n) * (n >= 1))",
    ]
    .iter()
    .map(|text| parse_query(text).unwrap())
    .collect()
}

/// A random update with mixed multiplicities: plain inserts/deletes plus batched
/// |multiplicity| > 1 updates (which the executors must unroll into single-tuple
/// firings).
fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0i64..3, -2i64..=2).prop_map(|(c, n, m)| Update {
            relation: "C".to_string(),
            values: vec![Value::int(c), Value::int(n)],
            multiplicity: if m == 0 { 1 } else { m },
        }),
        (0i64..4, -3i64..=3).prop_map(|(a, m)| Update {
            relation: "R".to_string(),
            values: vec![Value::int(a)],
            multiplicity: if m == 0 { -1 } else { m },
        }),
    ]
}

/// Drops zero-valued groups (the executors prune them; the evaluator may report them).
fn nonzero(table: BTreeMap<Vec<Value>, Number>) -> BTreeMap<Vec<Value>, Number> {
    table.into_iter().filter(|(_, v)| !v.is_zero()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hash_and_ordered_backends_agree_on_both_executors(
        trace in prop::collection::vec(arb_update(), 1..50),
    ) {
        let catalog = catalog();
        for query in corpus() {
            let program = compile(&catalog, &query).unwrap();
            let mut lowered_hash = Executor::<HashViewStorage>::with_backend(program.clone());
            let mut lowered_ordered = Executor::<OrderedViewStorage>::with_backend(program.clone());
            let mut interp_hash = InterpretedExecutor::<HashViewStorage>::with_backend(program.clone());
            let mut interp_ordered = InterpretedExecutor::<OrderedViewStorage>::with_backend(program);
            let mut db = catalog.clone();
            for update in &trace {
                lowered_hash.apply(update).unwrap();
                lowered_ordered.apply(update).unwrap();
                interp_hash.apply(update).unwrap();
                interp_ordered.apply(update).unwrap();
                db.apply(update).unwrap();
            }
            // (a) Final-state correctness against from-scratch evaluation.
            let reference = nonzero(eval_all_groups(&query, &db).unwrap());
            prop_assert_eq!(
                nonzero(lowered_ordered.output_table()),
                reference,
                "ordered backend diverged from the reference evaluator on {}",
                &query.name
            );
            // (b) Backend equivalence on the lowered executor: tables, hierarchy size,
            // and exactly equal work counters.
            prop_assert_eq!(lowered_hash.output_table(), lowered_ordered.output_table());
            prop_assert_eq!(lowered_hash.total_entries(), lowered_ordered.total_entries());
            prop_assert_eq!(
                lowered_hash.stats(),
                lowered_ordered.stats(),
                "lowered work counters diverged across backends on {}",
                &query.name
            );
            // (c) Backend equivalence on the interpreted executor.
            prop_assert_eq!(interp_hash.output_table(), interp_ordered.output_table());
            prop_assert_eq!(interp_hash.total_entries(), interp_ordered.total_entries());
            prop_assert_eq!(
                interp_hash.stats(),
                interp_ordered.stats(),
                "interpreted work counters diverged across backends on {}",
                &query.name
            );
            // (d) Cross-executor parity holds on the ordered backend too (the lowered ×
            // hash pairing is covered by `lowered_equivalence.rs`).
            prop_assert_eq!(lowered_ordered.stats(), interp_ordered.stats());
            // Entry counts agree across backends even though index layouts differ.
            prop_assert_eq!(
                lowered_hash.storage_footprint().entries,
                lowered_ordered.storage_footprint().entries
            );
        }
    }
}

/// A deterministic Fisher–Yates permutation of a trace, driven by a cheap LCG so the
/// proptest input fully determines the order (the offline proptest stand-in has no
/// `Shuffle` strategy).
fn permute(mut trace: Vec<Update>, mut seed: u64) -> Vec<Update> {
    for i in (1..trace.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        trace.swap(i, j);
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole's correctness bar: `apply_batch` over *any* chunking of *any*
    /// permutation of a mixed-multiplicity trace ends in exactly the tables the
    /// per-tuple `apply_all` reaches, on every backend × executor combination. (The
    /// maintained views depend only on the net delta, which permutation, chunking and
    /// in-batch consolidation all preserve.)
    #[test]
    fn apply_batch_matches_per_tuple_apply_all_across_backends_and_executors(
        trace in prop::collection::vec(arb_update(), 1..60),
        chunk in 1usize..9,
        perm_seed in 0u64..u64::MAX,
    ) {
        type Table = BTreeMap<Vec<Value>, Number>;
        fn batch_tables<S: ViewStorage>(
            program: &dbring_compiler::TriggerProgram,
            chunks: &[&[Update]],
        ) -> (Table, Table, usize, usize) {
            let mut lowered = Executor::<S>::with_backend(program.clone());
            let mut interp = InterpretedExecutor::<S>::with_backend(program.clone());
            for chunk in chunks {
                let batch = DeltaBatch::from_updates(*chunk);
                lowered.apply_batch(&batch).unwrap();
                interp.apply_batch(&batch).unwrap();
            }
            // The two batch paths also account their work identically.
            assert_eq!(lowered.stats(), interp.stats());
            (
                lowered.output_table(),
                interp.output_table(),
                lowered.total_entries(),
                interp.total_entries(),
            )
        }
        let catalog = catalog();
        let permuted = permute(trace.clone(), perm_seed);
        let chunks: Vec<&[Update]> = permuted.chunks(chunk).collect();
        for query in corpus() {
            let program = compile(&catalog, &query).unwrap();
            let mut reference = Executor::new(program.clone());
            reference.apply_all(&trace).unwrap();
            let expected = reference.output_table();
            let expected_entries = reference.total_entries();
            let (lh, ih, leh, ieh) = batch_tables::<HashViewStorage>(&program, &chunks);
            let (lo, io, leo, ieo) = batch_tables::<OrderedViewStorage>(&program, &chunks);
            prop_assert_eq!(&lh, &expected, "lowered/hash diverged on {}", &query.name);
            prop_assert_eq!(&ih, &expected, "interp/hash diverged on {}", &query.name);
            prop_assert_eq!(&lo, &expected, "lowered/ordered diverged on {}", &query.name);
            prop_assert_eq!(&io, &expected, "interp/ordered diverged on {}", &query.name);
            // The whole view hierarchy (not just the output map) converged too.
            prop_assert_eq!(leh, expected_entries);
            prop_assert_eq!(ieh, expected_entries);
            prop_assert_eq!(leo, expected_entries);
            prop_assert_eq!(ieo, expected_entries);
        }
    }
}

/// Deterministic parity over the synthetic workload streams (larger and more structured
/// than the proptest traces: indexed enumerations, three-way joins, deletes, floats).
#[test]
fn exec_stats_agree_across_backends_on_workload_streams() {
    use dbring_workloads::{customers_by_nation, orders_lineitems, rst_sum_join, WorkloadConfig};
    let config = WorkloadConfig {
        seed: 23,
        initial_size: 120,
        stream_length: 200,
        domain_size: 12,
        delete_fraction: 0.3,
    };
    for workload in [
        customers_by_nation(config),
        rst_sum_join(config),
        orders_lineitems(config),
    ] {
        let program = compile(&workload.catalog, &workload.query).unwrap();
        let mut hash = Executor::<HashViewStorage>::with_backend(program.clone());
        let mut ordered = Executor::<OrderedViewStorage>::with_backend(program);
        for update in workload.initial.iter().chain(&workload.stream) {
            hash.apply(update).unwrap();
            ordered.apply(update).unwrap();
        }
        assert_eq!(
            hash.stats(),
            ordered.stats(),
            "stats diverged on workload {}",
            workload.name
        );
        assert_ne!(
            hash.stats(),
            ExecStats::default(),
            "workload {} did no work",
            workload.name
        );
        assert_eq!(
            hash.output_table(),
            ordered.output_table(),
            "tables diverged on workload {}",
            workload.name
        );
        let (hfp, ofp) = (hash.storage_footprint(), ordered.storage_footprint());
        assert_eq!(hfp.entries, ofp.entries, "{}", workload.name);
        assert!(
            ofp.index_entries <= hfp.index_entries,
            "ordered backend should never carry more index entries ({} vs {}) on {}",
            ofp.index_entries,
            hfp.index_entries,
            workload.name
        );
    }
}

/// The ordered backend preserves the constant-work guarantee: per-update arithmetic ops
/// for a loop-free trigger program stay bounded as the maps grow.
#[test]
fn constant_work_per_update_holds_on_the_ordered_backend() {
    let catalog = catalog();
    let q = parse_query("q2 := Sum(R(x) * R(y) * (x = y))").unwrap();
    let mut exec = Executor::<OrderedViewStorage>::with_backend(compile(&catalog, &q).unwrap());
    let mut worst = 0u64;
    for i in 0..2_000i64 {
        let before = exec.stats().arithmetic_ops();
        exec.apply(&Update::insert("R", vec![Value::int(i % 7)]))
            .unwrap();
        worst = worst.max(exec.stats().arithmetic_ops() - before);
    }
    assert!(worst <= 12, "per-update ops grew to {worst}");
    assert!(exec.total_entries() > 7);
}

/// Initialization from a non-empty database works identically on both backends.
#[test]
fn initialization_matches_streaming_on_the_ordered_backend() {
    let catalog = catalog();
    let query = parse_query("q1[c] := Sum(C(c, n) * C(c2, n))").unwrap();
    let program = compile(&catalog, &query).unwrap();
    let updates: Vec<Update> = (0..30)
        .map(|i| {
            Update::insert(
                "C",
                vec![
                    Value::int(i),
                    Value::str(["FR", "DE", "IT"][(i % 3) as usize]),
                ],
            )
        })
        .collect();
    let mut db = catalog.clone();
    db.apply_all(&updates).unwrap();
    let mut streamed = Executor::<OrderedViewStorage>::with_backend(program.clone());
    streamed.apply_all(&updates).unwrap();
    let mut initialized = Executor::<OrderedViewStorage>::with_backend(program);
    initialized.initialize_from(&db).unwrap();
    assert_eq!(streamed.output_table(), initialized.output_table());
    let more = Update::insert("C", vec![Value::int(100), Value::str("FR")]);
    streamed.apply(&more).unwrap();
    initialized.apply(&more).unwrap();
    assert_eq!(streamed.output_table(), initialized.output_table());
}
