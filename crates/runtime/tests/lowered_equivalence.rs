//! Equivalence of the slot-resolved executor with its two references.
//!
//! The lowered [`Executor`] must agree with (a) the AGCA reference evaluator run on the
//! final database — full-pipeline correctness over random update traces with mixed
//! multiplicities — and (b) the string-named [`InterpretedExecutor`] — not just on the
//! final table but *operation for operation*: the [`ExecStats`] counters of the two
//! paths are maintained identically, so any divergence in work accounting (the quantity
//! the paper's Theorem 7.1 bounds) is a test failure, not a benchmarking footnote.

use dbring_agca::ast::Query;
use dbring_agca::eval::eval_all_groups;
use dbring_agca::parser::parse_query;
use dbring_algebra::{Number, Semiring};
use dbring_compiler::compile;
use dbring_relations::{Database, Update, Value};
use dbring_runtime::{ExecStats, Executor, InterpretedExecutor};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn catalog() -> Database {
    let mut db = Database::new();
    db.declare("C", &["cid", "nation"]).unwrap();
    db.declare("R", &["A"]).unwrap();
    db
}

/// Queries covering every plan-op shape: probes, enumerates (grouped and ungrouped),
/// guards, and scalar value terms.
fn corpus() -> Vec<Query> {
    [
        "q1[c] := Sum(C(c, n) * C(c2, n))",
        "q2 := Sum(R(x) * R(y) * (x = y))",
        "q3[n] := Sum(C(c, n) * n)",
        "q4 := Sum(C(c, n) * R(n) * (n >= 1))",
    ]
    .iter()
    .map(|text| parse_query(text).unwrap())
    .collect()
}

/// A random update with mixed multiplicities: plain inserts/deletes plus batched
/// |multiplicity| > 1 updates (which the executor must unroll into single-tuple firings).
fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0i64..3, -2i64..=2).prop_map(|(c, n, m)| Update {
            relation: "C".to_string(),
            values: vec![Value::int(c), Value::int(n)],
            multiplicity: if m == 0 { 1 } else { m },
        }),
        (0i64..4, -3i64..=3).prop_map(|(a, m)| Update {
            relation: "R".to_string(),
            values: vec![Value::int(a)],
            multiplicity: if m == 0 { -1 } else { m },
        }),
    ]
}

/// Drops zero-valued groups (the executor prunes them; the evaluator may report them).
fn nonzero(table: BTreeMap<Vec<Value>, Number>) -> BTreeMap<Vec<Value>, Number> {
    table.into_iter().filter(|(_, v)| !v.is_zero()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn lowered_executor_matches_the_reference_evaluator_and_the_interpreter(
        trace in prop::collection::vec(arb_update(), 1..50),
    ) {
        let catalog = catalog();
        for query in corpus() {
            let program = compile(&catalog, &query).unwrap();
            let mut lowered = Executor::new(program.clone());
            let mut interpreted = InterpretedExecutor::new(program);
            let mut db = catalog.clone();
            for update in &trace {
                lowered.apply(update).unwrap();
                interpreted.apply(update).unwrap();
                db.apply(update).unwrap();
            }
            // (a) Final-state correctness against from-scratch evaluation.
            let reference = nonzero(eval_all_groups(&query, &db).unwrap());
            prop_assert_eq!(
                nonzero(lowered.output_table()),
                reference,
                "query {} diverged from the reference evaluator",
                &query.name
            );
            // (b) Exact agreement with the interpreter: tables, view hierarchy size, and
            // the per-operation work counters.
            prop_assert_eq!(lowered.output_table(), interpreted.output_table());
            prop_assert_eq!(lowered.total_entries(), interpreted.total_entries());
            prop_assert_eq!(
                lowered.stats(),
                interpreted.stats(),
                "work counters diverged on query {}",
                &query.name
            );
        }
    }
}

/// Deterministic `ExecStats` parity over the synthetic workload streams (larger and more
/// structured than the proptest traces: indexed enumerations, three-way joins, deletes).
#[test]
fn exec_stats_agree_between_interpreted_and_lowered_paths() {
    use dbring_workloads::{customers_by_nation, rst_sum_join, self_join_count, WorkloadConfig};
    let config = WorkloadConfig {
        seed: 11,
        initial_size: 120,
        stream_length: 200,
        domain_size: 12,
        delete_fraction: 0.3,
    };
    for workload in [
        self_join_count(config),
        customers_by_nation(config),
        rst_sum_join(config),
    ] {
        let program = compile(&workload.catalog, &workload.query).unwrap();
        let mut lowered = Executor::new(program.clone());
        let mut interpreted = InterpretedExecutor::new(program);
        for update in workload.initial.iter().chain(&workload.stream) {
            lowered.apply(update).unwrap();
            interpreted.apply(update).unwrap();
        }
        let (l, i) = (lowered.stats(), interpreted.stats());
        assert_eq!(l, i, "stats diverged on workload {}", workload.name);
        assert_eq!(
            l.arithmetic_ops(),
            i.arithmetic_ops(),
            "derived op totals diverged on workload {}",
            workload.name
        );
        assert_ne!(
            l,
            ExecStats::default(),
            "workload {} did no work",
            workload.name
        );
        assert_eq!(
            lowered.output_table(),
            interpreted.output_table(),
            "tables diverged on workload {}",
            workload.name
        );
    }
}

/// The lowered path keeps the constant-work guarantee: per-update arithmetic ops for a
/// loop-free trigger program are bounded independently of how large the maps have grown.
#[test]
fn constant_work_per_update_is_preserved_by_lowering() {
    let catalog = catalog();
    let q = parse_query("q2 := Sum(R(x) * R(y) * (x = y))").unwrap();
    let mut exec = Executor::new(compile(&catalog, &q).unwrap());
    let mut worst = 0u64;
    for i in 0..2_000i64 {
        let before = exec.stats().arithmetic_ops();
        exec.apply(&Update::insert("R", vec![Value::int(i % 7)]))
            .unwrap();
        worst = worst.max(exec.stats().arithmetic_ops() - before);
    }
    assert!(worst <= 12, "per-update ops grew to {worst}");
    assert!(exec.total_entries() > 7);
}
