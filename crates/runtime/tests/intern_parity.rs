//! Parity of the interned fixed-width ingest path with the classic `Vec<Value>` path,
//! at the executor level: feeding a [`BatchNormalizer`]-built batch must produce the
//! same tables AND bit-identical [`ExecStats`] as feeding the reference
//! [`DeltaBatch::from_updates`] batch — across hash/ordered backends, lowered and
//! interpreted executors, sequential and sharded (threads = 4) flushes, and the staged
//! (`stage_batch`/`commit_staged`, i.e. `apply_sorted_logged`) path.
//!
//! The traces are string-heavy on purpose: group keys are strings whose interner ids
//! are assigned in non-lexicographic order, so a flush that sorted by id instead of by
//! `Value` order would corrupt the ordered backend's merge and fail here.

use dbring_agca::parser::parse_query;
use dbring_compiler::{compile, TriggerProgram};
use dbring_relations::{BatchNormalizer, Database, DeltaBatch, Update, Value};
use dbring_runtime::{
    Executor, HashViewStorage, InterpretedExecutor, OrderedViewStorage, ViewStorage,
};
use proptest::prelude::*;

/// Lexicographic traps: ids get assigned in arrival order, which these strings make
/// disagree with their sort order ("zz" will usually be seen before "a").
const NATIONS: [&str; 6] = ["zz", "m", "aa", "z", "a", "b"];

fn catalog() -> Database {
    let mut db = Database::new();
    db.declare("C", &["cid", "nation"]).unwrap();
    db.declare("R", &["A"]).unwrap();
    db
}

/// String-keyed aggregation (weighted flush), a self-join (unit replay), and a
/// multi-relation probe.
fn corpus() -> Vec<TriggerProgram> {
    let db = catalog();
    [
        "by_nation[n] := Sum(C(c, n))",
        "pairs := Sum(C(c, n) * C(c2, n))",
        "rs[c] := Sum(C(c, n) * R(c))",
    ]
    .iter()
    .map(|text| compile(&db, &parse_query(text).unwrap()).unwrap())
    .collect()
}

fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..5, 0usize..NATIONS.len(), -2i64..=2).prop_map(|(c, n, m)| Update {
            relation: "C".to_string(),
            values: vec![Value::int(c), Value::str(NATIONS[n])],
            multiplicity: if m == 0 { 1 } else { m },
        }),
        (0i64..4, -2i64..=2).prop_map(|(a, m)| Update {
            relation: "R".to_string(),
            values: vec![Value::int(a)],
            multiplicity: if m == 0 { -1 } else { m },
        }),
    ]
}

/// Runs the full matrix for one backend: every executor consumes the same chunked
/// trace, some through the interned normalizer, some through the classic constructor,
/// and all pairs must agree exactly.
fn check_backend<S: ViewStorage>(program: &TriggerProgram, trace: &[Update], chunk: usize) {
    let mut interned = Executor::<S>::with_backend(program.clone());
    let mut classic = Executor::<S>::with_backend(program.clone());
    let mut sharded = Executor::<S>::with_backend(program.clone());
    let mut staged = Executor::<S>::with_backend(program.clone());
    let mut interp_interned = InterpretedExecutor::<S>::with_backend(program.clone());
    let mut interp_classic = InterpretedExecutor::<S>::with_backend(program.clone());
    let mut per_tuple = Executor::<S>::with_backend(program.clone());
    sharded.set_parallelism(4);
    let mut normalizer = BatchNormalizer::new();
    for c in trace.chunks(chunk.max(1)) {
        let interned_batch = normalizer.normalize(c);
        let classic_batch = DeltaBatch::from_updates(c);
        assert_eq!(interned_batch, classic_batch, "normalization diverged");
        interned.apply_batch(&interned_batch).unwrap();
        classic.apply_batch(&classic_batch).unwrap();
        sharded.apply_batch(&interned_batch).unwrap();
        let txn = staged.stage_batch(&interned_batch).unwrap();
        staged.commit_staged(txn);
        interp_interned.apply_batch(&interned_batch).unwrap();
        interp_classic.apply_batch(&classic_batch).unwrap();
        per_tuple.apply_all(c).unwrap();
    }
    // Interned vs classic: tables and bit-identical work counters, on both executors.
    assert_eq!(interned.output_table(), classic.output_table());
    assert_eq!(interned.stats(), classic.stats());
    assert_eq!(
        interp_interned.output_table(),
        interp_classic.output_table()
    );
    assert_eq!(interp_interned.stats(), interp_classic.stats());
    // Sharded (threads = 4) and staged (apply_sorted_logged) flushes ride the same
    // representation and must change nothing.
    assert_eq!(sharded.output_table(), classic.output_table());
    assert_eq!(sharded.stats(), classic.stats());
    assert_eq!(staged.output_table(), classic.output_table());
    assert_eq!(staged.stats(), classic.stats());
    // The batch paths still agree with single-tuple ground truth (tables; the batch
    // path legitimately does less work, so stats are not compared here).
    assert_eq!(interned.output_table(), per_tuple.output_table());
    assert_eq!(interned.total_entries(), per_tuple.total_entries());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn interned_path_matches_classic_path_across_the_matrix(
        trace in prop::collection::vec(arb_update(), 1..60),
        chunk in 1usize..24,
    ) {
        for program in corpus() {
            check_backend::<HashViewStorage>(&program, &trace, chunk);
            check_backend::<OrderedViewStorage>(&program, &trace, chunk);
        }
    }
}
