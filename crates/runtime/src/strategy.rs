//! A common interface over the maintenance strategies, so experiments, tests and
//! benchmarks can drive them interchangeably — including the same strategy over
//! different [`StorageBackend`]s, selected by name (`"recursive-ivm@ordered"`).

use std::collections::BTreeMap;

use dbring_algebra::Number;
use dbring_compiler::TriggerProgram;
use dbring_relations::{Update, Value};

use crate::executor::Executor;
use crate::interp::InterpretedExecutor;
use crate::storage::{HashViewStorage, OrderedViewStorage, StorageBackend};

/// A view-maintenance strategy: consumes single-tuple updates and can report the current
/// query result (a table from group keys to aggregate values).
pub trait MaintenanceStrategy {
    /// A short name used in experiment output: the strategy family
    /// ("recursive-ivm", "recursive-ivm-interpreted", "classical-ivm", "naive"),
    /// suffixed with `@<backend>` when it runs on a non-default storage backend
    /// ("recursive-ivm@ordered").
    fn strategy_name(&self) -> &'static str;

    /// Applies one single-tuple update.
    fn apply_update(&mut self, update: &Update) -> Result<(), String>;

    /// Applies a batch of updates. The default loops [`apply_update`]; strategies with
    /// a real batch path (the trigger-program executors) override it to consolidate the
    /// batch into a [`DeltaBatch`](dbring_relations::DeltaBatch) and fire each affected
    /// map once. Either way the result equals applying the updates one by one; like the
    /// per-update path, a mid-batch failure is not rolled back.
    ///
    /// [`apply_update`]: MaintenanceStrategy::apply_update
    fn apply_update_batch(&mut self, updates: &[Update]) -> Result<(), String> {
        for update in updates {
            self.apply_update(update)?;
        }
        Ok(())
    }

    /// The current query result as a sorted table. Groups whose aggregate is zero may be
    /// omitted.
    fn current_result(&self) -> BTreeMap<Vec<Value>, Number>;

    /// The aggregate value for one group key (zero if the group is absent).
    ///
    /// **Cost of the default impl:** it calls [`current_result`], materializing the
    /// *entire* result table (one allocation per group) to answer a single-key lookup.
    /// That is fine for the baselines' occasional oracle checks, but any strategy that
    /// can probe its result directly must override this — all four in-tree strategy
    /// families do — and callers probing in a loop should prefer a strategy-specific
    /// accessor over a `dyn MaintenanceStrategy` default.
    ///
    /// [`current_result`]: MaintenanceStrategy::current_result
    fn result_value(&self, key: &[Value]) -> Number {
        self.current_result()
            .get(key)
            .copied()
            .unwrap_or(Number::Int(0))
    }
}

/// Implements [`MaintenanceStrategy`] for one concrete executor type, with a literal
/// strategy name (names must be `&'static str`, so each backend combination gets its
/// own impl rather than a formatted string).
macro_rules! impl_executor_strategy {
    ($ty:ty, $name:literal) => {
        impl MaintenanceStrategy for $ty {
            fn strategy_name(&self) -> &'static str {
                $name
            }

            fn apply_update(&mut self, update: &Update) -> Result<(), String> {
                self.apply(update).map_err(|e| e.to_string())
            }

            // The real batch path: consolidate once, fire each affected map once.
            fn apply_update_batch(&mut self, updates: &[Update]) -> Result<(), String> {
                self.apply_batch(&dbring_relations::DeltaBatch::from_updates(updates))
                    .map_err(|e| e.to_string())
            }

            fn current_result(&self) -> BTreeMap<Vec<Value>, Number> {
                self.output_table()
            }

            // Direct probe of the output map: no table materialization.
            fn result_value(&self, key: &[Value]) -> Number {
                self.output_value(key)
            }
        }
    };
}

impl_executor_strategy!(Executor<HashViewStorage>, "recursive-ivm");
impl_executor_strategy!(Executor<OrderedViewStorage>, "recursive-ivm@ordered");
impl_executor_strategy!(
    InterpretedExecutor<HashViewStorage>,
    "recursive-ivm-interpreted"
);
impl_executor_strategy!(
    InterpretedExecutor<OrderedViewStorage>,
    "recursive-ivm-interpreted@ordered"
);

/// Builds the lowered recursive-IVM strategy for a compiled program on the given
/// storage backend, behind the dynamic strategy interface.
///
/// # Panics
/// Panics if the program does not lower (impossible for compiler-produced programs).
pub fn recursive_ivm(
    program: TriggerProgram,
    backend: StorageBackend,
) -> Box<dyn MaintenanceStrategy> {
    match backend {
        StorageBackend::Hash => Box::new(Executor::<HashViewStorage>::with_backend(program)),
        StorageBackend::Ordered => Box::new(Executor::<OrderedViewStorage>::with_backend(program)),
    }
}

/// Builds the interpreted recursive-IVM reference strategy on the given storage backend.
pub fn interpreted_ivm(
    program: TriggerProgram,
    backend: StorageBackend,
) -> Box<dyn MaintenanceStrategy> {
    match backend {
        StorageBackend::Hash => Box::new(InterpretedExecutor::<HashViewStorage>::with_backend(
            program,
        )),
        StorageBackend::Ordered => Box::new(
            InterpretedExecutor::<OrderedViewStorage>::with_backend(program),
        ),
    }
}

/// Resolves a trigger-program strategy by its registry name: a family name
/// (`"recursive-ivm"`, `"recursive-ivm-interpreted"`), optionally suffixed with
/// `@<backend>` (`"recursive-ivm@ordered"`). No suffix means the hash backend.
/// Returns `None` for unknown families or backends. (The database-retaining baselines
/// `classical-ivm` / `naive` are constructed from a database + query, not a compiled
/// program, so they are not served here.)
pub fn strategy_by_name(
    name: &str,
    program: TriggerProgram,
) -> Option<Box<dyn MaintenanceStrategy>> {
    let (family, backend) = match name.split_once('@') {
        Some((family, backend)) => (family, StorageBackend::parse(backend)?),
        None => (name, StorageBackend::Hash),
    };
    match family {
        "recursive-ivm" => Some(recursive_ivm(program, backend)),
        "recursive-ivm-interpreted" => Some(interpreted_ivm(program, backend)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;
    use dbring_compiler::compile;
    use dbring_relations::Database;

    fn sum_program() -> TriggerProgram {
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x))").unwrap();
        compile(&catalog, &q).unwrap()
    }

    #[test]
    fn executor_implements_the_strategy_interface() {
        let mut strategy: Box<dyn MaintenanceStrategy> =
            Box::new(crate::executor::Executor::new(sum_program()));
        assert_eq!(strategy.strategy_name(), "recursive-ivm");
        strategy
            .apply_update(&Update::insert("R", vec![Value::int(1)]))
            .unwrap();
        strategy
            .apply_update(&Update::insert("R", vec![Value::int(2)]))
            .unwrap();
        assert_eq!(strategy.result_value(&[]), Number::Int(2));
        assert_eq!(strategy.current_result().len(), 1);
    }

    #[test]
    fn backend_factories_yield_equivalent_strategies_with_distinct_names() {
        let mut strategies = vec![
            recursive_ivm(sum_program(), StorageBackend::Hash),
            recursive_ivm(sum_program(), StorageBackend::Ordered),
            interpreted_ivm(sum_program(), StorageBackend::Hash),
            interpreted_ivm(sum_program(), StorageBackend::Ordered),
        ];
        let names: Vec<&str> = strategies.iter().map(|s| s.strategy_name()).collect();
        assert_eq!(
            names,
            vec![
                "recursive-ivm",
                "recursive-ivm@ordered",
                "recursive-ivm-interpreted",
                "recursive-ivm-interpreted@ordered",
            ]
        );
        for s in &mut strategies {
            s.apply_update(&Update::insert("R", vec![Value::int(5)]))
                .unwrap();
            s.apply_update(&Update::insert("R", vec![Value::int(6)]))
                .unwrap();
            s.apply_update(&Update::delete("R", vec![Value::int(6)]))
                .unwrap();
            assert_eq!(s.result_value(&[]), Number::Int(1), "{}", s.strategy_name());
            assert_eq!(
                s.current_result(),
                strategies_result(),
                "{}",
                s.strategy_name()
            );
        }
    }

    fn strategies_result() -> BTreeMap<Vec<Value>, Number> {
        let mut expected = BTreeMap::new();
        expected.insert(vec![], Number::Int(1));
        expected
    }

    #[test]
    fn batch_application_agrees_with_per_update_application_for_every_strategy() {
        let updates: Vec<Update> = (0..12)
            .map(|i| Update::insert("R", vec![Value::int(i % 4)]))
            .chain((0..3).map(|i| Update::delete("R", vec![Value::int(i)])))
            .collect();
        for name in [
            "recursive-ivm",
            "recursive-ivm@ordered",
            "recursive-ivm-interpreted",
            "recursive-ivm-interpreted@ordered",
        ] {
            let mut per_update = strategy_by_name(name, sum_program()).unwrap();
            for u in &updates {
                per_update.apply_update(u).unwrap();
            }
            let mut batched = strategy_by_name(name, sum_program()).unwrap();
            batched.apply_update_batch(&updates).unwrap();
            assert_eq!(
                per_update.current_result(),
                batched.current_result(),
                "{name}"
            );
        }
    }

    #[test]
    fn strategy_names_resolve_through_the_registry() {
        for name in [
            "recursive-ivm",
            "recursive-ivm@hash",
            "recursive-ivm@ordered",
            "recursive-ivm-interpreted",
            "recursive-ivm-interpreted@ordered",
        ] {
            let mut s =
                strategy_by_name(name, sum_program()).unwrap_or_else(|| panic!("{name} resolves"));
            s.apply_update(&Update::insert("R", vec![Value::int(1)]))
                .unwrap();
            assert_eq!(s.result_value(&[]), Number::Int(1), "{name}");
            // `@hash` is the explicit spelling of the default.
            if name == "recursive-ivm@hash" {
                assert_eq!(s.strategy_name(), "recursive-ivm");
            }
        }
        assert!(strategy_by_name("recursive-ivm@mmap", sum_program()).is_none());
        assert!(strategy_by_name("bogus", sum_program()).is_none());
        assert!(strategy_by_name("naive", sum_program()).is_none());
    }
}
