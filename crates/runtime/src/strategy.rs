//! A common interface over the three maintenance strategies, so experiments, tests and
//! benchmarks can drive them interchangeably.

use std::collections::BTreeMap;

use dbring_algebra::Number;
use dbring_relations::{Update, Value};

/// A view-maintenance strategy: consumes single-tuple updates and can report the current
/// query result (a table from group keys to aggregate values).
pub trait MaintenanceStrategy {
    /// A short name used in experiment output ("recursive-ivm", "classical-ivm", "naive").
    fn strategy_name(&self) -> &'static str;

    /// Applies one single-tuple update.
    fn apply_update(&mut self, update: &Update) -> Result<(), String>;

    /// The current query result as a sorted table. Groups whose aggregate is zero may be
    /// omitted.
    fn current_result(&self) -> BTreeMap<Vec<Value>, Number>;

    /// The aggregate value for one group key (zero if the group is absent).
    fn result_value(&self, key: &[Value]) -> Number {
        self.current_result()
            .get(key)
            .copied()
            .unwrap_or(Number::Int(0))
    }
}

impl MaintenanceStrategy for crate::executor::Executor {
    fn strategy_name(&self) -> &'static str {
        "recursive-ivm"
    }

    fn apply_update(&mut self, update: &Update) -> Result<(), String> {
        self.apply(update).map_err(|e| e.to_string())
    }

    fn current_result(&self) -> BTreeMap<Vec<Value>, Number> {
        self.output_table()
    }

    fn result_value(&self, key: &[Value]) -> Number {
        self.output_value(key)
    }
}

impl MaintenanceStrategy for crate::interp::InterpretedExecutor {
    fn strategy_name(&self) -> &'static str {
        "recursive-ivm-interpreted"
    }

    fn apply_update(&mut self, update: &Update) -> Result<(), String> {
        self.apply(update).map_err(|e| e.to_string())
    }

    fn current_result(&self) -> BTreeMap<Vec<Value>, Number> {
        self.output_table()
    }

    fn result_value(&self, key: &[Value]) -> Number {
        self.output_value(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;
    use dbring_compiler::compile;
    use dbring_relations::Database;

    #[test]
    fn executor_implements_the_strategy_interface() {
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x))").unwrap();
        let mut strategy: Box<dyn MaintenanceStrategy> = Box::new(crate::executor::Executor::new(
            compile(&catalog, &q).unwrap(),
        ));
        assert_eq!(strategy.strategy_name(), "recursive-ivm");
        strategy
            .apply_update(&Update::insert("R", vec![Value::int(1)]))
            .unwrap();
        strategy
            .apply_update(&Update::insert("R", vec![Value::int(2)]))
            .unwrap();
        assert_eq!(strategy.result_value(&[]), Number::Int(2));
        assert_eq!(strategy.current_result().len(), 1);
    }
}
