//! The two baselines the paper's complexity argument compares against.
//!
//! * [`NaiveReeval`] — non-incremental evaluation: re-run the query from scratch after
//!   every update. Per-update cost grows with the database (the `O(n^deg)` data
//!   complexity of Definition 6.3's degree).
//! * [`ClassicalIvm`] — classical first-order incremental view maintenance: materialize
//!   only the query result and, on every update, evaluate the *first* delta query
//!   `∆Q(D, u)` against the stored database (as in the pre-existing IVM literature the
//!   paper departs from). Cheaper than naive evaluation, but the delta query still joins
//!   against base relations, so per-update cost still grows with the database.
//!
//! Both baselines keep the base relations around — unlike the compiled recursive-IVM
//! executor, which only keeps its view hierarchy.

use std::collections::BTreeMap;

use dbring_algebra::{Number, Semiring};
use dbring_relations::{Database, Update, Value};

use dbring_agca::ast::{Expr, Query};
use dbring_agca::eval::{eval, eval_all_groups, EvalError};
use dbring_agca::optimize::optimize_for_evaluation;
use dbring_delta::{delta, Sign, UpdateEvent};

use crate::strategy::MaintenanceStrategy;

/// Non-incremental baseline: recompute the query after every update.
#[derive(Clone, Debug)]
pub struct NaiveReeval {
    db: Database,
    query: Query,
    result: BTreeMap<Vec<Value>, Number>,
}

impl NaiveReeval {
    /// Creates the baseline over a starting database (which may be empty). The query body
    /// is reordered once so that repeated re-evaluation avoids needless cross products.
    pub fn new(db: Database, query: Query) -> Result<Self, EvalError> {
        let bound = query.group_by.iter().cloned().collect();
        let query = Query {
            expr: optimize_for_evaluation(&query.expr, &bound),
            ..query
        };
        let result = eval_all_groups(&query, &db)?;
        Ok(NaiveReeval { db, query, result })
    }

    /// Applies an update and recomputes the result from scratch.
    pub fn apply(&mut self, update: &Update) -> Result<(), EvalError> {
        if self.db.columns(&update.relation).is_some() {
            self.db
                .apply(update)
                .expect("arity checked by the caller or the database");
        }
        self.result = eval_all_groups(&self.query, &self.db)?;
        Ok(())
    }

    /// The current result table.
    pub fn result(&self) -> &BTreeMap<Vec<Value>, Number> {
        &self.result
    }
}

impl MaintenanceStrategy for NaiveReeval {
    fn strategy_name(&self) -> &'static str {
        "naive"
    }
    fn apply_update(&mut self, update: &Update) -> Result<(), String> {
        self.apply(update).map_err(|e| e.to_string())
    }
    fn current_result(&self) -> BTreeMap<Vec<Value>, Number> {
        self.result
            .iter()
            .filter(|(_, v)| !v.is_zero())
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
    // Probe the stored result directly instead of paying the default impl's full-table
    // materialization for a single key.
    fn result_value(&self, key: &[Value]) -> Number {
        self.result.get(key).copied().unwrap_or(Number::Int(0))
    }
}

/// Classical first-order IVM baseline: materialize the result, evaluate `∆Q` per update.
#[derive(Clone, Debug)]
pub struct ClassicalIvm {
    db: Database,
    query: Query,
    /// Per (relation, is-insert): the symbolic event and the delta's body (the expression
    /// under the top-level `Sum`, whose groups are accumulated into the result).
    deltas: Vec<((String, bool), UpdateEvent, Expr)>,
    result: BTreeMap<Vec<Value>, Number>,
}

impl ClassicalIvm {
    /// Creates the baseline over a starting database, precomputing the (first-order) delta
    /// queries for every relation the query mentions.
    pub fn new(db: Database, query: Query) -> Result<Self, EvalError> {
        let result = eval_all_groups(&query, &db)?;
        Self::with_initial_result(db, query, result)
    }

    /// Creates the baseline over a starting database whose query result is already known
    /// (e.g. produced by another maintenance strategy or loaded from a checkpoint), so the
    /// expensive from-scratch evaluation of the starting state can be skipped.
    pub fn with_initial_result(
        db: Database,
        query: Query,
        result: BTreeMap<Vec<Value>, Number>,
    ) -> Result<Self, EvalError> {
        let mut deltas = Vec::new();
        for relation in query.relations() {
            let Some(columns) = db.columns(&relation) else {
                continue;
            };
            let arity = columns.len();
            for sign in [Sign::Insert, Sign::Delete] {
                let event = UpdateEvent::with_fresh_params(relation.clone(), sign, arity, 1);
                let d = delta(&query.expr, &event);
                let body = match d {
                    Expr::Sum(inner) => *inner,
                    other => other,
                };
                // Evaluating the delta query is the per-update cost of this strategy;
                // reorder its monomials once so conditions filter as early as possible.
                let mut bound: std::collections::BTreeSet<String> =
                    query.group_by.iter().cloned().collect();
                bound.extend(event.params.iter().cloned());
                let body = optimize_for_evaluation(&body, &bound);
                deltas.push(((relation.clone(), sign == Sign::Insert), event, body));
            }
        }
        Ok(ClassicalIvm {
            db,
            query,
            deltas,
            result,
        })
    }

    /// Applies an update: evaluates the matching delta query against the *current*
    /// database, folds the change into the materialized result, then updates the stored
    /// database.
    pub fn apply(&mut self, update: &Update) -> Result<(), EvalError> {
        let key = (update.relation.clone(), update.multiplicity > 0);
        let Some((_, event, body)) = self.deltas.iter().find(|(k, _, _)| *k == key) else {
            // The relation does not affect the query; still record the tuple if declared.
            if self.db.columns(&update.relation).is_some() {
                self.db.apply(update).expect("declared relation");
            }
            return Ok(());
        };
        let binding = event.binding(&update.values);
        let change = eval(body, &self.db, &binding)?;
        for (tuple, multiplicity) in change.iter() {
            let mut group_key = Vec::with_capacity(self.query.group_by.len());
            for var in &self.query.group_by {
                match tuple.get(var) {
                    Some(v) => group_key.push(v.clone()),
                    None => return Err(EvalError::UnboundVariable(var.clone())),
                }
            }
            let entry = self.result.entry(group_key).or_insert(Number::Int(0));
            *entry = entry.add(multiplicity);
        }
        self.result.retain(|_, v| !v.is_zero());
        self.db.apply(update).expect("declared relation");
        Ok(())
    }

    /// The current result table.
    pub fn result(&self) -> &BTreeMap<Vec<Value>, Number> {
        &self.result
    }
}

impl MaintenanceStrategy for ClassicalIvm {
    fn strategy_name(&self) -> &'static str {
        "classical-ivm"
    }
    fn apply_update(&mut self, update: &Update) -> Result<(), String> {
        self.apply(update).map_err(|e| e.to_string())
    }
    fn current_result(&self) -> BTreeMap<Vec<Value>, Number> {
        self.result
            .iter()
            .filter(|(_, v)| !v.is_zero())
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
    // Probe the stored result directly instead of paying the default impl's full-table
    // materialization for a single key.
    fn result_value(&self, key: &[Value]) -> Number {
        self.result.get(key).copied().unwrap_or(Number::Int(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;

    fn customer_db() -> Database {
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db
    }

    fn customer_query() -> Query {
        parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap()
    }

    fn stream(n: i64) -> Vec<Update> {
        (0..n)
            .map(|i| {
                let nation = ["FR", "DE", "IT"][(i % 3) as usize];
                if i % 7 == 6 {
                    Update::delete(
                        "C",
                        vec![
                            Value::int(i - 3),
                            Value::str(["FR", "DE", "IT"][((i - 3) % 3) as usize]),
                        ],
                    )
                } else {
                    Update::insert("C", vec![Value::int(i), Value::str(nation)])
                }
            })
            .collect()
    }

    #[test]
    fn naive_and_classical_agree_on_example_5_2() {
        let mut naive = NaiveReeval::new(customer_db(), customer_query()).unwrap();
        let mut classical = ClassicalIvm::new(customer_db(), customer_query()).unwrap();
        for update in stream(40) {
            naive.apply(&update).unwrap();
            classical.apply(&update).unwrap();
            assert_eq!(
                naive.current_result(),
                classical.current_result(),
                "divergence after {update}"
            );
        }
        assert!(!naive.current_result().is_empty());
    }

    #[test]
    fn classical_ivm_on_scalar_count_query() {
        let mut db = Database::new();
        db.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let mut classical = ClassicalIvm::new(db, q).unwrap();
        let expected = [1i64, 4, 5, 10, 9, 16, 9];
        let trace = [
            Update::insert("R", vec![Value::str("c")]),
            Update::insert("R", vec![Value::str("c")]),
            Update::insert("R", vec![Value::str("d")]),
            Update::insert("R", vec![Value::str("c")]),
            Update::delete("R", vec![Value::str("d")]),
            Update::insert("R", vec![Value::str("c")]),
            Update::delete("R", vec![Value::str("c")]),
        ];
        for (u, e) in trace.iter().zip(expected) {
            classical.apply(u).unwrap();
            assert_eq!(classical.result_value(&[]), Number::Int(e));
        }
    }

    #[test]
    fn classical_ivm_accepts_a_precomputed_starting_result() {
        let mut db = customer_db();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(2), Value::str("FR")])
            .unwrap();
        let precomputed = eval_all_groups(&customer_query(), &db).unwrap();
        let mut from_result =
            ClassicalIvm::with_initial_result(db.clone(), customer_query(), precomputed).unwrap();
        let mut from_scratch = ClassicalIvm::new(db, customer_query()).unwrap();
        let update = Update::insert("C", vec![Value::int(3), Value::str("FR")]);
        from_result.apply(&update).unwrap();
        from_scratch.apply(&update).unwrap();
        assert_eq!(from_result.current_result(), from_scratch.current_result());
    }

    #[test]
    fn baselines_start_from_a_nonempty_database() {
        let mut db = customer_db();
        db.insert("C", vec![Value::int(1), Value::str("FR")])
            .unwrap();
        db.insert("C", vec![Value::int(2), Value::str("FR")])
            .unwrap();
        let naive = NaiveReeval::new(db.clone(), customer_query()).unwrap();
        assert_eq!(naive.result_value(&[Value::int(1)]), Number::Int(2));
        let mut classical = ClassicalIvm::new(db, customer_query()).unwrap();
        assert_eq!(classical.result_value(&[Value::int(1)]), Number::Int(2));
        classical
            .apply(&Update::insert("C", vec![Value::int(3), Value::str("FR")]))
            .unwrap();
        assert_eq!(classical.result_value(&[Value::int(1)]), Number::Int(3));
        assert_eq!(classical.result_value(&[Value::int(3)]), Number::Int(3));
    }

    #[test]
    fn updates_to_undeclared_relations_are_ignored() {
        let mut naive = NaiveReeval::new(customer_db(), customer_query()).unwrap();
        let mut classical = ClassicalIvm::new(customer_db(), customer_query()).unwrap();
        let update = Update::insert("Unrelated", vec![Value::int(1)]);
        naive.apply(&update).unwrap();
        classical.apply(&update).unwrap();
        assert!(naive.current_result().is_empty());
        assert!(classical.current_result().is_empty());
        assert_eq!(naive.strategy_name(), "naive");
        assert_eq!(classical.strategy_name(), "classical-ivm");
    }
}
