//! The trigger-program executor: recursive IVM at runtime.
//!
//! The executor owns one [`MapStorage`] per materialized view of a compiled
//! [`TriggerProgram`]. Applying a single-tuple update locates the matching trigger, binds
//! the trigger parameters to the update's values and runs the trigger's statements in
//! order. A statement is one monomial; statements without loop variables cost a constant
//! number of arithmetic operations, and statements with loop variables cost a constant
//! number of operations *per affected map entry* — the executor counts both so the
//! experiments can verify the paper's constant-work claim (Theorem 7.1) directly.
//!
//! The base relations are never consulted: after initialization the executor's maps are
//! the only state.

use std::collections::HashMap;

use dbring_algebra::{Number, Semiring};
use dbring_relations::{Database, Update, Value};

use dbring_agca::ast::Query;
use dbring_agca::eval::{compare_values, eval_all_groups, EvalError};
use dbring_compiler::{RhsFactor, ScalarExpr, Statement, TriggerProgram};
use dbring_delta::Sign;

use crate::storage::MapStorage;

/// Counters describing the work performed by the executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of single-tuple updates applied.
    pub updates: u64,
    /// Ring additions applied to map entries (one per write).
    pub additions: u64,
    /// Ring multiplications performed while evaluating statement monomials.
    pub multiplications: u64,
    /// Loop bindings enumerated across all statements.
    pub bindings_enumerated: u64,
}

impl ExecStats {
    /// Total arithmetic operations (additions + multiplications).
    pub fn arithmetic_ops(&self) -> u64 {
        self.additions + self.multiplications
    }
}

/// Errors raised while applying an update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// The update's value count does not match the trigger's parameter count.
    ArityMismatch {
        /// The updated relation.
        relation: String,
        /// Expected number of values.
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// A variable required by a statement was not bound (a compiler invariant violation).
    UnboundVariable(String),
    /// A non-numeric value reached an arithmetic position.
    NonNumericValue(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "update to {relation} carries {got} values, trigger expects {expected}"
            ),
            RuntimeError::UnboundVariable(v) => write!(f, "unbound variable {v} at runtime"),
            RuntimeError::NonNumericValue(c) => write!(f, "non-numeric value in {c}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

/// The recursive-IVM runtime for one compiled trigger program.
#[derive(Clone, Debug)]
pub struct Executor {
    program: TriggerProgram,
    maps: Vec<MapStorage>,
    stats: ExecStats,
}

impl Executor {
    /// Creates an executor with empty views (correct when starting from the empty
    /// database; otherwise call [`Executor::initialize_from`]).
    pub fn new(program: TriggerProgram) -> Self {
        let mut maps: Vec<MapStorage> = program
            .maps
            .iter()
            .map(|m| MapStorage::new(m.key_vars.len()))
            .collect();
        // Register the slice indexes each statement will need: for every lookup, the key
        // positions that are bound (by parameters or earlier lookups) at that point.
        for trigger in &program.triggers {
            for stmt in &trigger.statements {
                let mut bound: Vec<String> = trigger.params.clone();
                for factor in &stmt.factors {
                    if let RhsFactor::MapLookup { map, keys } = factor {
                        let positions: Vec<usize> = keys
                            .iter()
                            .enumerate()
                            .filter(|(_, k)| bound.contains(k))
                            .map(|(i, _)| i)
                            .collect();
                        if !positions.is_empty() && positions.len() < keys.len() {
                            maps[*map].register_index(positions);
                        }
                        for k in keys {
                            if !bound.contains(k) {
                                bound.push(k.clone());
                            }
                        }
                    }
                }
            }
        }
        Executor {
            program,
            maps,
            stats: ExecStats::default(),
        }
    }

    /// The compiled program this executor runs.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resets the work counters (e.g. after initialization, before a measurement run).
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// The storage of one materialized view.
    pub fn map(&self, id: usize) -> &MapStorage {
        &self.maps[id]
    }

    /// The output view's storage.
    pub fn output(&self) -> &MapStorage {
        &self.maps[self.program.output]
    }

    /// The output view as a sorted table.
    pub fn output_table(&self) -> std::collections::BTreeMap<Vec<Value>, Number> {
        self.output().iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// The output value for one group key (zero if absent).
    pub fn output_value(&self, key: &[Value]) -> Number {
        self.output().get(key)
    }

    /// Total number of entries across all views (the memory footprint of the hierarchy).
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(MapStorage::len).sum()
    }

    /// Loads every view from a non-empty starting database by evaluating its defining
    /// query with the reference evaluator (the initialization step of Section 1.1). The
    /// database is *not* retained: subsequent maintenance never touches it.
    pub fn initialize_from(&mut self, db: &Database) -> Result<(), EvalError> {
        for def in &self.program.maps {
            // Reorder the defining query once so that bulk initialization does not build
            // needless cross products (the trigger statements themselves never evaluate
            // these definitions).
            let bound = def.key_vars.iter().cloned().collect();
            let query = Query {
                name: def.name.clone(),
                group_by: def.key_vars.clone(),
                expr: dbring_agca::optimize::optimize_for_evaluation(&def.definition, &bound),
            };
            let groups = eval_all_groups(&query, db)?;
            for (key, value) in groups {
                self.maps[def.id].set(key, value);
            }
        }
        Ok(())
    }

    /// Applies a single-tuple update by running the matching trigger. Updates whose
    /// relation does not affect the query are ignored. Updates with |multiplicity| > 1 are
    /// treated as that many single-tuple updates.
    pub fn apply(&mut self, update: &Update) -> Result<(), RuntimeError> {
        let sign = if update.multiplicity >= 0 {
            Sign::Insert
        } else {
            Sign::Delete
        };
        let Some(trigger_index) = self
            .program
            .triggers
            .iter()
            .position(|t| t.relation == update.relation && t.sign == sign)
        else {
            return Ok(());
        };
        let trigger = &self.program.triggers[trigger_index];
        if trigger.params.len() != update.values.len() {
            return Err(RuntimeError::ArityMismatch {
                relation: update.relation.clone(),
                expected: trigger.params.len(),
                got: update.values.len(),
            });
        }
        let env: HashMap<String, Value> = trigger
            .params
            .iter()
            .cloned()
            .zip(update.values.iter().cloned())
            .collect();
        for _ in 0..update.multiplicity.unsigned_abs() {
            self.stats.updates += 1;
            for stmt_index in 0..self.program.triggers[trigger_index].statements.len() {
                let stmt = &self.program.triggers[trigger_index].statements[stmt_index];
                Self::execute_statement(&mut self.maps, &mut self.stats, stmt, &env)?;
            }
        }
        Ok(())
    }

    /// Applies a sequence of updates.
    pub fn apply_all<'a>(
        &mut self,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> Result<(), RuntimeError> {
        for u in updates {
            self.apply(u)?;
        }
        Ok(())
    }

    fn execute_statement(
        maps: &mut [MapStorage],
        stats: &mut ExecStats,
        stmt: &Statement,
        base_env: &HashMap<String, Value>,
    ) -> Result<(), RuntimeError> {
        // The set of candidate bindings, each with the product accumulated so far.
        let mut envs: Vec<(HashMap<String, Value>, Number)> =
            vec![(base_env.clone(), Number::Int(1))];
        for factor in &stmt.factors {
            if envs.is_empty() {
                break;
            }
            match factor {
                RhsFactor::MapLookup { map, keys } => {
                    let storage = &maps[*map];
                    let mut next = Vec::new();
                    for (env, acc) in envs {
                        let mut bound_positions = Vec::new();
                        let mut bound_values = Vec::new();
                        let mut unbound_positions = Vec::new();
                        for (i, key_var) in keys.iter().enumerate() {
                            match env.get(key_var) {
                                Some(v) => {
                                    bound_positions.push(i);
                                    bound_values.push(v.clone());
                                }
                                None => unbound_positions.push(i),
                            }
                        }
                        if unbound_positions.is_empty() {
                            let value = storage.get(&bound_values);
                            if value.is_zero() {
                                continue;
                            }
                            stats.multiplications += 1;
                            next.push((env, acc.mul(&value)));
                        } else {
                            for (full_key, value) in storage.slice(&bound_positions, &bound_values)
                            {
                                let mut extended = env.clone();
                                let mut consistent = true;
                                for &i in &unbound_positions {
                                    let var = &keys[i];
                                    let val = full_key[i].clone();
                                    match extended.get(var) {
                                        Some(existing) if *existing != val => {
                                            consistent = false;
                                            break;
                                        }
                                        _ => {
                                            extended.insert(var.clone(), val);
                                        }
                                    }
                                }
                                if !consistent {
                                    continue;
                                }
                                stats.multiplications += 1;
                                stats.bindings_enumerated += 1;
                                next.push((extended, acc.mul(&value)));
                            }
                        }
                    }
                    envs = next;
                }
                RhsFactor::Scalar(term) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for (env, acc) in envs {
                        let value = eval_scalar(term, &env)?;
                        let number = value
                            .as_number()
                            .ok_or_else(|| RuntimeError::NonNumericValue(term.to_string()))?;
                        if number.is_zero() {
                            continue;
                        }
                        stats.multiplications += 1;
                        next.push((env, acc.mul(&number)));
                    }
                    envs = next;
                }
                RhsFactor::Guard(op, lhs, rhs) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for (env, acc) in envs {
                        let l = eval_scalar(lhs, &env)?;
                        let r = eval_scalar(rhs, &env)?;
                        if op.test(compare_values(&l, &r)) {
                            next.push((env, acc));
                        }
                    }
                    envs = next;
                }
            }
        }
        // Collect all writes first, then apply (a statement never reads its own writes).
        let mut writes: Vec<(Vec<Value>, Number)> = Vec::with_capacity(envs.len());
        for (env, acc) in envs {
            if acc.is_zero() {
                continue;
            }
            let mut key = Vec::with_capacity(stmt.target_keys.len());
            for var in &stmt.target_keys {
                key.push(
                    env.get(var)
                        .cloned()
                        .ok_or_else(|| RuntimeError::UnboundVariable(var.clone()))?,
                );
            }
            writes.push((key, stmt.coefficient.mul(&acc)));
        }
        for (key, delta) in writes {
            stats.additions += 1;
            maps[stmt.target].add(key, delta);
        }
        Ok(())
    }
}

fn eval_scalar(term: &ScalarExpr, env: &HashMap<String, Value>) -> Result<Value, RuntimeError> {
    fn numeric(term: &ScalarExpr, env: &HashMap<String, Value>) -> Result<Number, RuntimeError> {
        let v = eval_scalar(term, env)?;
        v.as_number()
            .ok_or_else(|| RuntimeError::NonNumericValue(term.to_string()))
    }
    match term {
        ScalarExpr::Const(v) => Ok(v.clone()),
        ScalarExpr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| RuntimeError::UnboundVariable(x.clone())),
        ScalarExpr::Add(a, b) => Ok(Value::from(numeric(a, env)?.add(&numeric(b, env)?))),
        ScalarExpr::Mul(a, b) => Ok(Value::from(numeric(a, env)?.mul(&numeric(b, env)?))),
        ScalarExpr::Neg(a) => Ok(Value::from(numeric(a, env)?.mul(&Number::Int(-1)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;
    use dbring_compiler::compile;

    fn customer_catalog() -> Database {
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db
    }

    fn customers_program() -> TriggerProgram {
        let catalog = customer_catalog();
        let q = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        compile(&catalog, &q).unwrap()
    }

    fn insert(cid: i64, nation: &str) -> Update {
        Update::insert("C", vec![Value::int(cid), Value::str(nation)])
    }

    fn delete(cid: i64, nation: &str) -> Update {
        Update::delete("C", vec![Value::int(cid), Value::str(nation)])
    }

    #[test]
    fn example_5_2_maintained_incrementally() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        exec.apply(&insert(2, "FR")).unwrap();
        exec.apply(&insert(3, "DE")).unwrap();
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(2));
        assert_eq!(exec.output_value(&[Value::int(2)]), Number::Int(2));
        assert_eq!(exec.output_value(&[Value::int(3)]), Number::Int(1));
        // Deleting customer 2 drops customer 1's count back to 1 and removes group 2.
        exec.apply(&delete(2, "FR")).unwrap();
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(1));
        assert_eq!(exec.output_value(&[Value::int(2)]), Number::Int(0));
        assert_eq!(exec.output_table().len(), 2);
    }

    #[test]
    fn example_1_2_update_trace() {
        // q = SELECT count(*) FROM R r1, R r2 WHERE r1.A = r2.A, maintained over the exact
        // update trace of Example 1.2; expected values are from the paper's table.
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let program = compile(&catalog, &q).unwrap();
        let mut exec = Executor::new(program);
        let ins = |v: &str| Update::insert("R", vec![Value::str(v)]);
        let del = |v: &str| Update::delete("R", vec![Value::str(v)]);
        let trace = [
            (ins("c"), 1),
            (ins("c"), 4),
            (ins("d"), 5),
            (ins("c"), 10),
            (del("d"), 9),
            (ins("c"), 16),
            (del("c"), 9),
        ];
        for (update, expected) in trace {
            exec.apply(&update).unwrap();
            assert_eq!(
                exec.output_value(&[]),
                Number::Int(expected),
                "after {update}"
            );
        }
    }

    #[test]
    fn constant_work_per_update_for_the_self_join_count() {
        // The Example 1.2 trigger has no loop variables, so the arithmetic work per update
        // must be independent of how many tuples have been inserted.
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let mut exec = Executor::new(compile(&catalog, &q).unwrap());
        let mut per_update = Vec::new();
        for i in 0..200 {
            let before = exec.stats().arithmetic_ops();
            exec.apply(&Update::insert("R", vec![Value::int(i % 5)]))
                .unwrap();
            per_update.push(exec.stats().arithmetic_ops() - before);
        }
        let max = *per_update.iter().max().unwrap();
        let min = *per_update[10..].iter().min().unwrap();
        assert!(max <= 12, "ops per update stay bounded, got {max}");
        assert!(
            max <= min + 4,
            "ops per update do not grow with the database"
        );
    }

    #[test]
    fn initialization_from_a_nonempty_database_matches_streaming() {
        let mut db = customer_catalog();
        let updates: Vec<Update> = (0..30)
            .map(|i| insert(i, ["FR", "DE", "IT"][(i % 3) as usize]))
            .collect();
        for u in &updates {
            db.apply(u).unwrap();
        }
        // Path A: stream everything through the executor from empty.
        let mut streamed = Executor::new(customers_program());
        streamed.apply_all(&updates).unwrap();
        // Path B: initialize from the loaded database, then stream nothing.
        let mut initialized = Executor::new(customers_program());
        initialized.initialize_from(&db).unwrap();
        assert_eq!(streamed.output_table(), initialized.output_table());
        // Both paths then agree on further maintenance.
        let more = insert(100, "FR");
        streamed.apply(&more).unwrap();
        initialized.apply(&more).unwrap();
        assert_eq!(streamed.output_table(), initialized.output_table());
    }

    #[test]
    fn irrelevant_updates_are_ignored_and_arity_is_checked() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&Update::insert("Other", vec![Value::int(1)]))
            .unwrap();
        assert!(exec.output_table().is_empty());
        let err = exec
            .apply(&Update::insert("C", vec![Value::int(1)]))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
        assert!(err.to_string().contains("1 values"));
    }

    #[test]
    fn batched_multiplicity_updates() {
        let mut exec = Executor::new(customers_program());
        let mut batch = insert(1, "FR");
        batch.multiplicity = 3;
        exec.apply(&batch).unwrap();
        // Three identical customers of the same nation: each of the 3 sees 3 → 3 per group
        // key... group key is cid=1, so the count is 9.
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(9));
        assert_eq!(exec.stats().updates, 3);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        let stats = exec.stats();
        assert_eq!(stats.updates, 1);
        assert!(stats.additions > 0);
        assert!(stats.arithmetic_ops() >= stats.additions);
        exec.reset_stats();
        assert_eq!(exec.stats(), ExecStats::default());
        assert!(exec.total_entries() > 0);
    }

    #[test]
    fn value_aggregation_with_floats() {
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
        let q = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let mut exec = Executor::new(compile(&catalog, &q).unwrap());
        exec.apply(&Update::insert(
            "Sales",
            vec![Value::int(7), Value::float(2.5), Value::int(4)],
        ))
        .unwrap();
        exec.apply(&Update::insert(
            "Sales",
            vec![Value::int(7), Value::float(1.0), Value::int(3)],
        ))
        .unwrap();
        assert_eq!(exec.output_value(&[Value::int(7)]), Number::Float(13.0));
        exec.apply(&Update::delete(
            "Sales",
            vec![Value::int(7), Value::float(1.0), Value::int(3)],
        ))
        .unwrap();
        assert_eq!(exec.output_value(&[Value::int(7)]), Number::Float(10.0));
    }
}
