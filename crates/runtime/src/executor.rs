//! The trigger-program executor: recursive IVM at runtime, over a lowered
//! [`ExecPlan`].
//!
//! Construction lowers the compiled [`TriggerProgram`] once (see
//! [`dbring_compiler::lower`](dbring_compiler::lower())): every variable becomes a fixed `u16` slot in a flat
//! per-trigger frame, every map lookup is pre-classified as a fully-bound `Probe` or a
//! partially-bound `Enumerate` with its slice-index pattern fixed, and every scalar and
//! guard is rewritten over slots. Applying a single-tuple update then runs the matching
//! plan trigger's statements over reusable frame buffers: no `HashMap` environments, no
//! per-binding environment clones, no name resolution, and — in the steady state, when
//! the touched map entries already exist — no heap allocation at all (lookup keys are
//! assembled in a scratch buffer, writes go through
//! [`ViewStorage::add_ref`], candidate
//! frames reuse the capacity of the previous statement's buffers, and the [`Value`]
//! clones this involves never allocate: ints/floats/bools are `Copy`-sized and strings
//! are `Arc`-interned, so a clone is a refcount bump).
//!
//! The executor is generic over the [`ViewStorage`] backend holding its materialized
//! views, defaulting to [`HashViewStorage`] (the backend the zero-allocation steady
//! state was tuned on); `Executor::<OrderedViewStorage>::with_backend` runs the same
//! plans over ordered storage. The plan's Probe/Enumerate ops call the trait's
//! monomorphized methods, so backend dispatch costs nothing at runtime.
//!
//! A statement without loop variables costs a constant number of arithmetic operations;
//! a statement with loop variables costs a constant number of operations *per affected
//! map entry* — the executor counts both, identically to the reference
//! [`InterpretedExecutor`](crate::interp::InterpretedExecutor), so the experiments can
//! verify the paper's constant-work claim (Theorem 7.1) directly and the two paths can
//! be checked against each other operation-for-operation.
//!
//! The base relations are never consulted: after initialization the executor's maps are
//! the only state.

use dbring_algebra::{Number, Semiring};
use dbring_relations::intern::{Interner, KeyPool};
use dbring_relations::{Database, DeltaBatch, Update, Value};

use dbring_agca::ast::Query;
use dbring_agca::eval::{compare_values, eval_all_groups, EvalError};
use dbring_compiler::{
    lower, ExecPlan, LowerError, PlanOp, PlanStatement, PlanTrigger, SlotExpr, TriggerProgram,
    UnboundKey,
};
use dbring_delta::Sign;

use std::collections::HashMap;

use crate::storage::{HashViewStorage, StorageFootprint, ViewStorage};

/// Counters describing the work performed by the executor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of single-tuple updates applied.
    pub updates: u64,
    /// Ring additions applied to map entries (one per write).
    pub additions: u64,
    /// Ring multiplications performed while evaluating statement monomials.
    pub multiplications: u64,
    /// Loop bindings enumerated across all statements.
    pub bindings_enumerated: u64,
}

impl ExecStats {
    /// Total arithmetic operations (additions + multiplications).
    pub fn arithmetic_ops(&self) -> u64 {
        self.additions + self.multiplications
    }
}

/// Errors raised while applying an update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RuntimeError {
    /// The update's value count does not match the trigger's parameter count.
    ArityMismatch {
        /// The updated relation.
        relation: String,
        /// Expected number of values.
        expected: usize,
        /// Provided number of values.
        got: usize,
    },
    /// A variable required by a statement was not bound (a compiler invariant violation).
    UnboundVariable(String),
    /// A non-numeric value reached an arithmetic position.
    NonNumericValue(String),
    /// A multi-update application failed at the update with the given index; every
    /// update *before* it was already applied ([`Executor::apply_all`] is not atomic).
    AtUpdate {
        /// Zero-based position of the failing update in the applied sequence.
        index: usize,
        /// The underlying failure.
        source: Box<RuntimeError>,
    },
    /// A view engine panicked while a dispatched batch was being staged or rolled
    /// back (a storage invariant violation, an injected fault, a bug). The panic was
    /// caught at the dispatch layer and the slot quarantined: its state can no longer
    /// be trusted, so reads are refused and ingest skips it until it is rebuilt from
    /// the base snapshot (`Ring::repair_view`). Sibling views were rolled back, so
    /// the failing batch landed nowhere.
    EnginePanicked {
        /// The registry slot of the view whose engine panicked.
        slot: u32,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "update to {relation} carries {got} values, trigger expects {expected}"
            ),
            RuntimeError::UnboundVariable(v) => write!(f, "unbound variable {v} at runtime"),
            RuntimeError::NonNumericValue(c) => write!(f, "non-numeric value in {c}"),
            RuntimeError::AtUpdate { index, source } => write!(
                f,
                "update #{index} failed: {source} (updates 0..{index} were already applied)"
            ),
            RuntimeError::EnginePanicked { slot } => write!(
                f,
                "view engine at slot {slot} panicked during batch dispatch; the view is \
                 quarantined until repaired"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::AtUpdate { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Reusable buffers for the statement inner loop. Candidate bindings live in a flat
/// value buffer (`stride` = the trigger's frame length) with a parallel accumulator
/// vector; enumeration fans out into the `next_*` pair and the pairs swap. Capacity is
/// retained across statements and updates, so the steady state allocates nothing.
#[derive(Clone, Debug, Default)]
struct Scratch {
    /// The param-initialized frame template for the current update.
    base_frame: Vec<Value>,
    /// Current candidate frames, `stride` values per candidate.
    cur_vals: Vec<Value>,
    /// Accumulated products, one per current candidate.
    cur_accs: Vec<Number>,
    /// Fan-out target for `Enumerate` ops.
    next_vals: Vec<Value>,
    /// Fan-out accumulators.
    next_accs: Vec<Number>,
    /// Key assembly buffer for probes, slices and writes.
    key_buf: Vec<Value>,
    /// Per-map write buffers for the batch path's weighted (deferred-write) triggers,
    /// indexed by map id. Capacity is retained across groups and batches.
    write_bufs: Vec<WriteBuf>,
    /// Map ids whose write buffer went non-empty since the last batch entry — the
    /// next `apply_batch` clears exactly these instead of sweeping every buffer (an
    /// O(maps) cost that dwarfed tiny batches on wide programs). May hold ids whose
    /// buffer was since flushed (clearing an empty buffer is free) and survives a
    /// failed batch, so leaked writes still get dropped.
    dirty: Vec<usize>,
    /// Interner backing the flush path's fixed-width keys; grows with the distinct
    /// strings the executor has flushed and persists across batches (ids are stable
    /// for the executor's lifetime).
    flush_interner: Interner,
    /// Reusable fixed-width key pool for write-buffer consolidation: duplicates
    /// collapse on arrival through the pool's scratch hash table and only distinct
    /// keys get sorted, replacing the old `Vec<Value>` comparison sort. Capacity is
    /// retained across flushes.
    flush_pool: KeyPool,
    /// Per-group accumulator sums for one flush, indexed by the pool's group ids.
    flush_sums: Vec<Number>,
    /// Per-group representative row (first occurrence in the write buffer).
    flush_reps: Vec<u32>,
}

/// A flat write buffer for one map: `accs.len()` buffered deltas whose keys live
/// contiguously in `keys` (stride = the map's key arity). Flat storage means buffering
/// a write costs no allocation once the capacity is warm — the batch path stays as
/// allocation-lean as the per-tuple path.
#[derive(Clone, Debug, Default)]
struct WriteBuf {
    keys: Vec<Value>,
    accs: Vec<Number>,
}

/// One logged pre-image: the exact value `map` held under the `key_len` key values
/// preceding this op's position in the log's flat key arena, before a staged write
/// touched it (zero ⇔ absent — maps never store explicit zeros).
#[derive(Clone, Copy, Debug)]
struct UndoOp {
    map: u32,
    key_len: u32,
    pre: Number,
}

/// The staged-ingest undo log: pre-images of every written entry, stored as a flat
/// arena — one fixed-size [`UndoOp`] per write plus the key values appended to one
/// shared buffer. Logging a write therefore performs **no allocation** once the two
/// vectors are warm (the executor recycles the log across batches), which is what
/// keeps staged ingest within a few percent of the direct path.
///
/// One pre-image per *distinct* `(map, key)` per batch suffices: only the first
/// write to a key sees its pre-batch value, so [`UndoLog::push_once`] keeps a
/// per-batch seen-set (hash buckets verified by key comparison against the arena —
/// a collision can never suppress a needed pre-image) and skips both the log append
/// *and* the caller's pre-image probe for keys already captured. Enumeration-heavy
/// unit-replay triggers rewrite the same hot keys hundreds of times per batch; this
/// is what keeps their staging overhead bounded by the *distinct* write set.
///
/// The consolidated flush path uses [`UndoLog::push_unchecked`] instead: keys in one
/// consolidated run are already unique, the pre-image is learned inside the landing
/// lookup (no probe to save), and a duplicate entry from a *different* flush of the
/// same batch is harmless — reverse-order restore replays the earliest (true)
/// pre-image last — so the per-write seen-set check would cost more than the rare
/// duplicate append it avoids.
///
/// Restoring the ops in *reverse* order via [`ViewStorage::restore`] reproduces the
/// pre-batch storage bit-exactly, because the first op logged for a key holds its
/// original value and is restored last (with deduplication it is also the *only*
/// op for that key, which restores the same state).
#[derive(Clone, Debug, Default)]
pub(crate) struct UndoLog {
    ops: Vec<UndoOp>,
    keys: Vec<Value>,
    /// Per-batch seen-set: hash of `(map, key)` → ops already logged under that
    /// hash, as `(map, key start, key len)` offsets into `keys` for verification.
    seen: HashMap<u64, Vec<(u32, u32, u32)>>,
}

impl UndoLog {
    fn hash_key(map: usize, key: &[Value]) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        map.hash(&mut h);
        key.hash(&mut h);
        h.finish()
    }

    /// Appends one pre-image without consulting or updating the seen-set.
    #[inline]
    fn append(&mut self, map: usize, key: &[Value], pre: Number) -> u32 {
        let start = self.keys.len() as u32;
        self.keys.extend_from_slice(key);
        self.ops.push(UndoOp {
            map: map as u32,
            key_len: key.len() as u32,
            pre,
        });
        start
    }

    /// Whether this batch already logged a pre-image for `(map, key)`; if not,
    /// records it as logged. The caller only probes and appends on `false`.
    #[inline]
    fn note_unlogged(&mut self, map: usize, key: &[Value]) -> Option<u64> {
        let hash = Self::hash_key(map, key);
        if let Some(bucket) = self.seen.get(&hash) {
            for &(m, start, len) in bucket {
                let slice = &self.keys[start as usize..(start + len) as usize];
                if m as usize == map && slice == key {
                    return None;
                }
            }
        }
        Some(hash)
    }

    /// Logs `key`'s pre-image unless this batch already logged it for `map`. The
    /// pre-image is probed lazily — a repeat write skips the probe entirely.
    #[inline]
    pub(crate) fn push_once(&mut self, map: usize, key: &[Value], pre: impl FnOnce() -> Number) {
        let Some(hash) = self.note_unlogged(map, key) else {
            return;
        };
        let pre = pre();
        let start = self.append(map, key, pre);
        self.seen
            .entry(hash)
            .or_default()
            .push((map as u32, start, key.len() as u32));
    }

    /// Logs `key`'s pre-image without consulting the seen-set — for the consolidated
    /// flush path, where keys are unique within a run, the pre-image is already in
    /// hand, and cross-flush duplicates restore correctly in reverse order.
    #[inline]
    pub(crate) fn push_unchecked(&mut self, map: usize, key: &[Value], pre: Number) {
        self.append(map, key, pre);
    }

    /// Number of logged pre-images.
    pub(crate) fn len(&self) -> usize {
        self.ops.len()
    }

    /// Empties the log, keeping the allocations (arena, ops, seen-set buckets) for
    /// reuse by the next batch.
    pub(crate) fn clear(&mut self) {
        self.ops.clear();
        self.keys.clear();
        self.seen.clear();
    }
}

/// The token a successful [`Executor::stage_batch`] (or
/// [`InterpretedExecutor::stage_batch`](crate::interp::InterpretedExecutor::stage_batch))
/// returns: proof that the batch evaluated cleanly, plus everything needed to undo it.
///
/// Staging *applies* the batch — later trigger groups must read the writes of earlier
/// ones (the second-order `δR·δS` term of a multi-relation batch), so the writes cannot
/// simply be deferred — while logging the pre-image of every touched entry.
/// [`Executor::commit_staged`] makes the batch permanent by discarding the log;
/// [`Executor::abort_staged`] replays the log in reverse, leaving tables *and*
/// [`ExecStats`] bit-identical to the pre-stage state. The memory cost of staging is
/// this log: one `(map, key, value)` triple per write the batch performed
/// ([`StagedBatch::logged_writes`]), released at commit.
///
/// A token must be returned — committed or aborted — to the engine that produced it;
/// the dispatch layer ([`EngineRegistry`](crate::registry::EngineRegistry)) keeps
/// tokens slot-aligned for exactly that reason.
#[derive(Clone, Debug)]
pub struct StagedBatch {
    pub(crate) undo: UndoLog,
    pub(crate) stats_before: ExecStats,
}

impl StagedBatch {
    /// Number of logged pre-images — the staging memory cost, one `(map, key, value)`
    /// triple per write performed while staging.
    pub fn logged_writes(&self) -> usize {
        self.undo.len()
    }
}

/// Replays an undo log in reverse, restoring every touched entry to its logged
/// pre-image bit-exactly. Shared by both executor families.
pub(crate) fn rollback_maps<S: ViewStorage>(maps: &mut [S], undo: &UndoLog) {
    let mut end = undo.keys.len();
    for op in undo.ops.iter().rev() {
        let start = end - op.key_len as usize;
        maps[op.map as usize].restore(&undo.keys[start..end], op.pre);
        end = start;
    }
}

/// The recursive-IVM runtime for one compiled trigger program, generic over the
/// [`ViewStorage`] backend its materialized views live in (default: the hash backend).
#[derive(Clone, Debug)]
pub struct Executor<S: ViewStorage = HashViewStorage> {
    program: TriggerProgram,
    plan: ExecPlan,
    maps: Vec<S>,
    /// Relation name → plan-trigger index per sign (`[insert, delete]`); updates are
    /// dispatched without allocating or scanning the trigger list.
    dispatch: HashMap<String, [Option<usize>; 2]>,
    stats: ExecStats,
    scratch: Scratch,
    /// Thread budget for sharding large batched flushes across key ranges; `1` (the
    /// initial state) keeps every flush on the sequential `apply_sorted` path.
    shard_threads: usize,
    /// Recycled undo-log allocation: staging takes it, commit/abort hand it back, so
    /// steady-state staging allocates nothing for the log itself.
    undo_pool: UndoLog,
}

impl Executor<HashViewStorage> {
    /// Creates an executor with empty views on the default hash backend (correct when
    /// starting from the empty database; otherwise call [`Executor::initialize_from`]).
    /// For another backend, name it: `Executor::<OrderedViewStorage>::with_backend`.
    ///
    /// The program is lowered to its [`ExecPlan`] here, and the slice-index patterns the
    /// plan's enumerations need are registered on the view storage.
    ///
    /// # Panics
    /// Panics if the program does not lower — impossible for programs produced by
    /// [`dbring_compiler::compile`](dbring_compiler::compile()), which validates; use [`Executor::try_new`] for
    /// hand-built programs that may not.
    pub fn new(program: TriggerProgram) -> Self {
        Self::with_backend(program)
    }

    /// Fallible construction: like [`Executor::new`] but surfaces lowering problems
    /// (structural invalidity, read-before-bind) as a [`LowerError`] instead of
    /// panicking.
    pub fn try_new(program: TriggerProgram) -> Result<Self, LowerError> {
        Self::try_with_backend(program)
    }
}

impl<S: ViewStorage> Executor<S> {
    /// Creates an executor with empty views on the backend named by the type parameter,
    /// e.g. `Executor::<OrderedViewStorage>::with_backend(program)`.
    ///
    /// # Panics
    /// Panics if the program does not lower; use [`Executor::try_with_backend`] for
    /// hand-built programs that may not.
    pub fn with_backend(program: TriggerProgram) -> Self {
        Self::try_with_backend(program).expect("compiled trigger programs always lower")
    }

    /// Fallible construction on an explicit backend: surfaces lowering problems
    /// (structural invalidity, read-before-bind) as a [`LowerError`] instead of
    /// panicking.
    pub fn try_with_backend(program: TriggerProgram) -> Result<Self, LowerError> {
        let plan = lower(&program)?;
        let mut maps: Vec<S> = plan.map_arities.iter().map(|&a| S::new(a)).collect();
        for (map, pattern) in &plan.index_registrations {
            maps[*map].register_index(pattern.clone());
        }
        let mut dispatch: HashMap<String, [Option<usize>; 2]> = HashMap::new();
        for (i, t) in plan.triggers.iter().enumerate() {
            let entry = dispatch.entry(t.relation.clone()).or_insert([None, None]);
            let slot = &mut entry[sign_index(t.sign)];
            // First match wins, matching the interpreter's linear-scan dispatch (the
            // compiler never emits duplicate (relation, sign) triggers, but hand-built
            // programs may).
            if slot.is_none() {
                *slot = Some(i);
            }
        }
        Ok(Executor {
            program,
            plan,
            maps,
            dispatch,
            stats: ExecStats::default(),
            scratch: Scratch::default(),
            shard_threads: 1,
            undo_pool: UndoLog::default(),
        })
    }

    /// Sets the thread budget for sharding large batched flushes across contiguous
    /// key ranges (see
    /// [`ViewStorage::apply_sorted_sharded`]).
    /// `1` (the initial state) keeps every flush on the sequential `apply_sorted`
    /// path, exactly. Values are clamped to at least 1. The result is independent of
    /// the budget for integer aggregates; float aggregates may differ by rounding,
    /// as with any accumulation-order change.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.shard_threads = threads.max(1);
    }

    /// The configured shard-flush thread budget.
    pub fn parallelism(&self) -> usize {
        self.shard_threads
    }

    /// The compiled program this executor runs.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// The lowered execution plan the hot path runs.
    pub fn plan(&self) -> &ExecPlan {
        &self.plan
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resets the work counters (e.g. after initialization, before a measurement run).
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// The storage of one materialized view.
    pub fn map(&self, id: usize) -> &S {
        &self.maps[id]
    }

    /// The output view's storage.
    pub fn output(&self) -> &S {
        &self.maps[self.program.output]
    }

    /// The output view as a sorted table.
    pub fn output_table(&self) -> std::collections::BTreeMap<Vec<Value>, Number> {
        self.output().to_table()
    }

    /// The output value for one group key (zero if absent).
    pub fn output_value(&self, key: &[Value]) -> Number {
        self.output().get(key)
    }

    /// Total number of entries across all views (the memory footprint of the hierarchy).
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(S::len).sum()
    }

    /// The aggregate memory proxy of the whole view hierarchy: entries plus the
    /// secondary-index structure the backend maintains next to them.
    pub fn storage_footprint(&self) -> StorageFootprint {
        self.maps
            .iter()
            .map(S::footprint)
            .fold(StorageFootprint::default(), StorageFootprint::merge)
    }

    /// Loads every view from a non-empty starting database by evaluating its defining
    /// query with the reference evaluator (the initialization step of Section 1.1). The
    /// database is *not* retained: subsequent maintenance never touches it.
    pub fn initialize_from(&mut self, db: &Database) -> Result<(), EvalError> {
        initialize_maps(&self.program, &mut self.maps, db)
    }

    /// Applies a single-tuple update by running the matching plan trigger. Updates whose
    /// relation does not affect the query are ignored. Updates with |multiplicity| > 1 are
    /// treated as that many single-tuple updates, and an update with multiplicity 0 is an
    /// explicit no-op: it fires nothing, checks nothing (not even arity) and leaves the
    /// work counters untouched.
    ///
    /// On error the update may be partially applied (a failure between the firings of a
    /// |multiplicity| > 1 update leaves the earlier firings in place); use
    /// [`Executor::stage_update`] when the caller needs all-or-nothing per-update
    /// semantics.
    pub fn apply(&mut self, update: &Update) -> Result<(), RuntimeError> {
        self.apply_logged(update, &mut None)
    }

    /// Stages a single-tuple update: applies it while logging pre-images, so the caller
    /// can [`commit_staged`](Executor::commit_staged) or
    /// [`abort_staged`](Executor::abort_staged) it. On `Err` the engine has already been
    /// rolled back — tables and stats are bit-identical to before the call, even for a
    /// failure between the firings of a |multiplicity| > 1 update.
    pub fn stage_update(&mut self, update: &Update) -> Result<StagedBatch, RuntimeError> {
        let stats_before = self.stats;
        let mut undo = std::mem::take(&mut self.undo_pool);
        match self.apply_logged(update, &mut Some(&mut undo)) {
            Ok(()) => Ok(StagedBatch { undo, stats_before }),
            Err(e) => {
                rollback_maps(&mut self.maps, &undo);
                self.stats = stats_before;
                self.recycle(undo);
                Err(e)
            }
        }
    }

    /// Hands a finished undo log's allocation back to the pool.
    fn recycle(&mut self, mut undo: UndoLog) {
        undo.clear();
        self.undo_pool = undo;
    }

    fn apply_logged(
        &mut self,
        update: &Update,
        undo: &mut Option<&mut UndoLog>,
    ) -> Result<(), RuntimeError> {
        if update.multiplicity == 0 {
            return Ok(());
        }
        let sign = if update.multiplicity >= 0 {
            Sign::Insert
        } else {
            Sign::Delete
        };
        let Some(trigger_index) = self
            .dispatch
            .get(update.relation.as_str())
            .and_then(|per_sign| per_sign[sign_index(sign)])
        else {
            return Ok(());
        };
        let Self {
            plan,
            maps,
            stats,
            scratch,
            ..
        } = self;
        let trigger = &plan.triggers[trigger_index];
        if trigger.param_slots.len() != update.values.len() {
            return Err(RuntimeError::ArityMismatch {
                relation: update.relation.clone(),
                expected: trigger.param_slots.len(),
                got: update.values.len(),
            });
        }
        // Build the param-initialized frame template once per update. Unbound slots hold
        // a placeholder; `ExecPlan::verify_slot_liveness` (run at lowering) guarantees
        // every slot is written before it is read, so the placeholder is unreachable.
        scratch.base_frame.clear();
        scratch.base_frame.resize(trigger.frame_len, Value::Int(0));
        for (&slot, value) in trigger.param_slots.iter().zip(&update.values) {
            scratch.base_frame[slot as usize] = value.clone();
        }
        for _ in 0..update.multiplicity.unsigned_abs() {
            stats.updates += 1;
            for stmt in &trigger.statements {
                run_statement(maps, stats, scratch, trigger, stmt, undo)?;
            }
        }
        Ok(())
    }

    /// Applies a sequence of updates, one trigger firing per single-tuple update.
    ///
    /// **Not atomic:** updates are applied in order, and a failure leaves every update
    /// *before* the failing one applied. The error is wrapped in
    /// [`RuntimeError::AtUpdate`] carrying the failing update's index, so callers know
    /// exactly how many updates landed.
    pub fn apply_all<'a>(
        &mut self,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> Result<(), RuntimeError> {
        for (index, u) in updates.into_iter().enumerate() {
            self.apply(u).map_err(|e| RuntimeError::AtUpdate {
                index,
                source: Box::new(e),
            })?;
        }
        Ok(())
    }

    /// Applies a normalized [`DeltaBatch`] — the batch counterpart of
    /// [`Executor::apply_all`], equivalent to applying the batch's source updates one by
    /// one (in any order: the maintained views depend only on the net delta) but doing
    /// per-group work once instead of per tuple:
    ///
    /// * one trigger dispatch and one frame-template setup per `(relation, sign)` group
    ///   rather than per update;
    /// * for triggers whose delta is degree ≤ 1 in the updated relation
    ///   ([`PlanTrigger::weighted_firing`]), one firing per *distinct* tuple with the
    ///   writes scaled by the tuple's consolidated weight — writes are buffered, sorted,
    ///   consolidated and handed to [`ViewStorage::apply_sorted`] in one sequential pass
    ///   per map (on ordered backends, a merge) — or, with a shard-thread budget above
    ///   one (see [`Executor::set_parallelism`]), to
    ///   [`ViewStorage::apply_sorted_sharded`],
    ///   which lands large runs as concurrent contiguous key ranges;
    /// * for self-join-style triggers that read their own targets, a unit-replay
    ///   fallback preserving the exact per-tuple semantics.
    ///
    /// Consolidation means cancelled `+t`/`-t` pairs never fire at all, and the work
    /// counters reflect the work actually done — fewer operations than the per-tuple
    /// path on weighted triggers is exactly the measured win.
    ///
    /// Integer-valued aggregates end bit-identical to the per-tuple path. Float-valued
    /// aggregates may differ by rounding: consolidation reorders and scales the
    /// accumulation, and IEEE-754 addition is order-sensitive.
    ///
    /// **Atomic per view:** this is [`stage_batch`](Executor::stage_batch) followed by
    /// an immediate [`commit_staged`](Executor::commit_staged), so on `Err` the engine's
    /// tables and [`ExecStats`] are bit-identical to before the call — on the weighted
    /// path *and* the unit-replay path. Callers that own their own recovery (or are
    /// measuring) can skip the pre-image log with
    /// [`apply_batch_direct`](Executor::apply_batch_direct).
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<(), RuntimeError> {
        let staged = self.stage_batch(batch)?;
        self.commit_staged(staged);
        Ok(())
    }

    /// Stages a batch: applies it exactly as [`apply_batch`](Executor::apply_batch)
    /// while logging the pre-image of every write, returning the [`StagedBatch`] token
    /// to later [`commit_staged`](Executor::commit_staged) (discard the log) or
    /// [`abort_staged`](Executor::abort_staged) (roll everything back bit-exactly).
    /// On `Err` the rollback has already happened: the engine is bit-identical to
    /// before the call.
    ///
    /// Staging must apply, not defer: in a multi-relation batch a later group's trigger
    /// reads maps an earlier group's trigger wrote (the `δR·δS` second-order term), so
    /// buffering every flush until commit would silently drop those cross terms. The
    /// undo log is what makes the applied writes revocable.
    pub fn stage_batch(&mut self, batch: &DeltaBatch) -> Result<StagedBatch, RuntimeError> {
        let stats_before = self.stats;
        let mut undo = std::mem::take(&mut self.undo_pool);
        match self.apply_batch_logged(batch, &mut Some(&mut undo)) {
            Ok(()) => Ok(StagedBatch { undo, stats_before }),
            Err(e) => {
                rollback_maps(&mut self.maps, &undo);
                self.stats = stats_before;
                self.recycle(undo);
                Err(e)
            }
        }
    }

    /// Makes a staged batch permanent. The writes already landed while staging, so this
    /// only releases the undo log (its allocation is recycled for the next staging) —
    /// it cannot fail.
    pub fn commit_staged(&mut self, staged: StagedBatch) {
        self.recycle(staged.undo);
    }

    /// Rolls a staged batch back: every logged pre-image is restored in reverse order
    /// and the stats snapshot reinstated, leaving tables and [`ExecStats`]
    /// bit-identical to the pre-stage state.
    pub fn abort_staged(&mut self, staged: StagedBatch) {
        rollback_maps(&mut self.maps, &staged.undo);
        self.stats = staged.stats_before;
        self.recycle(staged.undo);
    }

    /// The unlogged batch path: [`apply_batch`](Executor::apply_batch) without the
    /// pre-image log — the pre-staging ingest path, kept for callers that own their own
    /// recovery and as the measurement baseline for the staging overhead (`exp_faults`).
    ///
    /// **Not atomic:** a failing group leaves all previously processed groups applied,
    /// and the failing group itself may be partially applied on the unit-replay path.
    pub fn apply_batch_direct(&mut self, batch: &DeltaBatch) -> Result<(), RuntimeError> {
        self.apply_batch_logged(batch, &mut None)
    }

    fn apply_batch_logged(
        &mut self,
        batch: &DeltaBatch,
        undo: &mut Option<&mut UndoLog>,
    ) -> Result<(), RuntimeError> {
        let Self {
            plan,
            maps,
            dispatch,
            stats,
            scratch,
            shard_threads,
            ..
        } = self;
        let shards = *shard_threads;
        if scratch.write_bufs.len() < maps.len() {
            scratch
                .write_bufs
                .resize_with(maps.len(), WriteBuf::default);
        }
        // A previous call that errored mid-group may have left buffered writes behind;
        // drop them so a failed batch cannot leak into this one's flush. Only the
        // buffers dirtied since the last entry are swept — not all O(maps) of them.
        for &target in &scratch.dirty {
            let buf = &mut scratch.write_bufs[target];
            buf.keys.clear();
            buf.accs.clear();
        }
        scratch.dirty.clear();
        for group in batch.groups() {
            let sign = if group.is_insert() {
                Sign::Insert
            } else {
                Sign::Delete
            };
            let Some(trigger_index) = dispatch
                .get(group.relation())
                .and_then(|per_sign| per_sign[sign_index(sign)])
            else {
                continue;
            };
            let trigger = &plan.triggers[trigger_index];
            // One frame template per group; each delta only rewrites the param slots.
            scratch.base_frame.clear();
            scratch.base_frame.resize(trigger.frame_len, Value::Int(0));
            for (values, weight) in group.deltas() {
                if trigger.param_slots.len() != values.len() {
                    return Err(RuntimeError::ArityMismatch {
                        relation: group.relation().to_string(),
                        expected: trigger.param_slots.len(),
                        got: values.len(),
                    });
                }
                for (&slot, value) in trigger.param_slots.iter().zip(values.iter()) {
                    scratch.base_frame[slot as usize] = value.clone();
                }
                if trigger.weighted_firing {
                    // One firing, writes scaled by the consolidated weight and buffered:
                    // the trigger reads none of its targets, so every unit firing would
                    // compute identical writes and deferring them changes nothing.
                    stats.updates += *weight as u64;
                    for stmt in &trigger.statements {
                        eval_statement_ops(maps, stats, scratch, trigger, stmt)?;
                        buffer_statement_writes(scratch, stats, trigger, stmt, *weight);
                    }
                } else {
                    // Unit replay: the trigger reads maps it writes (a self-join), so
                    // each of the `weight` firings must see the previous one's writes.
                    for _ in 0..*weight {
                        stats.updates += 1;
                        for stmt in &trigger.statements {
                            run_statement(maps, stats, scratch, trigger, stmt, undo)?;
                        }
                    }
                }
            }
            if trigger.weighted_firing {
                // Fire each affected map once: sort, consolidate, one pass — sharded
                // across contiguous key ranges when a thread budget is configured and
                // the consolidated run is large enough to pay for splitting.
                for stmt in &trigger.statements {
                    let arity = plan.map_arities[stmt.target];
                    let Scratch {
                        write_bufs,
                        flush_interner,
                        flush_pool,
                        flush_sums,
                        flush_reps,
                        ..
                    } = &mut *scratch;
                    let buf = &mut write_bufs[stmt.target];
                    if buf.accs.is_empty() {
                        continue;
                    }
                    // Consolidate on interned fixed-width keys: each buffered key is
                    // encoded into the reusable pool, duplicates collapse onto a group
                    // id on arrival, and the accumulators sum per group. Only the
                    // *distinct* keys get sorted (exact `Value` order — strings fall
                    // back through the interner), and only the non-zero groups
                    // materialize as refs, still sorted ascending and unique as
                    // `apply_sorted*` require.
                    flush_pool.begin(arity, buf.accs.len());
                    flush_sums.clear();
                    flush_reps.clear();
                    for row in 0..buf.accs.len() {
                        let g = flush_pool.push_key_grouped(
                            &buf.keys[row * arity..(row + 1) * arity],
                            flush_interner,
                        ) as usize;
                        if g == flush_sums.len() {
                            flush_sums.push(buf.accs[row]);
                            flush_reps.push(row as u32);
                        } else {
                            flush_sums[g] = flush_sums[g].add(&buf.accs[row]);
                        }
                    }
                    let mut refs: Vec<(&[Value], Number)> = Vec::new();
                    for &g in flush_pool.sorted_groups(flush_interner) {
                        let sum = flush_sums[g as usize];
                        if !sum.is_zero() {
                            let f = flush_reps[g as usize] as usize;
                            refs.push((&buf.keys[f * arity..(f + 1) * arity], sum));
                        }
                    }
                    // When staging, every key the flush touches is logged with its
                    // pre-image, unchecked: keys in a consolidated run are unique,
                    // and a key another flush of this batch already logged restores
                    // correctly anyway (reverse order replays the true pre-image
                    // last). The sequential path captures pre-images inside the
                    // landing pass itself (`apply_sorted_logged` shares the lookup),
                    // the sharded path in one probe pass up front.
                    match (undo.as_deref_mut(), shards > 1) {
                        (Some(undo), true) => {
                            for (key, _) in &refs {
                                let pre = maps[stmt.target].get(key);
                                undo.push_unchecked(stmt.target, key, pre);
                            }
                            maps[stmt.target].apply_sorted_sharded(&refs, shards);
                        }
                        (Some(undo), false) => {
                            maps[stmt.target].apply_sorted_logged(&refs, |key, pre| {
                                undo.push_unchecked(stmt.target, key, pre)
                            });
                        }
                        (None, true) => maps[stmt.target].apply_sorted_sharded(&refs, shards),
                        (None, false) => maps[stmt.target].apply_sorted(&refs),
                    }
                    drop(refs);
                    buf.keys.clear();
                    buf.accs.clear();
                }
            }
        }
        Ok(())
    }
}

fn sign_index(sign: Sign) -> usize {
    match sign {
        Sign::Insert => 0,
        Sign::Delete => 1,
    }
}

/// Bulk-loads every view of a program from a non-empty starting database by evaluating
/// the view definitions with the reference evaluator (the initialization step of
/// Section 1.1). Shared by the lowered executor and the reference interpreter so both
/// paths initialize identically.
pub(crate) fn initialize_maps<S: ViewStorage>(
    program: &TriggerProgram,
    maps: &mut [S],
    db: &Database,
) -> Result<(), EvalError> {
    for def in &program.maps {
        // Reorder the defining query once so that bulk initialization does not build
        // needless cross products (the trigger statements themselves never evaluate
        // these definitions).
        let bound = def.key_vars.iter().cloned().collect();
        let query = Query {
            name: def.name.clone(),
            group_by: def.key_vars.clone(),
            expr: dbring_agca::optimize::optimize_for_evaluation(&def.definition, &bound),
        };
        let groups = eval_all_groups(&query, db)?;
        for (key, value) in groups {
            maps[def.id].set(key, value);
        }
    }
    Ok(())
}

/// Runs one lowered statement over the scratch frames and applies its writes directly,
/// logging each write's pre-image first when an undo log is supplied.
fn run_statement<S: ViewStorage>(
    maps: &mut [S],
    stats: &mut ExecStats,
    scratch: &mut Scratch,
    trigger: &PlanTrigger,
    stmt: &PlanStatement,
    undo: &mut Option<&mut UndoLog>,
) -> Result<(), RuntimeError> {
    eval_statement_ops(maps, stats, scratch, trigger, stmt)?;
    // Apply the writes. All reads of this statement are complete (a statement never
    // reads its own writes), so writing directly from the surviving frames is safe.
    let stride = trigger.frame_len.max(1);
    let Scratch {
        cur_vals,
        cur_accs,
        key_buf,
        ..
    } = scratch;
    let target = &mut maps[stmt.target];
    for row in 0..cur_accs.len() {
        let acc = cur_accs[row];
        if acc.is_zero() {
            continue;
        }
        stats.additions += 1;
        key_buf.clear();
        for &s in &stmt.target_slots {
            key_buf.push(cur_vals[row * stride + s as usize].clone());
        }
        if let Some(undo) = undo {
            undo.push_once(stmt.target, key_buf, || target.get(key_buf));
        }
        target.add_ref(key_buf, stmt.coefficient.mul(&acc));
    }
    Ok(())
}

/// Pushes one evaluated statement's writes — scaled by a batch weight — into the
/// scratch write buffer of the statement's target map, instead of applying them.
/// Only sound for weighted (degree ≤ 1) triggers, whose reads never see their writes.
fn buffer_statement_writes(
    scratch: &mut Scratch,
    stats: &mut ExecStats,
    trigger: &PlanTrigger,
    stmt: &PlanStatement,
    weight: i64,
) {
    let stride = trigger.frame_len.max(1);
    let Scratch {
        cur_vals,
        cur_accs,
        write_bufs,
        dirty,
        ..
    } = scratch;
    let buf = &mut write_bufs[stmt.target];
    let was_empty = buf.accs.is_empty();
    let scale = stmt.coefficient.mul(&Number::Int(weight));
    for row in 0..cur_accs.len() {
        let acc = cur_accs[row];
        if acc.is_zero() {
            continue;
        }
        stats.additions += 1;
        for &s in &stmt.target_slots {
            buf.keys.push(cur_vals[row * stride + s as usize].clone());
        }
        buf.accs.push(scale.mul(&acc));
    }
    if was_empty && !buf.accs.is_empty() {
        dirty.push(stmt.target);
    }
}

/// Runs one lowered statement's op sequence over the scratch frames, leaving the
/// surviving candidates (and their accumulated products) in `scratch.cur_vals` /
/// `scratch.cur_accs`. Reads the maps, writes nothing.
fn eval_statement_ops<S: ViewStorage>(
    maps: &[S],
    stats: &mut ExecStats,
    scratch: &mut Scratch,
    trigger: &PlanTrigger,
    stmt: &PlanStatement,
) -> Result<(), RuntimeError> {
    let stride = trigger.frame_len.max(1);
    let Scratch {
        base_frame,
        cur_vals,
        cur_accs,
        next_vals,
        next_accs,
        key_buf,
        ..
    } = scratch;
    // One initial candidate: the parameters, with accumulator 1.
    cur_vals.clear();
    cur_vals.extend_from_slice(base_frame);
    cur_vals.resize(stride, Value::Int(0));
    cur_accs.clear();
    cur_accs.push(Number::Int(1));

    for op in &stmt.ops {
        let rows = cur_accs.len();
        if rows == 0 {
            break;
        }
        match op {
            PlanOp::Probe { map, key_slots } => {
                let storage = &maps[*map];
                let mut kept = 0usize;
                for row in 0..rows {
                    let base = row * stride;
                    key_buf.clear();
                    for &s in key_slots {
                        key_buf.push(cur_vals[base + s as usize].clone());
                    }
                    let value = storage.get(key_buf);
                    if value.is_zero() {
                        continue;
                    }
                    stats.multiplications += 1;
                    let acc = cur_accs[row].mul(&value);
                    if kept != row {
                        for i in 0..stride {
                            cur_vals.swap(kept * stride + i, base + i);
                        }
                    }
                    cur_accs[kept] = acc;
                    kept += 1;
                }
                cur_vals.truncate(kept * stride);
                cur_accs.truncate(kept);
            }
            PlanOp::Enumerate {
                map,
                bound_positions,
                bound_slots,
                unbound,
            } => {
                let storage = &maps[*map];
                next_vals.clear();
                next_accs.clear();
                for (row, acc) in cur_accs.iter().copied().enumerate() {
                    let base = row * stride;
                    key_buf.clear();
                    for &s in bound_slots {
                        key_buf.push(cur_vals[base + s as usize].clone());
                    }
                    storage.for_each_slice(bound_positions, key_buf, |full_key, value| {
                        let new_base = next_vals.len();
                        next_vals.extend_from_slice(&cur_vals[base..base + stride]);
                        for u in unbound {
                            match *u {
                                UnboundKey::Bind { position, slot } => {
                                    next_vals[new_base + slot as usize] =
                                        full_key[position].clone();
                                }
                                UnboundKey::Check { position, slot } => {
                                    if next_vals[new_base + slot as usize] != full_key[position] {
                                        next_vals.truncate(new_base);
                                        return;
                                    }
                                }
                            }
                        }
                        stats.multiplications += 1;
                        stats.bindings_enumerated += 1;
                        next_accs.push(acc.mul(&value));
                    });
                }
                std::mem::swap(cur_vals, next_vals);
                std::mem::swap(cur_accs, next_accs);
            }
            PlanOp::Scalar(expr) => {
                let mut kept = 0usize;
                for row in 0..rows {
                    let base = row * stride;
                    let value = eval_slots(expr, &cur_vals[base..base + stride])?;
                    let number = value
                        .as_number()
                        .ok_or_else(|| RuntimeError::NonNumericValue(expr.to_string()))?;
                    if number.is_zero() {
                        continue;
                    }
                    stats.multiplications += 1;
                    let acc = cur_accs[row].mul(&number);
                    if kept != row {
                        for i in 0..stride {
                            cur_vals.swap(kept * stride + i, base + i);
                        }
                    }
                    cur_accs[kept] = acc;
                    kept += 1;
                }
                cur_vals.truncate(kept * stride);
                cur_accs.truncate(kept);
            }
            PlanOp::Guard(op, lhs, rhs) => {
                let mut kept = 0usize;
                for row in 0..rows {
                    let base = row * stride;
                    let frame = &cur_vals[base..base + stride];
                    let l = eval_slots(lhs, frame)?;
                    let r = eval_slots(rhs, frame)?;
                    if !op.test(compare_values(&l, &r)) {
                        continue;
                    }
                    if kept != row {
                        for i in 0..stride {
                            cur_vals.swap(kept * stride + i, base + i);
                        }
                        cur_accs[kept] = cur_accs[row];
                    }
                    kept += 1;
                }
                cur_vals.truncate(kept * stride);
                cur_accs.truncate(kept);
            }
        }
    }

    Ok(())
}

/// Evaluates a slot-resolved scalar expression against one candidate frame.
fn eval_slots(expr: &SlotExpr, frame: &[Value]) -> Result<Value, RuntimeError> {
    fn numeric(expr: &SlotExpr, frame: &[Value]) -> Result<Number, RuntimeError> {
        let v = eval_slots(expr, frame)?;
        v.as_number()
            .ok_or_else(|| RuntimeError::NonNumericValue(expr.to_string()))
    }
    match expr {
        SlotExpr::Const(v) => Ok(v.clone()),
        SlotExpr::Slot(s) => Ok(frame[*s as usize].clone()),
        SlotExpr::Add(a, b) => Ok(Value::from(numeric(a, frame)?.add(&numeric(b, frame)?))),
        SlotExpr::Mul(a, b) => Ok(Value::from(numeric(a, frame)?.mul(&numeric(b, frame)?))),
        SlotExpr::Neg(a) => Ok(Value::from(numeric(a, frame)?.mul(&Number::Int(-1)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;
    use dbring_compiler::compile;

    fn customer_catalog() -> Database {
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db
    }

    fn customers_program() -> TriggerProgram {
        let catalog = customer_catalog();
        let q = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        compile(&catalog, &q).unwrap()
    }

    fn insert(cid: i64, nation: &str) -> Update {
        Update::insert("C", vec![Value::int(cid), Value::str(nation)])
    }

    fn delete(cid: i64, nation: &str) -> Update {
        Update::delete("C", vec![Value::int(cid), Value::str(nation)])
    }

    #[test]
    fn example_5_2_maintained_incrementally() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        exec.apply(&insert(2, "FR")).unwrap();
        exec.apply(&insert(3, "DE")).unwrap();
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(2));
        assert_eq!(exec.output_value(&[Value::int(2)]), Number::Int(2));
        assert_eq!(exec.output_value(&[Value::int(3)]), Number::Int(1));
        // Deleting customer 2 drops customer 1's count back to 1 and removes group 2.
        exec.apply(&delete(2, "FR")).unwrap();
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(1));
        assert_eq!(exec.output_value(&[Value::int(2)]), Number::Int(0));
        assert_eq!(exec.output_table().len(), 2);
    }

    #[test]
    fn example_1_2_update_trace() {
        // q = SELECT count(*) FROM R r1, R r2 WHERE r1.A = r2.A, maintained over the exact
        // update trace of Example 1.2; expected values are from the paper's table.
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let program = compile(&catalog, &q).unwrap();
        let mut exec = Executor::new(program);
        let ins = |v: &str| Update::insert("R", vec![Value::str(v)]);
        let del = |v: &str| Update::delete("R", vec![Value::str(v)]);
        let trace = [
            (ins("c"), 1),
            (ins("c"), 4),
            (ins("d"), 5),
            (ins("c"), 10),
            (del("d"), 9),
            (ins("c"), 16),
            (del("c"), 9),
        ];
        for (update, expected) in trace {
            exec.apply(&update).unwrap();
            assert_eq!(
                exec.output_value(&[]),
                Number::Int(expected),
                "after {update}"
            );
        }
    }

    #[test]
    fn constant_work_per_update_for_the_self_join_count() {
        // The Example 1.2 trigger has no loop variables, so the arithmetic work per update
        // must be independent of how many tuples have been inserted.
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let mut exec = Executor::new(compile(&catalog, &q).unwrap());
        let mut per_update = Vec::new();
        for i in 0..200 {
            let before = exec.stats().arithmetic_ops();
            exec.apply(&Update::insert("R", vec![Value::int(i % 5)]))
                .unwrap();
            per_update.push(exec.stats().arithmetic_ops() - before);
        }
        let max = *per_update.iter().max().unwrap();
        let min = *per_update[10..].iter().min().unwrap();
        assert!(max <= 12, "ops per update stay bounded, got {max}");
        assert!(
            max <= min + 4,
            "ops per update do not grow with the database"
        );
    }

    #[test]
    fn initialization_from_a_nonempty_database_matches_streaming() {
        let mut db = customer_catalog();
        let updates: Vec<Update> = (0..30)
            .map(|i| insert(i, ["FR", "DE", "IT"][(i % 3) as usize]))
            .collect();
        for u in &updates {
            db.apply(u).unwrap();
        }
        // Path A: stream everything through the executor from empty.
        let mut streamed = Executor::new(customers_program());
        streamed.apply_all(&updates).unwrap();
        // Path B: initialize from the loaded database, then stream nothing.
        let mut initialized = Executor::new(customers_program());
        initialized.initialize_from(&db).unwrap();
        assert_eq!(streamed.output_table(), initialized.output_table());
        // Both paths then agree on further maintenance.
        let more = insert(100, "FR");
        streamed.apply(&more).unwrap();
        initialized.apply(&more).unwrap();
        assert_eq!(streamed.output_table(), initialized.output_table());
    }

    #[test]
    fn irrelevant_updates_are_ignored_and_arity_is_checked() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&Update::insert("Other", vec![Value::int(1)]))
            .unwrap();
        assert!(exec.output_table().is_empty());
        let err = exec
            .apply(&Update::insert("C", vec![Value::int(1)]))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
        assert!(err.to_string().contains("1 values"));
    }

    #[test]
    fn batched_multiplicity_updates() {
        let mut exec = Executor::new(customers_program());
        let mut batch = insert(1, "FR");
        batch.multiplicity = 3;
        exec.apply(&batch).unwrap();
        // Three identical customers of the same nation: each of the 3 sees 3 → 3 per group
        // key... group key is cid=1, so the count is 9.
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(9));
        assert_eq!(exec.stats().updates, 3);
    }

    #[test]
    fn zero_multiplicity_updates_are_explicit_no_ops() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        let stats = exec.stats();
        let table = exec.output_table();
        let mut zero = insert(2, "DE");
        zero.multiplicity = 0;
        exec.apply(&zero).unwrap();
        // Even a malformed zero-multiplicity update is a no-op, not an arity error:
        // nothing would have fired anyway.
        let mut zero_bad_arity = Update::insert("C", vec![Value::int(1)]);
        zero_bad_arity.multiplicity = 0;
        exec.apply(&zero_bad_arity).unwrap();
        assert_eq!(exec.stats(), stats);
        assert_eq!(exec.output_table(), table);
    }

    #[test]
    fn apply_all_attaches_the_failing_updates_index() {
        let mut exec = Executor::new(customers_program());
        let updates = vec![
            insert(1, "FR"),
            insert(2, "DE"),
            Update::insert("C", vec![Value::int(3)]), // arity error at index 2
            insert(4, "IT"),
        ];
        let err = exec.apply_all(&updates).unwrap_err();
        match &err {
            RuntimeError::AtUpdate { index, source } => {
                assert_eq!(*index, 2);
                assert!(matches!(**source, RuntimeError::ArityMismatch { .. }));
            }
            other => panic!("expected AtUpdate, got {other:?}"),
        }
        assert!(err.to_string().contains("update #2"));
        assert!(std::error::Error::source(&err).is_some());
        // Non-atomicity: the two updates before the failure landed.
        assert_eq!(exec.stats().updates, 2);
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(1));
    }

    #[test]
    fn apply_batch_matches_apply_all_on_a_unit_replay_program() {
        // The customers self-join reads the maps its triggers write, so the batch path
        // must unit-replay — and with no in-batch cancellation, do *identical* work.
        let updates: Vec<Update> = (0..30)
            .map(|i| insert(i, ["FR", "DE", "IT"][(i % 3) as usize]))
            .collect();
        let mut per_tuple = Executor::new(customers_program());
        per_tuple.apply_all(&updates).unwrap();
        let mut batched = Executor::new(customers_program());
        batched
            .apply_batch(&DeltaBatch::from_updates(&updates))
            .unwrap();
        assert_eq!(per_tuple.output_table(), batched.output_table());
        assert_eq!(per_tuple.total_entries(), batched.total_entries());
        assert_eq!(per_tuple.stats(), batched.stats());
    }

    #[test]
    fn apply_batch_fires_weighted_triggers_once_per_distinct_tuple() {
        // Per-customer revenue: a degree-1 aggregation whose triggers read no maps.
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
        let q = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &q).unwrap();
        assert!(Executor::new(program.clone()).plan().triggers[0].weighted_firing);

        let row = |c: i64, p: f64, q: i64| {
            Update::insert("Sales", vec![Value::int(c), Value::float(p), Value::int(q)])
        };
        // The same sale three times plus two distinct ones: the batch consolidates to
        // three distinct tuples and fires three times, not five.
        let updates = vec![
            row(1, 2.5, 4),
            row(1, 2.5, 4),
            row(1, 2.5, 4),
            row(2, 1.0, 3),
            row(1, 9.0, 1),
        ];
        let mut per_tuple = Executor::new(program.clone());
        per_tuple.apply_all(&updates).unwrap();
        let mut batched = Executor::new(program);
        batched
            .apply_batch(&DeltaBatch::from_updates(&updates))
            .unwrap();
        assert_eq!(per_tuple.output_table(), batched.output_table());
        // Same logical updates...
        assert_eq!(batched.stats().updates, 5);
        // ...but strictly less ring work: the weight-3 tuple fired once.
        assert!(batched.stats().additions < per_tuple.stats().additions);
    }

    #[test]
    fn apply_batch_cancels_update_pairs_before_firing() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        let stats = exec.stats();
        let table = exec.output_table();
        // +t / -t inside one batch nets to nothing: no trigger fires at all.
        let cancelling = [insert(9, "DE"), delete(9, "DE")];
        let batch = DeltaBatch::from_updates(&cancelling);
        assert!(batch.is_empty());
        exec.apply_batch(&batch).unwrap();
        assert_eq!(exec.stats(), stats);
        assert_eq!(exec.output_table(), table);
    }

    /// Regression: a weighted group that errors *after* buffering some writes must not
    /// leak those writes into a later, unrelated `apply_batch` call's flush.
    #[test]
    fn failed_weighted_group_does_not_leak_buffered_writes_into_the_next_batch() {
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "cents", "qty"]).unwrap();
        let q = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(cents * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let mut exec = Executor::new(compile(&catalog, &q).unwrap());
        // Valid delta first (buffered), then a bad-arity delta: the group fails before
        // its flush, so nothing may land.
        let failing = [
            Update::insert("Sales", vec![Value::int(0), Value::int(10), Value::int(1)]),
            Update::insert("Sales", vec![Value::int(9)]),
        ];
        let err = exec
            .apply_batch(&DeltaBatch::from_updates(&failing))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
        assert!(exec.output_table().is_empty(), "failed group must not land");
        // A later successful batch must apply exactly its own updates.
        let good = [Update::insert(
            "Sales",
            vec![Value::int(5), Value::int(2), Value::int(3)],
        )];
        exec.apply_batch(&DeltaBatch::from_updates(&good)).unwrap();
        assert_eq!(exec.output_table().len(), 1);
        assert_eq!(exec.output_value(&[Value::int(5)]), Number::Int(6));
        assert_eq!(exec.output_value(&[Value::int(0)]), Number::Int(0));
    }

    /// The dirty-index sweep must keep clearing leaked writes across *repeated*
    /// failures: the dirty list survives a failed batch and is only reset once the
    /// next entry has dropped the leaked buffers.
    #[test]
    fn repeated_failed_batches_keep_clearing_leaked_buffers() {
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "cents", "qty"]).unwrap();
        let q = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(cents * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let mut exec = Executor::new(compile(&catalog, &q).unwrap());
        let failing = [
            Update::insert("Sales", vec![Value::int(0), Value::int(10), Value::int(1)]),
            Update::insert("Sales", vec![Value::int(9)]),
        ];
        for _ in 0..3 {
            exec.apply_batch(&DeltaBatch::from_updates(&failing))
                .unwrap_err();
        }
        assert!(exec.output_table().is_empty());
        let good = [Update::insert(
            "Sales",
            vec![Value::int(5), Value::int(2), Value::int(3)],
        )];
        exec.apply_batch(&DeltaBatch::from_updates(&good)).unwrap();
        assert_eq!(exec.output_table().len(), 1);
        assert_eq!(exec.output_value(&[Value::int(5)]), Number::Int(6));
    }

    /// A sharded flush must land exactly what a sequential flush lands — tables,
    /// entry counts, and work counters (the counters are accumulated while
    /// buffering, before the flush, so sharding cannot move them).
    #[test]
    fn sharded_flush_matches_sequential_flush() {
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "cents", "qty"]).unwrap();
        let q = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(cents * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &q).unwrap();
        // Enough distinct group keys that the consolidated run clears the sharding
        // threshold, plus weight and deletion mixing.
        let updates: Vec<Update> = (0..600i64)
            .map(|i| {
                let values = vec![Value::int(i % 500), Value::int(i + 1), Value::int(2)];
                if i % 11 == 3 {
                    Update::delete("Sales", values)
                } else {
                    Update::insert("Sales", values)
                }
            })
            .collect();
        let mut sequential = Executor::new(program.clone());
        let mut sharded = Executor::new(program);
        sharded.set_parallelism(4);
        assert_eq!(sharded.parallelism(), 4);
        for chunk in updates.chunks(300) {
            let batch = DeltaBatch::from_updates(chunk);
            sequential.apply_batch(&batch).unwrap();
            sharded.apply_batch(&batch).unwrap();
        }
        assert_eq!(sequential.output_table(), sharded.output_table());
        assert_eq!(sequential.total_entries(), sharded.total_entries());
        assert_eq!(sequential.stats(), sharded.stats());
    }

    /// Satellite regression: the unit-replay path used to leave a failing group
    /// *partially* applied (the writes of earlier replayed updates landed immediately).
    /// With staging, a failed batch rolls back bit-exactly — tables and stats.
    #[test]
    fn failed_unit_replay_batch_rolls_back_completely() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        let stats = exec.stats();
        let table = exec.output_table();
        // The self-join program unit-replays; the valid deltas fire (and write)
        // before the bad-arity delta is reached, so rollback must undo real writes.
        let failing = [
            insert(2, "FR"),
            insert(3, "DE"),
            Update::insert("C", vec![Value::int(9)]), // arity error
        ];
        let err = exec
            .apply_batch(&DeltaBatch::from_updates(&failing))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
        assert_eq!(exec.output_table(), table, "tables must roll back");
        assert_eq!(exec.stats(), stats, "stats must roll back");
        // The engine is fully usable afterwards.
        exec.apply_batch(&DeltaBatch::from_updates(&[insert(2, "FR")]))
            .unwrap();
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(2));
    }

    /// stage → abort is a bit-exact no-op; stage → commit equals a plain apply_batch —
    /// on both the weighted path and floats (where bit-exactness is the hard part).
    #[test]
    fn stage_abort_round_trips_bit_exactly() {
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
        let q = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &q).unwrap();
        let mut exec = Executor::new(program.clone());
        let row = |c: i64, p: f64, q: i64| {
            Update::insert("Sales", vec![Value::int(c), Value::float(p), Value::int(q)])
        };
        exec.apply(&row(1, 0.1, 1)).unwrap();
        let stats = exec.stats();
        let before: Vec<(Vec<Value>, u64)> = exec
            .output_table()
            .into_iter()
            .map(|(k, v)| (k, v.as_f64().to_bits()))
            .collect();
        // Stage a float batch that perturbs the existing group, then abort.
        let staged = exec
            .stage_batch(&DeltaBatch::from_updates(&[row(1, 0.2, 1), row(2, 0.3, 1)]))
            .unwrap();
        assert!(staged.logged_writes() > 0);
        exec.abort_staged(staged);
        let after: Vec<(Vec<Value>, u64)> = exec
            .output_table()
            .into_iter()
            .map(|(k, v)| (k, v.as_f64().to_bits()))
            .collect();
        assert_eq!(before, after, "abort must restore float bit patterns");
        assert_eq!(exec.stats(), stats);
        // stage + commit matches a direct apply of the same batch, stats included.
        let updates = [row(1, 0.2, 1), row(2, 0.3, 1)];
        let batch = DeltaBatch::from_updates(&updates);
        let mut direct = Executor::new(program);
        direct.apply(&row(1, 0.1, 1)).unwrap();
        direct.apply_batch_direct(&batch).unwrap();
        let staged = exec.stage_batch(&batch).unwrap();
        exec.commit_staged(staged);
        assert_eq!(exec.output_table(), direct.output_table());
        assert_eq!(exec.stats(), direct.stats());
    }

    /// A failed `stage_update` rolls back even partial multiplicity firings, while the
    /// direct `apply` keeps its documented partial semantics.
    #[test]
    fn stage_update_is_atomic_per_update() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        let stats = exec.stats();
        let table = exec.output_table();
        let bad = Update::insert("C", vec![Value::int(9)]);
        assert!(exec.stage_update(&bad).is_err());
        assert_eq!(exec.output_table(), table);
        assert_eq!(exec.stats(), stats);
        // And a successful stage commits to exactly the direct result.
        let staged = exec.stage_update(&insert(2, "FR")).unwrap();
        exec.commit_staged(staged);
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(2));
    }

    #[test]
    fn apply_batch_checks_arity_and_ignores_irrelevant_relations() {
        let mut exec = Executor::new(customers_program());
        exec.apply_batch(&DeltaBatch::from_updates(&[Update::insert(
            "Other",
            vec![Value::int(1)],
        )]))
        .unwrap();
        assert!(exec.output_table().is_empty());
        let err = exec
            .apply_batch(&DeltaBatch::from_updates(&[Update::insert(
                "C",
                vec![Value::int(1)],
            )]))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut exec = Executor::new(customers_program());
        exec.apply(&insert(1, "FR")).unwrap();
        let stats = exec.stats();
        assert_eq!(stats.updates, 1);
        assert!(stats.additions > 0);
        assert!(stats.arithmetic_ops() >= stats.additions);
        exec.reset_stats();
        assert_eq!(exec.stats(), ExecStats::default());
        assert!(exec.total_entries() > 0);
    }

    #[test]
    fn value_aggregation_with_floats() {
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
        let q = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let mut exec = Executor::new(compile(&catalog, &q).unwrap());
        exec.apply(&Update::insert(
            "Sales",
            vec![Value::int(7), Value::float(2.5), Value::int(4)],
        ))
        .unwrap();
        exec.apply(&Update::insert(
            "Sales",
            vec![Value::int(7), Value::float(1.0), Value::int(3)],
        ))
        .unwrap();
        assert_eq!(exec.output_value(&[Value::int(7)]), Number::Float(13.0));
        exec.apply(&Update::delete(
            "Sales",
            vec![Value::int(7), Value::float(1.0), Value::int(3)],
        ))
        .unwrap();
        assert_eq!(exec.output_value(&[Value::int(7)]), Number::Float(10.0));
    }

    #[test]
    fn duplicate_triggers_dispatch_to_the_first_match_like_the_interpreter() {
        use dbring_compiler::{MapDef, Statement, Trigger};
        // Two triggers on (R, Insert): the first bumps q by 1, the second by 100. Both
        // executors must run the *first* (linear-scan semantics); the compiler never
        // emits duplicates, but hand-built programs may.
        let make_trigger = |coefficient: i64| Trigger {
            relation: "R".to_string(),
            sign: dbring_delta::Sign::Insert,
            params: vec!["@R_A".to_string()],
            statements: vec![Statement {
                target: 0,
                target_keys: vec![],
                coefficient: Number::Int(coefficient),
                factors: vec![],
            }],
        };
        let program = TriggerProgram {
            maps: vec![MapDef {
                id: 0,
                name: "q".to_string(),
                key_vars: vec![],
                definition: dbring_agca::ast::Expr::int(0),
                degree: 0,
            }],
            triggers: vec![make_trigger(1), make_trigger(100)],
            output: 0,
        };
        let mut lowered = Executor::new(program.clone());
        let mut interpreted = crate::interp::InterpretedExecutor::new(program);
        let update = Update::insert("R", vec![Value::int(7)]);
        lowered.apply(&update).unwrap();
        interpreted.apply(&update).unwrap();
        assert_eq!(lowered.output_value(&[]), Number::Int(1));
        assert_eq!(lowered.output_table(), interpreted.output_table());
    }

    #[test]
    fn plan_is_exposed_and_matches_the_program_shape() {
        let exec = Executor::new(customers_program());
        let plan = exec.plan();
        assert_eq!(plan.triggers.len(), exec.program().triggers.len());
        assert_eq!(plan.map_arities.len(), exec.program().maps.len());
        assert!(plan.op_count() > 0);
    }

    #[test]
    fn try_new_surfaces_lowering_errors_instead_of_panicking() {
        let mut program = customers_program();
        // Break the program after compilation: a statement targeting a missing map.
        program.triggers[0].statements[0].target = 99;
        assert!(matches!(
            Executor::try_new(program),
            Err(LowerError::Invalid(_))
        ));
        assert!(Executor::try_new(customers_program()).is_ok());
    }
}
