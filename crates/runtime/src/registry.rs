//! The executor-hosting registry: many boxed [`ViewEngine`]s behind one ingest path,
//! with per-relation routing.
//!
//! One update stream maintaining a whole set of standing views is the paper's actual
//! operating regime (and DBToaster's: one generated program hosting every maintained
//! map). The registry is that regime's runtime core, kept deliberately below the
//! parsing/compiling facade: it knows nothing about queries or catalogs, only about
//! compiled engines and the relations their trigger programs read.
//!
//! * **Registration** derives each engine's *read set* from its program's triggers and
//!   indexes it in a routing table: relation name → the slots of the engines with a
//!   trigger on that relation.
//! * **Per-update dispatch** ([`EngineRegistry::apply`]) routes a single-tuple update
//!   to exactly the engines that read its relation — an update a view does not read
//!   costs that view nothing, not even a dispatch lookup.
//! * **Shared-batch dispatch** ([`EngineRegistry::apply_batch`]) is the amortization
//!   seam: the caller normalizes a [`DeltaBatch`] **once** and the registry fans the
//!   borrowed batch out to the union of the touched relations' readers. With `k` views
//!   over one stream this does one consolidation (bucket + sort + net) where `k`
//!   independent views would each redo it.
//!
//! Slots are tombstoned on removal and never reused, so a stale slot id can only miss
//! (yield `None`), never silently address a different engine.

use std::collections::HashMap;

use dbring_relations::{DeltaBatch, Update};

use crate::engine::ViewEngine;
use crate::executor::RuntimeError;

/// A slot-addressed host for boxed view engines with per-relation update routing.
///
/// See the [module docs](self) for the dispatch semantics. The registry is `Clone`
/// (engines clone behind the object interface), so a loaded multi-view state can be
/// forked for experiments.
#[derive(Clone, Debug, Default)]
pub struct EngineRegistry {
    /// Engine slots; `None` marks a removed engine (slots are never reused).
    slots: Vec<Option<RegisteredEngine>>,
    /// Relation name → slots of the engines whose programs read it (ascending).
    routing: HashMap<String, Vec<u32>>,
    /// Number of live (non-tombstoned) slots.
    live: usize,
}

#[derive(Clone, Debug)]
struct RegisteredEngine {
    engine: Box<dyn ViewEngine>,
    /// The relations the engine's program has triggers on (sorted, deduplicated) —
    /// kept so removal can clean the routing table without re-deriving it.
    relations: Vec<String>,
}

impl EngineRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        EngineRegistry::default()
    }

    /// Number of live engines.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no engines are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Registers an engine and returns its slot id. The engine's read set is derived
    /// from its program's triggers and indexed for routing.
    pub fn register(&mut self, engine: Box<dyn ViewEngine>) -> u32 {
        let mut relations: Vec<String> = engine
            .program()
            .triggers
            .iter()
            .map(|t| t.relation.clone())
            .collect();
        relations.sort_unstable();
        relations.dedup();
        let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 views");
        for relation in &relations {
            self.routing.entry(relation.clone()).or_default().push(slot);
        }
        self.slots
            .push(Some(RegisteredEngine { engine, relations }));
        self.live += 1;
        slot
    }

    /// Removes an engine, returning it (its final state remains readable), or `None`
    /// if the slot is unknown or already removed. The slot is tombstoned, not reused.
    pub fn remove(&mut self, slot: u32) -> Option<Box<dyn ViewEngine>> {
        let registered = self.slots.get_mut(slot as usize)?.take()?;
        for relation in &registered.relations {
            if let Some(readers) = self.routing.get_mut(relation) {
                readers.retain(|&s| s != slot);
                if readers.is_empty() {
                    self.routing.remove(relation);
                }
            }
        }
        self.live -= 1;
        Some(registered.engine)
    }

    /// The engine in a slot (`None` if unknown or removed).
    pub fn engine(&self, slot: u32) -> Option<&dyn ViewEngine> {
        self.slots
            .get(slot as usize)?
            .as_ref()
            .map(|r| r.engine.as_ref())
    }

    /// Mutable access to the engine in a slot.
    pub fn engine_mut(&mut self, slot: u32) -> Option<&mut Box<dyn ViewEngine>> {
        self.slots
            .get_mut(slot as usize)?
            .as_mut()
            .map(|r| &mut r.engine)
    }

    /// Iterates the live engines as `(slot, engine)` pairs, in slot order.
    pub fn engines(&self) -> impl Iterator<Item = (u32, &dyn ViewEngine)> {
        self.slots.iter().enumerate().filter_map(|(slot, r)| {
            r.as_ref()
                .map(|r| (slot as u32, r.engine.as_ref() as &dyn ViewEngine))
        })
    }

    /// The slots of the engines whose programs read `relation` (empty if none do).
    pub fn readers_of(&self, relation: &str) -> &[u32] {
        self.routing
            .get(relation)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Applies one single-tuple update to exactly the engines that read its relation,
    /// returning how many engines fired. Updates to relations no engine reads return
    /// `Ok(0)` without touching anything.
    ///
    /// **Not atomic across engines:** engines fire in slot order and a failure leaves
    /// every earlier engine's write applied (the same non-atomicity contract as the
    /// executors' own multi-update paths).
    pub fn apply(&mut self, update: &Update) -> Result<u32, RuntimeError> {
        if update.multiplicity == 0 {
            return Ok(0);
        }
        let Some(readers) = self.routing.get(update.relation.as_str()) else {
            return Ok(0);
        };
        let mut fired = 0;
        for &slot in readers {
            let registered = self.slots[slot as usize]
                .as_mut()
                .expect("routing only lists live slots");
            registered.engine.apply(update)?;
            fired += 1;
        }
        Ok(fired)
    }

    /// Fans one already-normalized [`DeltaBatch`] out to the union of the engines
    /// reading any relation the batch touches, returning how many engines fired. The
    /// batch is normalized **once** by the caller and borrowed by every engine — this
    /// is the shared-batch dispatch entry point that amortizes consolidation across
    /// views. Not atomic across engines (see [`EngineRegistry::apply`]).
    pub fn apply_batch(&mut self, batch: &DeltaBatch<'_>) -> Result<u32, RuntimeError> {
        // Union of readers over the touched relations. Batches have at most two groups
        // per relation, so a sort/dedup over the concatenated reader lists stays tiny.
        let mut touched: Vec<u32> = Vec::new();
        for group in batch.groups() {
            touched.extend_from_slice(self.readers_of(group.relation()));
        }
        touched.sort_unstable();
        touched.dedup();
        for &slot in &touched {
            let registered = self.slots[slot as usize]
                .as_mut()
                .expect("routing only lists live slots");
            registered.engine.apply_batch(batch)?;
        }
        Ok(touched.len() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::boxed_engine;
    use crate::storage::StorageBackend;
    use dbring_agca::parser::parse_query;
    use dbring_algebra::Number;
    use dbring_compiler::compile;
    use dbring_relations::{Database, Value};

    fn catalog() -> Database {
        let mut db = Database::new();
        db.declare("R", &["A"]).unwrap();
        db.declare("S", &["B"]).unwrap();
        db
    }

    fn engine_for(text: &str) -> Box<dyn ViewEngine> {
        let program = compile(&catalog(), &parse_query(text).unwrap()).unwrap();
        boxed_engine(program, StorageBackend::Hash)
    }

    #[test]
    fn updates_route_only_to_reading_engines() {
        let mut registry = EngineRegistry::new();
        let r_sum = registry.register(engine_for("r_sum := Sum(R(x))"));
        let s_sum = registry.register(engine_for("s_sum := Sum(S(y))"));
        let both = registry.register(engine_for("both := Sum(R(x) * S(x))"));
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.readers_of("R"), &[r_sum, both]);
        assert_eq!(registry.readers_of("S"), &[s_sum, both]);
        assert_eq!(registry.readers_of("T"), &[] as &[u32]);

        let fired = registry
            .apply(&Update::insert("R", vec![Value::int(1)]))
            .unwrap();
        assert_eq!(fired, 2);
        assert_eq!(registry.engine(r_sum).unwrap().stats().updates, 1);
        assert_eq!(registry.engine(s_sum).unwrap().stats().updates, 0);
        assert_eq!(registry.engine(both).unwrap().stats().updates, 1);
        // A relation nobody reads is a no-op, not an error.
        assert_eq!(
            registry
                .apply(&Update::insert("T", vec![Value::int(1)]))
                .unwrap(),
            0
        );
    }

    #[test]
    fn shared_batch_dispatch_fans_out_to_the_union_of_readers() {
        let mut registry = EngineRegistry::new();
        let r_sum = registry.register(engine_for("r_sum := Sum(R(x))"));
        let s_sum = registry.register(engine_for("s_sum := Sum(S(y))"));
        let updates = [
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("S", vec![Value::int(9)]),
            Update::delete("S", vec![Value::int(9)]),
        ];
        let batch = DeltaBatch::from_updates(&updates);
        // S's updates cancel inside the batch: only R's reader fires.
        let fired = registry.apply_batch(&batch).unwrap();
        assert_eq!(fired, 1);
        assert_eq!(
            registry.engine(r_sum).unwrap().output_value(&[]),
            Number::Int(2)
        );
        assert_eq!(registry.engine(s_sum).unwrap().stats().updates, 0);
        assert_eq!(registry.apply_batch(&DeltaBatch::default()).unwrap(), 0);
    }

    #[test]
    fn removal_tombstones_the_slot_and_cleans_routing() {
        let mut registry = EngineRegistry::new();
        let a = registry.register(engine_for("a := Sum(R(x))"));
        let b = registry.register(engine_for("b := Sum(R(x) * x)"));
        let removed = registry.remove(a).expect("live slot removes");
        assert_eq!(removed.output_value(&[]), Number::Int(0));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.readers_of("R"), &[b]);
        assert!(registry.engine(a).is_none());
        assert!(registry.remove(a).is_none(), "double remove misses");
        assert!(registry.remove(99).is_none(), "unknown slot misses");
        // Slots are never reused: a new engine gets a fresh id.
        let c = registry.register(engine_for("c := Sum(R(x))"));
        assert_ne!(c, a);
        assert_eq!(registry.readers_of("R"), &[b, c]);
        registry
            .apply(&Update::insert("R", vec![Value::int(2)]))
            .unwrap();
        assert_eq!(
            registry.engine(c).unwrap().output_value(&[]),
            Number::Int(1)
        );
        assert_eq!(
            registry.engines().map(|(slot, _)| slot).collect::<Vec<_>>(),
            vec![b, c]
        );
    }

    #[test]
    fn engine_mut_reaches_the_hosted_engine() {
        let mut registry = EngineRegistry::new();
        let slot = registry.register(engine_for("a := Sum(R(x))"));
        registry
            .apply(&Update::insert("R", vec![Value::int(1)]))
            .unwrap();
        registry.engine_mut(slot).unwrap().reset_stats();
        assert_eq!(registry.engine(slot).unwrap().stats().updates, 0);
        assert!(registry.engine_mut(42).is_none());
    }
}
