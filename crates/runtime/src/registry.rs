//! The executor-hosting registry: many boxed [`ViewEngine`]s behind one ingest path,
//! with per-relation routing.
//!
//! One update stream maintaining a whole set of standing views is the paper's actual
//! operating regime (and DBToaster's: one generated program hosting every maintained
//! map). The registry is that regime's runtime core, kept deliberately below the
//! parsing/compiling facade: it knows nothing about queries or catalogs, only about
//! compiled engines and the relations their trigger programs read.
//!
//! * **Registration** derives each engine's *read set* from its program's triggers and
//!   indexes it in a routing table: relation name → the slots of the engines with a
//!   trigger on that relation.
//! * **Per-update dispatch** ([`EngineRegistry::apply`]) routes a single-tuple update
//!   to exactly the engines that read its relation — an update a view does not read
//!   costs that view nothing, not even a dispatch lookup.
//! * **Shared-batch dispatch** ([`EngineRegistry::apply_batch`]) is the amortization
//!   seam: the caller normalizes a [`DeltaBatch`] **once** and the registry fans the
//!   borrowed batch out to the union of the touched relations' readers. With `k` views
//!   over one stream this does one consolidation (bucket + sort + net) where `k`
//!   independent views would each redo it.
//! * **Parallel dispatch** ([`ParallelConfig`]): with a thread budget above one, the
//!   shared-batch fan-out runs the touched engines concurrently on a scoped thread
//!   pool — the engines are independent (each owns its maps and counters), so the
//!   borrowed batch is the only thing shared. `threads = 1` takes the sequential code
//!   path exactly. The same budget is propagated to each hosted engine as its
//!   within-view shard budget for batched flushes.
//! * **Failure atomicity** (stage → commit): dispatch stages the batch on every
//!   touched engine — each engine applies it while logging pre-images — and commits
//!   only if *all* stages succeed. Any failure aborts every stage, so a failed
//!   dispatch leaves every engine's tables and stats bit-identical to before the
//!   call, and the deterministic lowest-slot error is reported. Worker panics are
//!   caught ([`RuntimeError::EnginePanicked`]) and the panicking slot is
//!   **quarantined**: its state can no longer be trusted, so ingest skips it and the
//!   host is expected to rebuild it ([`EngineRegistry::replace`]) from a base
//!   snapshot. [`EngineRegistry::set_staging`] can disable the protocol, restoring
//!   the pre-staging dispatch byte-for-byte (the `exp_faults` measurement baseline).
//!
//! Slots are tombstoned on removal and never reused, so a stale slot id can only miss
//! (yield `None`), never silently address a different engine.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use dbring_relations::{DeltaBatch, Update};

use crate::engine::ViewEngine;
use crate::executor::{RuntimeError, StagedBatch};

/// The thread budget for batch ingest: how many worker threads the registry may use
/// to fan a shared batch out across views, and — propagated to every hosted engine —
/// how many key-range shards a single view may split a large batched flush into.
///
/// `threads = 1` (always the effective minimum) means *the sequential code path,
/// exactly*: no scoped pool is created, no flush is sharded, and behavior is
/// byte-for-byte that of a registry without the knob.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker-thread budget for batch dispatch and sharded flushes (min. 1).
    pub threads: usize,
}

impl Default for ParallelConfig {
    /// Available parallelism, overridable with the `DBRING_INGEST_THREADS`
    /// environment variable (useful to force `threads = 1` in CI so the sequential
    /// path stays covered on many-core runners).
    fn default() -> Self {
        let threads = std::env::var("DBRING_INGEST_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        ParallelConfig {
            threads: threads.max(1),
        }
    }
}

impl ParallelConfig {
    /// The sequential configuration (`threads = 1`).
    pub fn sequential() -> Self {
        ParallelConfig { threads: 1 }
    }

    /// An explicit thread budget (clamped to at least 1).
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
        }
    }
}

/// A slot-addressed host for boxed view engines with per-relation update routing.
///
/// See the [module docs](self) for the dispatch semantics. The registry is `Clone`
/// (engines clone behind the object interface), so a loaded multi-view state can be
/// forked for experiments.
#[derive(Clone, Debug, Default)]
pub struct EngineRegistry {
    /// Engine slots; `None` marks a removed engine (slots are never reused).
    slots: Vec<Option<RegisteredEngine>>,
    /// Relation name → slots of the engines whose programs read it (ascending).
    routing: HashMap<String, Vec<u32>>,
    /// Number of live (non-tombstoned) slots.
    live: usize,
    /// Thread budget for shared-batch dispatch and hosted engines' sharded flushes.
    parallel: ParallelConfig,
    /// When true, dispatch skips the stage/commit protocol and applies batches
    /// directly (the pre-staging byte-for-byte path; not atomic across engines).
    direct: bool,
}

#[derive(Clone, Debug)]
struct RegisteredEngine {
    engine: Box<dyn ViewEngine>,
    /// The relations the engine's program has triggers on (sorted, deduplicated) —
    /// kept so removal can clean the routing table without re-deriving it.
    relations: Vec<String>,
    /// Quarantined: the engine panicked mid-dispatch, so its tables can no longer be
    /// trusted. Ingest skips poisoned slots; [`EngineRegistry::replace`] clears the
    /// flag with a rebuilt engine.
    poisoned: bool,
}

impl EngineRegistry {
    /// An empty registry with the default thread budget (see
    /// [`ParallelConfig::default`]).
    pub fn new() -> Self {
        EngineRegistry::default()
    }

    /// An empty registry with an explicit thread budget.
    pub fn with_parallelism(config: ParallelConfig) -> Self {
        EngineRegistry {
            parallel: config,
            ..EngineRegistry::default()
        }
    }

    /// The configured thread budget.
    pub fn parallelism(&self) -> ParallelConfig {
        self.parallel
    }

    /// Reconfigures the thread budget, propagating it to every live engine as its
    /// within-view shard budget.
    pub fn set_parallelism(&mut self, config: ParallelConfig) {
        self.parallel = config;
        for registered in self.slots.iter_mut().flatten() {
            registered.engine.set_parallelism(config.threads);
        }
    }

    /// Number of live engines.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no engines are registered.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Registers an engine and returns its slot id. The engine's read set is derived
    /// from its program's triggers and indexed for routing.
    pub fn register(&mut self, engine: Box<dyn ViewEngine>) -> u32 {
        let mut engine = engine;
        engine.set_parallelism(self.parallel.threads);
        let mut relations: Vec<String> = engine
            .program()
            .triggers
            .iter()
            .map(|t| t.relation.clone())
            .collect();
        relations.sort_unstable();
        relations.dedup();
        let slot = u32::try_from(self.slots.len()).expect("fewer than 2^32 views");
        for relation in &relations {
            self.routing.entry(relation.clone()).or_default().push(slot);
        }
        self.slots.push(Some(RegisteredEngine {
            engine,
            relations,
            poisoned: false,
        }));
        self.live += 1;
        slot
    }

    /// Whether the stage/commit protocol is enabled (the default). When disabled via
    /// [`EngineRegistry::set_staging`], dispatch applies batches directly — the
    /// pre-staging code path, byte-for-byte — and a failure can leave some engines
    /// applied and others not.
    pub fn staging(&self) -> bool {
        !self.direct
    }

    /// Enables or disables the stage/commit protocol. Disabling it exists for
    /// measurement (the `exp_faults` baseline) and for callers that prefer raw
    /// throughput over the all-or-nothing guarantee.
    pub fn set_staging(&mut self, staged: bool) {
        self.direct = !staged;
    }

    /// Whether the engine in `slot` is quarantined (it panicked during dispatch and
    /// its state can no longer be trusted). Unknown or removed slots report `false`.
    pub fn is_poisoned(&self, slot: u32) -> bool {
        self.slots
            .get(slot as usize)
            .and_then(|e| e.as_ref())
            .is_some_and(|r| r.poisoned)
    }

    /// The quarantined slots, in ascending order.
    pub fn poisoned_slots(&self) -> Vec<u32> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(slot, e)| match e {
                Some(r) if r.poisoned => Some(slot as u32),
                _ => None,
            })
            .collect()
    }

    /// Replaces the engine in a live slot with a rebuilt one and clears its
    /// quarantine flag, returning the old engine (`None` if the slot is unknown or
    /// removed). The replacement inherits the slot's routing, so it must read the
    /// same relations — the repair path rebuilds from the same compiled query, which
    /// guarantees that.
    pub fn replace(
        &mut self,
        slot: u32,
        engine: Box<dyn ViewEngine>,
    ) -> Option<Box<dyn ViewEngine>> {
        let registered = self.slots.get_mut(slot as usize)?.as_mut()?;
        let mut engine = engine;
        engine.set_parallelism(self.parallel.threads);
        let old = std::mem::replace(&mut registered.engine, engine);
        registered.poisoned = false;
        Some(old)
    }

    /// Removes an engine, returning it (its final state remains readable), or `None`
    /// if the slot is unknown or already removed. The slot is tombstoned, not reused.
    pub fn remove(&mut self, slot: u32) -> Option<Box<dyn ViewEngine>> {
        let registered = self.slots.get_mut(slot as usize)?.take()?;
        for relation in &registered.relations {
            if let Some(readers) = self.routing.get_mut(relation) {
                readers.retain(|&s| s != slot);
                if readers.is_empty() {
                    self.routing.remove(relation);
                }
            }
        }
        self.live -= 1;
        Some(registered.engine)
    }

    /// The engine in a slot (`None` if unknown or removed).
    pub fn engine(&self, slot: u32) -> Option<&dyn ViewEngine> {
        self.slots
            .get(slot as usize)?
            .as_ref()
            .map(|r| r.engine.as_ref())
    }

    /// Mutable access to the engine in a slot.
    pub fn engine_mut(&mut self, slot: u32) -> Option<&mut Box<dyn ViewEngine>> {
        self.slots
            .get_mut(slot as usize)?
            .as_mut()
            .map(|r| &mut r.engine)
    }

    /// Iterates the live engines as `(slot, engine)` pairs, in slot order.
    pub fn engines(&self) -> impl Iterator<Item = (u32, &dyn ViewEngine)> {
        self.slots.iter().enumerate().filter_map(|(slot, r)| {
            r.as_ref()
                .map(|r| (slot as u32, r.engine.as_ref() as &dyn ViewEngine))
        })
    }

    /// The slots of the engines whose programs read `relation` (empty if none do).
    pub fn readers_of(&self, relation: &str) -> &[u32] {
        self.routing
            .get(relation)
            .map(Vec::as_slice)
            .unwrap_or_default()
    }

    /// Applies one single-tuple update to exactly the engines that read its relation,
    /// returning how many engines fired. Updates to relations no engine reads return
    /// `Ok(0)` without touching anything; quarantined engines are skipped.
    ///
    /// **Atomic across engines** (while staging is enabled, the default): the update
    /// is staged on every reader in slot order and committed only if all stages
    /// succeed. On failure every stage is aborted, so a rejected update lands
    /// nowhere, and the first (lowest-slot) error is returned. A panic in an engine
    /// quarantines that slot and surfaces as [`RuntimeError::EnginePanicked`].
    ///
    /// With staging disabled this falls back to the old fire-in-slot-order loop,
    /// where a failure leaves every earlier engine's write applied.
    pub fn apply(&mut self, update: &Update) -> Result<u32, RuntimeError> {
        if update.multiplicity == 0 {
            return Ok(0);
        }
        let readers: Vec<u32> = match self.routing.get(update.relation.as_str()) {
            Some(readers) => readers
                .iter()
                .copied()
                .filter(|&slot| {
                    !self.slots[slot as usize]
                        .as_ref()
                        .expect("routing only lists live slots")
                        .poisoned
                })
                .collect(),
            None => return Ok(0),
        };
        if self.direct {
            for &slot in &readers {
                let registered = self.slots[slot as usize]
                    .as_mut()
                    .expect("routing only lists live slots");
                registered.engine.apply(update)?;
            }
            return Ok(readers.len() as u32);
        }
        let mut staged: Vec<(u32, StagedBatch)> = Vec::with_capacity(readers.len());
        let mut failure: Option<RuntimeError> = None;
        for &slot in &readers {
            let registered = self.slots[slot as usize]
                .as_mut()
                .expect("routing only lists live slots");
            match catch_unwind(AssertUnwindSafe(|| registered.engine.stage_update(update))) {
                Ok(Ok(token)) => staged.push((slot, token)),
                Ok(Err(err)) => {
                    failure = Some(err);
                    break;
                }
                Err(_) => {
                    registered.poisoned = true;
                    failure = Some(RuntimeError::EnginePanicked { slot });
                    break;
                }
            }
        }
        match failure {
            None => {
                let fired = staged.len() as u32;
                for (slot, token) in staged {
                    self.slots[slot as usize]
                        .as_mut()
                        .expect("routing only lists live slots")
                        .engine
                        .commit_staged(token);
                }
                Ok(fired)
            }
            Some(err) => {
                self.abort_staged_tokens(staged);
                Err(err)
            }
        }
    }

    /// Aborts staged tokens in reverse stage order, restoring each engine to its
    /// pre-dispatch state. An abort that itself panics quarantines the slot (the
    /// rollback did not complete, so the tables are in an unknown state).
    fn abort_staged_tokens(&mut self, staged: Vec<(u32, StagedBatch)>) {
        for (slot, token) in staged.into_iter().rev() {
            let registered = self.slots[slot as usize]
                .as_mut()
                .expect("routing only lists live slots");
            if catch_unwind(AssertUnwindSafe(|| registered.engine.abort_staged(token))).is_err() {
                registered.poisoned = true;
            }
        }
    }

    /// Fans one already-normalized [`DeltaBatch`] out to the union of the engines
    /// reading any relation the batch touches, returning how many engines fired. The
    /// batch is normalized **once** by the caller and borrowed by every engine — this
    /// is the shared-batch dispatch entry point that amortizes consolidation across
    /// views. Quarantined engines are skipped.
    ///
    /// **Atomic across engines** (while staging is enabled, the default): every
    /// touched engine stages the batch — applying it while logging pre-images — and
    /// only if *all* stages succeed are they committed. Any failure aborts every
    /// stage, leaving every engine's tables and stats bit-identical to before the
    /// call. The error contract stays deterministic, parallel or not: if several
    /// engines fail on the same batch, the failure from the **lowest slot** is
    /// reported — the same error the sequential loop surfaces first. A panic in an
    /// engine is caught, reported as [`RuntimeError::EnginePanicked`], and
    /// quarantines that slot (its mid-flight state cannot be rolled back); sibling
    /// slots are still aborted cleanly, so the batch lands nowhere.
    ///
    /// With a thread budget above one the touched engines stage concurrently on a
    /// scoped pool; commit/abort runs on the dispatching thread afterwards. With
    /// staging disabled ([`EngineRegistry::set_staging`]) this is the pre-staging
    /// direct dispatch, byte-for-byte, and a failure can leave sibling slots applied.
    pub fn apply_batch(&mut self, batch: &DeltaBatch<'_>) -> Result<u32, RuntimeError> {
        // Union of readers over the touched relations. Batches have at most two groups
        // per relation, so a sort/dedup over the concatenated reader lists stays tiny.
        let mut touched: Vec<u32> = Vec::new();
        for group in batch.groups() {
            touched.extend_from_slice(self.readers_of(group.relation()));
        }
        touched.sort_unstable();
        touched.dedup();
        touched.retain(|&slot| {
            !self.slots[slot as usize]
                .as_ref()
                .expect("routing only lists live slots")
                .poisoned
        });
        if self.direct {
            if self.parallel.threads <= 1 || touched.len() <= 1 {
                // The direct sequential path, exactly: byte-for-byte the pre-staging
                // registry when staging is off and `threads = 1`.
                for &slot in &touched {
                    let registered = self.slots[slot as usize]
                        .as_mut()
                        .expect("routing only lists live slots");
                    registered.engine.apply_batch_direct(batch)?;
                }
                return Ok(touched.len() as u32);
            }
            self.apply_batch_direct_parallel(batch, &touched)?;
            return Ok(touched.len() as u32);
        }
        if self.parallel.threads <= 1 || touched.len() <= 1 {
            return self.apply_batch_staged_sequential(batch, &touched);
        }
        self.apply_batch_staged_parallel(batch, &touched)?;
        Ok(touched.len() as u32)
    }

    /// Sequential stage → commit dispatch: stage each touched engine in slot order,
    /// short-circuiting on the first failure (which is therefore the lowest-slot
    /// failure); commit all stages on success, abort them in reverse on failure.
    fn apply_batch_staged_sequential(
        &mut self,
        batch: &DeltaBatch<'_>,
        touched: &[u32],
    ) -> Result<u32, RuntimeError> {
        let mut staged: Vec<(u32, StagedBatch)> = Vec::with_capacity(touched.len());
        let mut failure: Option<RuntimeError> = None;
        for &slot in touched {
            let registered = self.slots[slot as usize]
                .as_mut()
                .expect("routing only lists live slots");
            match catch_unwind(AssertUnwindSafe(|| registered.engine.stage_batch(batch))) {
                Ok(Ok(token)) => staged.push((slot, token)),
                Ok(Err(err)) => {
                    failure = Some(err);
                    break;
                }
                Err(_) => {
                    registered.poisoned = true;
                    failure = Some(RuntimeError::EnginePanicked { slot });
                    break;
                }
            }
        }
        match failure {
            None => {
                for (slot, token) in staged {
                    self.slots[slot as usize]
                        .as_mut()
                        .expect("routing only lists live slots")
                        .engine
                        .commit_staged(token);
                }
                Ok(touched.len() as u32)
            }
            Some(err) => {
                self.abort_staged_tokens(staged);
                Err(err)
            }
        }
    }

    /// Parallel stage → commit dispatch: the touched engines are handed out to a
    /// scoped worker pool via an atomic task counter. Each worker stages its engine
    /// under `catch_unwind` and hands the engine back with the outcome; after the
    /// pool joins, the dispatching thread commits everything (all staged) or aborts
    /// everything (any failure), so the registry-level protocol is identical to the
    /// sequential one.
    #[allow(clippy::type_complexity)]
    fn apply_batch_staged_parallel(
        &mut self,
        batch: &DeltaBatch<'_>,
        touched: &[u32],
    ) -> Result<(), RuntimeError> {
        enum StageOutcome {
            Staged(StagedBatch),
            Failed(RuntimeError),
            Panicked,
        }
        // Disjoint `&mut` borrows of the touched engines, in ascending slot order,
        // each behind a mutex so any worker may claim any task. Workers put the
        // engine back after staging so commit/abort can reach it post-join.
        let tasks: Vec<Mutex<Option<(u32, &mut Box<dyn ViewEngine>)>>> = self
            .slots
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, entry)| {
                let slot = u32::try_from(slot).expect("fewer than 2^32 views");
                if touched.binary_search(&slot).is_err() {
                    return None;
                }
                let registered = entry.as_mut().expect("routing only lists live slots");
                Some(Mutex::new(Some((slot, &mut registered.engine))))
            })
            .collect();
        let outcomes: Vec<Mutex<Option<StageOutcome>>> =
            tasks.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let workers = self.parallel.threads.min(tasks.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let claimed = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(claimed) else {
                        return;
                    };
                    let (slot, engine) = task
                        .lock()
                        .expect("task mutex is never poisoned")
                        .take()
                        .expect("each task index is claimed exactly once");
                    let outcome = match catch_unwind(AssertUnwindSafe(|| engine.stage_batch(batch)))
                    {
                        Ok(Ok(token)) => StageOutcome::Staged(token),
                        Ok(Err(err)) => StageOutcome::Failed(err),
                        Err(_) => StageOutcome::Panicked,
                    };
                    *task.lock().expect("task mutex is never poisoned") = Some((slot, engine));
                    *outcomes[claimed]
                        .lock()
                        .expect("outcome mutex is never poisoned") = Some(outcome);
                });
            }
        });
        let results: Vec<(u32, &mut Box<dyn ViewEngine>, StageOutcome)> = tasks
            .into_iter()
            .zip(outcomes)
            .map(|(task, outcome)| {
                let (slot, engine) = task
                    .into_inner()
                    .expect("task mutex is never poisoned")
                    .expect("workers hand every engine back");
                let outcome = outcome
                    .into_inner()
                    .expect("outcome mutex is never poisoned")
                    .expect("every claimed task records an outcome");
                (slot, engine, outcome)
            })
            .collect();
        let any_failed = results
            .iter()
            .any(|(_, _, o)| !matches!(o, StageOutcome::Staged(_)));
        if !any_failed {
            for (_, engine, outcome) in results {
                if let StageOutcome::Staged(token) = outcome {
                    engine.commit_staged(token);
                }
            }
            return Ok(());
        }
        // Abort in reverse slot order; walking in reverse also means the last error
        // recorded is the lowest slot's — the deterministic error contract.
        let mut error: Option<RuntimeError> = None;
        let mut poisons: Vec<u32> = Vec::new();
        for (slot, engine, outcome) in results.into_iter().rev() {
            match outcome {
                StageOutcome::Staged(token) => {
                    if catch_unwind(AssertUnwindSafe(|| engine.abort_staged(token))).is_err() {
                        poisons.push(slot);
                    }
                }
                StageOutcome::Failed(err) => error = Some(err),
                StageOutcome::Panicked => {
                    poisons.push(slot);
                    error = Some(RuntimeError::EnginePanicked { slot });
                }
            }
        }
        for slot in poisons {
            self.slots[slot as usize]
                .as_mut()
                .expect("routing only lists live slots")
                .poisoned = true;
        }
        Err(error.expect("a failing slot exists"))
    }

    /// Parallel direct dispatch (staging disabled): the pre-staging fan-out,
    /// byte-for-byte. A failure can leave sibling slots applied; the lowest failing
    /// slot's error is still the one reported.
    #[allow(clippy::type_complexity)]
    fn apply_batch_direct_parallel(
        &mut self,
        batch: &DeltaBatch<'_>,
        touched: &[u32],
    ) -> Result<(), RuntimeError> {
        // Disjoint `&mut` borrows of the touched engines, in ascending slot order,
        // each behind a mutex so any worker may claim any task.
        let tasks: Vec<Mutex<Option<(u32, &mut Box<dyn ViewEngine>)>>> = self
            .slots
            .iter_mut()
            .enumerate()
            .filter_map(|(slot, entry)| {
                let slot = u32::try_from(slot).expect("fewer than 2^32 views");
                if touched.binary_search(&slot).is_err() {
                    return None;
                }
                let registered = entry.as_mut().expect("routing only lists live slots");
                Some(Mutex::new(Some((slot, &mut registered.engine))))
            })
            .collect();
        let next = AtomicUsize::new(0);
        let failures: Mutex<Vec<(u32, RuntimeError)>> = Mutex::new(Vec::new());
        let workers = self.parallel.threads.min(tasks.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let claimed = next.fetch_add(1, Ordering::Relaxed);
                    let Some(task) = tasks.get(claimed) else {
                        return;
                    };
                    let (slot, engine) = task
                        .lock()
                        .expect("task mutex is never poisoned")
                        .take()
                        .expect("each task index is claimed exactly once");
                    if let Err(err) = engine.apply_batch_direct(batch) {
                        failures
                            .lock()
                            .expect("failure mutex is never poisoned")
                            .push((slot, err));
                    }
                });
            }
        });
        let mut failures = failures.into_inner().expect("all workers joined");
        // Deterministic error contract: the lowest failing slot wins — the error the
        // sequential loop would have surfaced first.
        failures.sort_unstable_by_key(|(slot, _)| *slot);
        match failures.into_iter().next() {
            Some((_, err)) => Err(err),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::boxed_engine;
    use crate::storage::StorageBackend;
    use dbring_agca::parser::parse_query;
    use dbring_algebra::Number;
    use dbring_compiler::compile;
    use dbring_relations::{Database, Value};

    fn catalog() -> Database {
        let mut db = Database::new();
        db.declare("R", &["A"]).unwrap();
        db.declare("S", &["B"]).unwrap();
        db
    }

    fn engine_for(text: &str) -> Box<dyn ViewEngine> {
        let program = compile(&catalog(), &parse_query(text).unwrap()).unwrap();
        boxed_engine(program, StorageBackend::Hash)
    }

    #[test]
    fn updates_route_only_to_reading_engines() {
        let mut registry = EngineRegistry::new();
        let r_sum = registry.register(engine_for("r_sum := Sum(R(x))"));
        let s_sum = registry.register(engine_for("s_sum := Sum(S(y))"));
        let both = registry.register(engine_for("both := Sum(R(x) * S(x))"));
        assert_eq!(registry.len(), 3);
        assert_eq!(registry.readers_of("R"), &[r_sum, both]);
        assert_eq!(registry.readers_of("S"), &[s_sum, both]);
        assert_eq!(registry.readers_of("T"), &[] as &[u32]);

        let fired = registry
            .apply(&Update::insert("R", vec![Value::int(1)]))
            .unwrap();
        assert_eq!(fired, 2);
        assert_eq!(registry.engine(r_sum).unwrap().stats().updates, 1);
        assert_eq!(registry.engine(s_sum).unwrap().stats().updates, 0);
        assert_eq!(registry.engine(both).unwrap().stats().updates, 1);
        // A relation nobody reads is a no-op, not an error.
        assert_eq!(
            registry
                .apply(&Update::insert("T", vec![Value::int(1)]))
                .unwrap(),
            0
        );
    }

    #[test]
    fn shared_batch_dispatch_fans_out_to_the_union_of_readers() {
        let mut registry = EngineRegistry::new();
        let r_sum = registry.register(engine_for("r_sum := Sum(R(x))"));
        let s_sum = registry.register(engine_for("s_sum := Sum(S(y))"));
        let updates = [
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("S", vec![Value::int(9)]),
            Update::delete("S", vec![Value::int(9)]),
        ];
        let batch = DeltaBatch::from_updates(&updates);
        // S's updates cancel inside the batch: only R's reader fires.
        let fired = registry.apply_batch(&batch).unwrap();
        assert_eq!(fired, 1);
        assert_eq!(
            registry.engine(r_sum).unwrap().output_value(&[]),
            Number::Int(2)
        );
        assert_eq!(registry.engine(s_sum).unwrap().stats().updates, 0);
        assert_eq!(registry.apply_batch(&DeltaBatch::default()).unwrap(), 0);
    }

    #[test]
    fn removal_tombstones_the_slot_and_cleans_routing() {
        let mut registry = EngineRegistry::new();
        let a = registry.register(engine_for("a := Sum(R(x))"));
        let b = registry.register(engine_for("b := Sum(R(x) * x)"));
        let removed = registry.remove(a).expect("live slot removes");
        assert_eq!(removed.output_value(&[]), Number::Int(0));
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.readers_of("R"), &[b]);
        assert!(registry.engine(a).is_none());
        assert!(registry.remove(a).is_none(), "double remove misses");
        assert!(registry.remove(99).is_none(), "unknown slot misses");
        // Slots are never reused: a new engine gets a fresh id.
        let c = registry.register(engine_for("c := Sum(R(x))"));
        assert_ne!(c, a);
        assert_eq!(registry.readers_of("R"), &[b, c]);
        registry
            .apply(&Update::insert("R", vec![Value::int(2)]))
            .unwrap();
        assert_eq!(
            registry.engine(c).unwrap().output_value(&[]),
            Number::Int(1)
        );
        assert_eq!(
            registry.engines().map(|(slot, _)| slot).collect::<Vec<_>>(),
            vec![b, c]
        );
    }

    #[test]
    fn parallel_dispatch_matches_sequential_dispatch_exactly() {
        let engines = [
            "r_sum := Sum(R(x))",
            "r_wsum := Sum(R(x) * x)",
            "s_sum := Sum(S(y))",
            "both := Sum(R(x) * S(x))",
        ];
        let build = |config: ParallelConfig| {
            let mut registry = EngineRegistry::with_parallelism(config);
            for text in engines {
                registry.register(engine_for(text));
            }
            registry
        };
        let mut sequential = build(ParallelConfig::sequential());
        let mut parallel = build(ParallelConfig::with_threads(4));
        let updates = [
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("R", vec![Value::int(2)]),
            Update::insert("S", vec![Value::int(1)]),
            Update::delete("R", vec![Value::int(2)]),
            Update::insert("S", vec![Value::int(3)]),
        ];
        let batch = DeltaBatch::from_updates(&updates);
        assert_eq!(sequential.apply_batch(&batch).unwrap(), 4);
        assert_eq!(parallel.apply_batch(&batch).unwrap(), 4);
        for slot in 0..engines.len() as u32 {
            let seq = sequential.engine(slot).unwrap();
            let par = parallel.engine(slot).unwrap();
            assert_eq!(par.output_table(), seq.output_table(), "slot {slot} table");
            assert_eq!(par.stats(), seq.stats(), "slot {slot} work counters");
        }
    }

    #[test]
    fn parallel_dispatch_failure_reports_the_lowest_slot() {
        let mut db = Database::new();
        db.declare("R", &["A"]).unwrap();
        db.declare("S", &["B"]).unwrap();
        db.declare("T", &["C"]).unwrap();
        let engine = |text: &str| {
            let program = compile(&db, &parse_query(text).unwrap()).unwrap();
            boxed_engine(program, StorageBackend::Hash)
        };
        let mut registry = EngineRegistry::with_parallelism(ParallelConfig::with_threads(4));
        let ok = registry.register(engine("ok := Sum(R(x))"));
        registry.register(engine("fails_s := Sum(S(y))"));
        registry.register(engine("fails_t := Sum(T(z))"));
        // One healthy R delta plus bad-arity S and T deltas: slots 1 and 2 both fail
        // on the same batch, with distinguishable errors.
        let updates = [
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("S", vec![Value::int(1), Value::int(2)]),
            Update::insert("T", vec![Value::int(1), Value::int(2)]),
        ];
        let batch = DeltaBatch::from_updates(&updates);
        // Several rounds for scheduler variety: the T engine finishing first must
        // never let its error shadow the S engine's.
        for _ in 0..8 {
            let mut fork = registry.clone();
            let err = fork.apply_batch(&batch).unwrap_err();
            assert_eq!(
                err,
                RuntimeError::ArityMismatch {
                    relation: "S".into(),
                    expected: 1,
                    got: 2
                },
                "the lowest failing slot's error wins"
            );
            // The sequential path surfaces the identical error...
            let mut seq = registry.clone();
            seq.set_parallelism(ParallelConfig::sequential());
            assert_eq!(seq.apply_batch(&batch).unwrap_err(), err);
            // ...and the staged protocol aborted every sibling: the healthy R reader
            // staged its delta but rolled it back, so the batch landed nowhere.
            assert_eq!(
                fork.engine(ok).unwrap().output_value(&[]),
                Number::Int(0),
                "a failed dispatch lands nowhere, even at healthy slots"
            );
            assert_eq!(
                fork.engine(ok).unwrap().stats().updates,
                0,
                "aborted stages restore work counters too"
            );
            assert_eq!(
                seq.engine(ok).unwrap().output_value(&[]),
                Number::Int(0),
                "the sequential staged path rolls back identically"
            );
        }
    }

    #[test]
    fn direct_mode_restores_the_partial_apply_behavior() {
        let mut db = Database::new();
        db.declare("R", &["A"]).unwrap();
        db.declare("S", &["B"]).unwrap();
        let engine = |text: &str| {
            let program = compile(&db, &parse_query(text).unwrap()).unwrap();
            boxed_engine(program, StorageBackend::Hash)
        };
        let mut registry = EngineRegistry::with_parallelism(ParallelConfig::sequential());
        registry.set_staging(false);
        assert!(!registry.staging());
        let ok = registry.register(engine("ok := Sum(R(x))"));
        registry.register(engine("fails := Sum(S(y))"));
        let updates = [
            Update::insert("R", vec![Value::int(1)]),
            Update::insert("S", vec![Value::int(1), Value::int(2)]),
        ];
        let batch = DeltaBatch::from_updates(&updates);
        registry.apply_batch(&batch).unwrap_err();
        // With staging off, the healthy lower slot applied before the failure — the
        // pre-staging contract, preserved as the measurement baseline.
        assert_eq!(
            registry.engine(ok).unwrap().output_value(&[]),
            Number::Int(1),
            "direct mode lets sibling slots apply"
        );
    }

    #[test]
    fn a_panicking_engine_is_quarantined_and_siblings_roll_back() {
        use crate::executor::Executor;
        use crate::fault::{with_fault, FaultOp, FaultPlan, FaultStorage};
        use crate::storage::HashViewStorage;

        let catalog = catalog();
        let program = |text: &str| compile(&catalog, &parse_query(text).unwrap()).unwrap();
        for threads in [1usize, 4] {
            let mut registry =
                EngineRegistry::with_parallelism(ParallelConfig::with_threads(threads));
            let healthy = registry.register(engine_for("healthy := Sum(R(x))"));
            let victim = registry.register(Box::new(
                Executor::<FaultStorage<HashViewStorage>>::with_backend(program(
                    "victim := Sum(R(x) * x)",
                )),
            ));
            let updates = [
                Update::insert("R", vec![Value::int(2)]),
                Update::insert("R", vec![Value::int(3)]),
            ];
            let batch = DeltaBatch::from_updates(&updates);
            // Warm both engines with a clean batch first.
            assert_eq!(registry.apply_batch(&batch).unwrap(), 2);
            let healthy_table = registry.engine(healthy).unwrap().output_table();

            // The batched path lands its writes through consolidated flushes, so
            // target the first `apply_sorted` of the dispatch.
            let err = with_fault(FaultPlan::new(FaultOp::ApplySorted, 0), || {
                registry.apply_batch(&batch).unwrap_err()
            });
            assert_eq!(
                err,
                RuntimeError::EnginePanicked { slot: victim },
                "threads={threads}"
            );
            assert!(registry.is_poisoned(victim));
            assert_eq!(registry.poisoned_slots(), vec![victim]);
            assert!(!registry.is_poisoned(healthy));
            // The healthy sibling rolled back: the failed batch landed nowhere.
            assert_eq!(
                registry.engine(healthy).unwrap().output_table(),
                healthy_table
            );

            // Ingest now skips the quarantined slot but keeps serving the healthy one.
            assert_eq!(registry.apply_batch(&batch).unwrap(), 1);
            assert_eq!(
                registry.engine(healthy).unwrap().output_value(&[]),
                Number::Int(4)
            );

            // Repair: replace the slot with a rebuilt engine; quarantine clears.
            let rebuilt = Box::new(Executor::<FaultStorage<HashViewStorage>>::with_backend(
                program("victim := Sum(R(x) * x)"),
            ));
            registry.replace(victim, rebuilt).expect("slot is live");
            assert!(!registry.is_poisoned(victim));
            assert_eq!(registry.apply_batch(&batch).unwrap(), 2);
            assert_eq!(
                registry.engine(victim).unwrap().output_value(&[]),
                Number::Int(5)
            );
        }
    }

    #[test]
    fn engine_mut_reaches_the_hosted_engine() {
        let mut registry = EngineRegistry::new();
        let slot = registry.register(engine_for("a := Sum(R(x))"));
        registry
            .apply(&Update::insert("R", vec![Value::int(1)]))
            .unwrap();
        registry.engine_mut(slot).unwrap().reset_stats();
        assert_eq!(registry.engine(slot).unwrap().stats().updates, 0);
        assert!(registry.engine_mut(42).is_none());
    }
}
