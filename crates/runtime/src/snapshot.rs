//! Published read-only view snapshots: the read side of the serving story.
//!
//! The ingest side of this runtime mutates [`ViewStorage`](crate::ViewStorage) maps
//! in place under `&mut` access, so a reader holding `&Ring` blocks the writer (and
//! vice versa). This module decouples the two with an epoch-published, RCU-style
//! snapshot per view:
//!
//! * [`ViewSnapshot`] — an immutable, `Arc`-shared copy of one view's output table,
//!   sorted by group key. Cloning is an `Arc` clone (O(1)); every read — point
//!   lookups, prefix scans, full iteration — runs lock-free against the shared
//!   immutable data, so any number of threads can read one snapshot concurrently
//!   while the writer keeps ingesting.
//! * [`SnapshotStore`] — the per-view publication slots. A writer *publishes* a fresh
//!   snapshot at a quiescent point (a batch-commit boundary); readers *acquire* the
//!   current snapshot. Acquire is O(1): one shared-lock on the slot table plus one
//!   per-slot mutex held only for an `Arc` clone — never for the duration of a read —
//!   and publication swaps a pointer, so writers never wait for readers to finish.
//!
//! The store tracks view lifecycle alongside the published data: a quarantined view's
//! slot is flagged so acquisition fails *up front* ([`SnapshotAccess::Poisoned`])
//! instead of serving a table that reflects a half-applied batch, and a dropped
//! view's slot releases its snapshot promptly ([`SnapshotAccess::Dropped`]) so the
//! memory is reclaimed as soon as the last outstanding reader handle goes away.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Mutex, RwLock};

use dbring_algebra::Number;
use dbring_relations::Value;

/// An immutable point-in-time copy of one view's output table, shared by `Arc`.
///
/// A snapshot is produced by the ingest side at a batch-commit quiescent point and
/// never changes afterwards: updates ingested later publish *new* snapshots and can
/// never perturb one already handed out. `Clone` is an `Arc` clone, and every
/// accessor takes `&self` over immutable data, so snapshots are `Send + Sync` and
/// freely shared across reader threads with zero locking on the read path.
#[derive(Clone)]
pub struct ViewSnapshot {
    inner: Arc<SnapshotInner>,
}

struct SnapshotInner {
    name: Arc<str>,
    epoch: u64,
    ingested: u64,
    /// The output table, sorted ascending by group key (unique keys, no zeros) —
    /// binary-searchable for point lookups and contiguous for prefix scans.
    entries: Vec<(Vec<Value>, Number)>,
}

/// Compares a key against a prefix, considering only the key's first
/// `prefix.len()` components (a key shorter than the prefix compares `Less`,
/// so it can never match).
fn prefix_cmp(key: &[Value], prefix: &[Value]) -> Ordering {
    key[..key.len().min(prefix.len())].cmp(prefix)
}

impl ViewSnapshot {
    /// Builds a snapshot from entries already sorted ascending by unique key
    /// (the order a `BTreeMap` iterates in).
    pub fn new(
        name: Arc<str>,
        epoch: u64,
        ingested: u64,
        entries: Vec<(Vec<Value>, Number)>,
    ) -> Self {
        debug_assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        ViewSnapshot {
            inner: Arc::new(SnapshotInner {
                name,
                epoch,
                ingested,
                entries,
            }),
        }
    }

    /// The name of the view this snapshot was published from.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The store-wide publication epoch this snapshot was published at. Strictly
    /// increasing per publication round, so two snapshots of one view are ordered
    /// by epoch.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// How many single-tuple updates the ring had ingested when this snapshot was
    /// published — the snapshot equals the view's table after exactly that prefix
    /// of the update stream.
    pub fn ingested(&self) -> u64 {
        self.inner.ingested
    }

    /// Number of groups (rows) in the snapshot.
    pub fn len(&self) -> usize {
        self.inner.entries.len()
    }

    /// Whether the snapshot holds no groups.
    pub fn is_empty(&self) -> bool {
        self.inner.entries.is_empty()
    }

    /// Point lookup: the value stored under `key`, if the group is present.
    pub fn get(&self, key: &[Value]) -> Option<Number> {
        self.inner
            .entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.inner.entries[i].1)
    }

    /// Point lookup with the ring's absent-means-zero convention (the snapshot
    /// counterpart of a live view's `value()`).
    pub fn value(&self, key: &[Value]) -> Number {
        self.get(key).unwrap_or(Number::Int(0))
    }

    /// Iterates every `(key, value)` group in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], Number)> {
        self.inner.entries.iter().map(|(k, v)| (k.as_slice(), *v))
    }

    /// Prefix scan: every group whose key begins with `prefix`, in ascending key
    /// order, located by binary search (no full-table walk).
    pub fn prefix_scan<'a>(
        &'a self,
        prefix: &[Value],
    ) -> impl Iterator<Item = (&'a [Value], Number)> {
        let entries = &self.inner.entries;
        let start = entries.partition_point(|(k, _)| prefix_cmp(k, prefix) == Ordering::Less);
        let len =
            entries[start..].partition_point(|(k, _)| prefix_cmp(k, prefix) == Ordering::Equal);
        entries[start..start + len]
            .iter()
            .map(|(k, v)| (k.as_slice(), *v))
    }

    /// The snapshot as an owned `BTreeMap` — an explicit O(n) export for tests and
    /// bulk consumers, *not* part of the per-request read path.
    pub fn table(&self) -> BTreeMap<Vec<Value>, Number> {
        self.inner
            .entries
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

impl fmt::Debug for ViewSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ViewSnapshot")
            .field("name", &self.inner.name)
            .field("epoch", &self.inner.epoch)
            .field("ingested", &self.inner.ingested)
            .field("len", &self.inner.entries.len())
            .finish()
    }
}

/// What acquiring a view's snapshot slot found.
#[derive(Clone, Debug)]
pub enum SnapshotAccess {
    /// The current published snapshot.
    Published(ViewSnapshot),
    /// The view is quarantined (its engine failed mid-ingest); the carried name is
    /// for the error message. Nothing is served until the view is repaired.
    Poisoned(Arc<str>),
    /// The view was dropped; its snapshot has been released.
    Dropped,
    /// No view was ever registered in this slot.
    Unknown,
}

/// One view's publication slot.
enum SlotState {
    Published(ViewSnapshot),
    Poisoned(Arc<str>),
    Dropped,
}

/// The per-view snapshot publication slots, shared between one writer and any
/// number of readers via `Arc<SnapshotStore>`.
///
/// Slot indices parallel the owning engine registry's slots: registered in creation
/// order, never reused. The writer publishes at quiescent points with
/// [`SnapshotStore::publish`]; readers acquire with [`SnapshotStore::acquire`].
/// All slot access is O(1) — a shared lock on the slot table (taken exclusively
/// only when a *new* view is registered) plus a per-slot mutex held just long
/// enough to clone or swap an `Arc`.
pub struct SnapshotStore {
    slots: RwLock<Vec<Mutex<SlotState>>>,
    epoch: AtomicU64,
}

impl SnapshotStore {
    /// An empty store (no slots, epoch 0).
    pub fn new() -> Self {
        SnapshotStore {
            slots: RwLock::new(Vec::new()),
            epoch: AtomicU64::new(0),
        }
    }

    /// Registers the next slot with its initial snapshot and returns the slot index.
    pub fn register(&self, snapshot: ViewSnapshot) -> u32 {
        let mut slots = self.slots.write().expect("snapshot store lock poisoned");
        slots.push(Mutex::new(SlotState::Published(snapshot)));
        (slots.len() - 1) as u32
    }

    /// Registers the next slot already dropped (used when mirroring a store whose
    /// owning ring has tombstoned slots — indices must stay aligned).
    pub fn register_dropped(&self) {
        let mut slots = self.slots.write().expect("snapshot store lock poisoned");
        slots.push(Mutex::new(SlotState::Dropped));
    }

    /// Number of slots ever registered (dropped slots included — indices are stable).
    pub fn len(&self) -> usize {
        self.slots
            .read()
            .expect("snapshot store lock poisoned")
            .len()
    }

    /// Whether no slot was ever registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Draws the next publication epoch (strictly increasing for the store's life).
    pub fn next_epoch(&self) -> u64 {
        self.epoch.fetch_add(1, AtomicOrdering::Relaxed) + 1
    }

    /// Swaps `slot`'s published snapshot for a fresh one (clearing any quarantine
    /// flag — the repair path republishes through here). The displaced snapshot's
    /// memory is freed once the last reader clone of it goes away.
    pub fn publish(&self, slot: u32, snapshot: ViewSnapshot) {
        let slots = self.slots.read().expect("snapshot store lock poisoned");
        let mut state = slots[slot as usize]
            .lock()
            .expect("snapshot slot lock poisoned");
        *state = SlotState::Published(snapshot);
    }

    /// Flags `slot` as quarantined: acquisition reports
    /// [`SnapshotAccess::Poisoned`] until a repair republishes. The stale snapshot
    /// is released immediately — it predates the failure, but serving it would
    /// silently freeze the view, so the poisoning is surfaced instead.
    pub fn poison(&self, slot: u32) {
        let slots = self.slots.read().expect("snapshot store lock poisoned");
        let mut state = slots[slot as usize]
            .lock()
            .expect("snapshot slot lock poisoned");
        if let SlotState::Published(snapshot) = &*state {
            let name = Arc::from(snapshot.name());
            *state = SlotState::Poisoned(name);
        }
    }

    /// Releases `slot`'s snapshot for good (the view was dropped). Readers still
    /// holding a previously acquired [`ViewSnapshot`] keep it alive until they
    /// drop it; new acquisitions report [`SnapshotAccess::Dropped`].
    pub fn evict(&self, slot: u32) {
        let slots = self.slots.read().expect("snapshot store lock poisoned");
        let mut state = slots[slot as usize]
            .lock()
            .expect("snapshot slot lock poisoned");
        *state = SlotState::Dropped;
    }

    /// Acquires `slot`'s current snapshot — O(1), independent of view size.
    pub fn acquire(&self, slot: u32) -> SnapshotAccess {
        let slots = self.slots.read().expect("snapshot store lock poisoned");
        let Some(cell) = slots.get(slot as usize) else {
            return SnapshotAccess::Unknown;
        };
        let state = cell.lock().expect("snapshot slot lock poisoned");
        match &*state {
            SlotState::Published(snapshot) => SnapshotAccess::Published(snapshot.clone()),
            SlotState::Poisoned(name) => SnapshotAccess::Poisoned(name.clone()),
            SlotState::Dropped => SnapshotAccess::Dropped,
        }
    }

    /// The slot index of the live (published or poisoned) view named `name`, if any
    /// — a linear scan over the slots, for name-addressed acquisition.
    pub fn find(&self, name: &str) -> Option<u32> {
        let slots = self.slots.read().expect("snapshot store lock poisoned");
        slots
            .iter()
            .position(|cell| {
                let state = cell.lock().expect("snapshot slot lock poisoned");
                match &*state {
                    SlotState::Published(snapshot) => snapshot.name() == name,
                    SlotState::Poisoned(slot_name) => &**slot_name == name,
                    SlotState::Dropped => false,
                }
            })
            .map(|i| i as u32)
    }

    /// Total groups currently held across all published snapshots — the store's
    /// memory-proxy footprint (dropped and poisoned slots contribute zero).
    pub fn published_entries(&self) -> usize {
        let slots = self.slots.read().expect("snapshot store lock poisoned");
        slots
            .iter()
            .map(|cell| {
                let state = cell.lock().expect("snapshot slot lock poisoned");
                match &*state {
                    SlotState::Published(snapshot) => snapshot.len(),
                    _ => 0,
                }
            })
            .sum()
    }
}

impl Default for SnapshotStore {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SnapshotStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotStore")
            .field("slots", &self.len())
            .field("epoch", &self.epoch.load(AtomicOrdering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().copied().map(Value::int).collect()
    }

    fn snap(name: &str, entries: &[(&[i64], i64)]) -> ViewSnapshot {
        ViewSnapshot::new(
            Arc::from(name),
            1,
            0,
            entries
                .iter()
                .map(|(k, v)| (key(k), Number::Int(*v)))
                .collect(),
        )
    }

    #[test]
    fn snapshots_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ViewSnapshot>();
        assert_send_sync::<SnapshotStore>();
    }

    #[test]
    fn point_lookups_and_absent_means_zero() {
        let s = snap("v", &[(&[1, 1], 10), (&[1, 2], 20), (&[2, 1], 30)]);
        assert_eq!(s.value(&key(&[1, 2])), Number::Int(20));
        assert_eq!(s.get(&key(&[9, 9])), None);
        assert_eq!(s.value(&key(&[9, 9])), Number::Int(0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn prefix_scans_return_the_contiguous_run() {
        let s = snap(
            "v",
            &[
                (&[1, 1], 10),
                (&[1, 2], 20),
                (&[2, 1], 30),
                (&[2, 5], 40),
                (&[3, 0], 50),
            ],
        );
        let hits: Vec<i64> = s
            .prefix_scan(&key(&[2]))
            .map(|(_, v)| match v {
                Number::Int(i) => i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(hits, vec![30, 40]);
        assert_eq!(s.prefix_scan(&key(&[7])).count(), 0);
        // An empty prefix scans everything.
        assert_eq!(s.prefix_scan(&[]).count(), 5);
    }

    #[test]
    fn store_lifecycle_publish_poison_evict() {
        let store = SnapshotStore::new();
        let slot = store.register(snap("v", &[(&[1], 5)]));
        assert!(matches!(store.acquire(slot), SnapshotAccess::Published(_)));
        assert_eq!(store.find("v"), Some(slot));
        assert_eq!(store.published_entries(), 1);

        store.poison(slot);
        match store.acquire(slot) {
            SnapshotAccess::Poisoned(name) => assert_eq!(&*name, "v"),
            other => panic!("expected poisoned, got {other:?}"),
        }
        assert_eq!(store.published_entries(), 0);
        // Poisoned views are still name-addressable (the error must name them).
        assert_eq!(store.find("v"), Some(slot));

        let epoch = store.next_epoch();
        store.publish(slot, snap("v", &[(&[1], 6), (&[2], 7)]));
        assert!(epoch >= 1);
        assert!(matches!(store.acquire(slot), SnapshotAccess::Published(_)));
        assert_eq!(store.published_entries(), 2);

        store.evict(slot);
        assert!(matches!(store.acquire(slot), SnapshotAccess::Dropped));
        assert_eq!(store.find("v"), None);
        assert!(matches!(store.acquire(99), SnapshotAccess::Unknown));
    }

    #[test]
    fn acquired_snapshots_survive_later_publications_and_evictions() {
        let store = SnapshotStore::new();
        let slot = store.register(snap("v", &[(&[1], 5)]));
        let held = match store.acquire(slot) {
            SnapshotAccess::Published(s) => s,
            other => panic!("{other:?}"),
        };
        store.publish(slot, snap("v", &[(&[1], 99)]));
        store.evict(slot);
        // The handle acquired earlier still reads its point-in-time data.
        assert_eq!(held.value(&key(&[1])), Number::Int(5));
    }
}
