//! Fault injection for chaos-testing the staged ingest protocol.
//!
//! [`FaultStorage`] wraps any [`ViewStorage`] backend and delegates every operation
//! verbatim — except that a globally *armed* [`FaultPlan`] makes the Nth occurrence
//! of a chosen operation kind panic mid-write. That is exactly the failure the
//! stage/commit protocol has to survive: a view engine dying half-way through a
//! batch, with some writes landed and some not, on whatever thread the dispatch
//! pool happened to schedule it on. The registry catches the unwind, quarantines
//! the slot, and rolls every sibling back; the chaos property tests assert the ring
//! is bit-identical to its pre-batch state afterwards.
//!
//! Design notes:
//!
//! * **Panic-only.** [`ViewStorage`] operations are infallible by contract, so the
//!   only storage-level failure mode that exists is a panic. `Err`-path failures
//!   are injected one level up, with malformed updates (wrong arity, wrong types)
//!   fed to the ingest path — see the fault property tests.
//! * **Global plan.** The armed plan and its operation counter live in a process
//!   global, not in the storage value: dispatch and shard workers run on separate
//!   threads and storages are cloned freely, so per-instance state would never see
//!   a coherent "Nth operation". The counter spans every [`FaultStorage`] instance
//!   in the process, which is what "the Nth probe of this ingest call" means in a
//!   test that controls its storages. Tests must serialize armed sections —
//!   [`with_fault`] does so with an internal lock.
//! * **Rollback is exempt.** [`ViewStorage::restore`] (and `set`) delegate without
//!   tripping: they are the rollback/initialization primitives, and a fault that
//!   re-fired while the registry was aborting staged siblings would turn one
//!   injected failure into a cascade that poisons every view, which is not the
//!   scenario under test. A panic during abort is still *handled* (the slot is
//!   quarantined); it is just not what this injector produces.
//! * A plan **auto-disarms when it fires**, so one armed fault produces exactly
//!   one panic.

use dbring_algebra::Number;
use dbring_relations::Value;
use std::sync::Mutex;

use crate::storage::{StorageBackend, StorageFootprint, ViewStorage};

/// The operation kinds a [`FaultPlan`] can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Point probes ([`ViewStorage::get`]) — fires inside trigger evaluation and
    /// inside the stage path's pre-image capture.
    Probe,
    /// Point writes ([`ViewStorage::add`] / [`ViewStorage::add_ref`]).
    Add,
    /// Consolidated batch flushes ([`ViewStorage::apply_sorted`] /
    /// [`ViewStorage::apply_sorted_sharded`] /
    /// [`ViewStorage::apply_sorted_logged`]).
    ApplySorted,
}

/// "Panic at the `at`-th occurrence (0-based) of operation `op`, process-wide."
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The targeted operation kind.
    pub op: FaultOp,
    /// How many matching operations to let through before panicking.
    pub at: usize,
}

impl FaultPlan {
    /// A plan that panics at the `at`-th (0-based) occurrence of `op`.
    pub fn new(op: FaultOp, at: usize) -> Self {
        FaultPlan { op, at }
    }
}

/// The armed plan and how many matching operations have been observed so far.
static ARMED: Mutex<Option<(FaultPlan, usize)>> = Mutex::new(None);

/// Serializes armed sections across tests: `cargo test` runs tests on concurrent
/// threads, and the plan is process-global.
static FAULT_SECTION: Mutex<()> = Mutex::new(());

/// Arms `plan`, resetting the operation counter. Prefer [`with_fault`], which also
/// serializes concurrently running tests and disarms on exit.
pub fn arm(plan: FaultPlan) {
    *lock(&ARMED) = Some((plan, 0));
}

/// Disarms any armed plan.
pub fn disarm() {
    *lock(&ARMED) = None;
}

/// Runs `f` with `plan` armed, holding the global fault-section lock so concurrent
/// tests cannot trip each other's plans, and disarming on exit (even by unwind).
/// The closure's panics propagate — arm a plan the closure *catches* (the staged
/// dispatch path does) or expect the unwind.
pub fn with_fault<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    let _section = lock(&FAULT_SECTION);
    struct DisarmOnDrop;
    impl Drop for DisarmOnDrop {
        fn drop(&mut self) {
            disarm();
        }
    }
    let _disarm = DisarmOnDrop;
    arm(plan);
    f()
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A fired fault unwinds through guard drops, so treat poisoning as benign.
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Counts one occurrence of `op` against the armed plan, panicking (and
/// auto-disarming) when the plan's target is reached.
fn trip(op: FaultOp) {
    let mut armed = lock(&ARMED);
    if let Some((plan, seen)) = armed.as_mut() {
        if plan.op == op {
            let n = *seen;
            *seen += 1;
            if n >= plan.at {
                let fired = *plan;
                *armed = None;
                drop(armed);
                panic!("injected fault: {:?} operation #{}", fired.op, fired.at);
            }
        }
    }
}

/// A [`ViewStorage`] decorator that panics at a planned operation — the chaos
/// backend behind the fault property tests. Wraps any backend; with no plan armed
/// it is a zero-behavior-change passthrough.
#[derive(Clone, Debug)]
pub struct FaultStorage<S: ViewStorage>(pub S);

impl<S: ViewStorage> ViewStorage for FaultStorage<S> {
    /// Purely a name (see [`ViewStorage::BACKEND`]): reports the wrapped backend.
    const BACKEND: StorageBackend = S::BACKEND;

    fn new(key_arity: usize) -> Self {
        FaultStorage(S::new(key_arity))
    }

    fn key_arity(&self) -> usize {
        self.0.key_arity()
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, key: &[Value]) -> Number {
        trip(FaultOp::Probe);
        self.0.get(key)
    }

    fn add(&mut self, key: Vec<Value>, delta: Number) {
        trip(FaultOp::Add);
        self.0.add(key, delta);
    }

    fn add_ref(&mut self, key: &[Value], delta: Number) {
        trip(FaultOp::Add);
        self.0.add_ref(key, delta);
    }

    fn apply_sorted(&mut self, deltas: &[(&[Value], Number)]) {
        trip(FaultOp::ApplySorted);
        self.0.apply_sorted(deltas);
    }

    fn apply_sorted_sharded(&mut self, deltas: &[(&[Value], Number)], shards: usize) {
        trip(FaultOp::ApplySorted);
        self.0.apply_sorted_sharded(deltas, shards);
    }

    fn apply_sorted_logged(
        &mut self,
        deltas: &[(&[Value], Number)],
        log: impl FnMut(&[Value], Number),
    ) {
        // The staged landing pass is a flush like any other: one ApplySorted trip,
        // then the wrapped backend's combined capture-and-land.
        trip(FaultOp::ApplySorted);
        self.0.apply_sorted_logged(deltas, log);
    }

    fn set(&mut self, key: Vec<Value>, value: Number) {
        // Initialization path: uninstrumented so backfill/repair never trips.
        self.0.set(key, value);
    }

    fn restore(&mut self, key: &[Value], value: Number) {
        // Rollback primitive: uninstrumented so aborting staged siblings cannot
        // re-fire the fault that triggered the abort (see module docs).
        self.0.restore(key, value);
    }

    fn register_index(&mut self, positions: Vec<usize>) {
        self.0.register_index(positions);
    }

    fn for_each(&self, visit: impl FnMut(&[Value], Number)) {
        self.0.for_each(visit);
    }

    fn for_each_slice(
        &self,
        positions: &[usize],
        values: &[Value],
        visit: impl FnMut(&[Value], Number),
    ) {
        self.0.for_each_slice(positions, values, visit);
    }

    fn footprint(&self) -> StorageFootprint {
        self.0.footprint()
    }

    fn to_table(&self) -> std::collections::BTreeMap<Vec<Value>, Number> {
        self.0.to_table()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::HashViewStorage;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    #[test]
    fn an_armed_plan_fires_once_at_the_nth_operation_and_disarms() {
        let result = with_fault(FaultPlan::new(FaultOp::Add, 2), || {
            let mut m = FaultStorage::<HashViewStorage>::new(1);
            m.add(key(&[1]), Number::Int(1)); // op 0
            m.add(key(&[2]), Number::Int(1)); // op 1
            let panicked =
                catch_unwind(AssertUnwindSafe(|| m.add(key(&[3]), Number::Int(1)))).is_err();
            assert!(panicked, "op 2 fires the plan");
            // The plan auto-disarmed: further ops sail through.
            m.add(key(&[4]), Number::Int(1));
            m.to_table().len()
        });
        // Ops 0 and 1 landed, op 2 died mid-call (before the write), op 3 landed.
        assert_eq!(result, 3);
    }

    #[test]
    fn restore_and_set_never_trip() {
        with_fault(FaultPlan::new(FaultOp::Add, 0), || {
            let mut m = FaultStorage::<HashViewStorage>::new(1);
            m.set(key(&[1]), Number::Int(5));
            m.restore(&key(&[1]), Number::Int(7));
            assert_eq!(m.get(&key(&[1])), Number::Int(7));
            // The armed Add plan is still live and fires on the first real add.
            let panicked =
                catch_unwind(AssertUnwindSafe(|| m.add(key(&[2]), Number::Int(1)))).is_err();
            assert!(panicked);
        });
    }

    #[test]
    fn without_a_plan_the_wrapper_is_a_passthrough() {
        // Hold the section lock so a concurrently running armed test cannot
        // interleave with this one.
        let _section = super::lock(&FAULT_SECTION);
        let mut m = FaultStorage::<HashViewStorage>::new(2);
        m.register_index(vec![1]);
        m.add(key(&[1, 2]), Number::Int(3));
        m.add_ref(&key(&[1, 2]), Number::Int(4));
        assert_eq!(m.get(&key(&[1, 2])), Number::Int(7));
        assert_eq!(m.len(), 1);
        assert_eq!(m.key_arity(), 2);
        assert_eq!(m.footprint().entries, 1);
        let refs = [(key(&[2, 2]), Number::Int(9))];
        let borrowed: Vec<(&[Value], Number)> =
            refs.iter().map(|(k, d)| (k.as_slice(), *d)).collect();
        m.apply_sorted(&borrowed);
        m.apply_sorted_sharded(&borrowed, 4);
        assert_eq!(m.get(&key(&[2, 2])), Number::Int(18));
        let mut seen = 0;
        m.for_each_slice(&[1], &key(&[2]), |_, _| seen += 1);
        assert_eq!(seen, 2);
    }
}
