//! Pluggable view storage: the [`ViewStorage`] trait and its backends.
//!
//! The paper's constant-ops-per-update guarantee (Theorem 7.1) asks very little of the
//! structure holding a materialized view: point probes by fully bound key, accumulation
//! of ring deltas with zero-pruning, and enumeration of the entries matching a
//! *partially* bound key in time proportional to the number of matches. Anything
//! offering those operations can sit under the executor — which is exactly what
//! [`ViewStorage`] captures, so that backends with different physical trade-offs can be
//! swapped in and compared without touching the execution layer:
//!
//! * [`HashViewStorage`] — a hash map with hash-based slice indexes for the registered
//!   key-position patterns. O(1) probes and writes; the default, and the backend the
//!   zero-allocation steady state of the lowered executor was tuned on.
//! * [`OrderedViewStorage`] — a `BTreeMap` keyed on the full tuple. O(log n) probes and
//!   writes, but partial-key enumeration over *prefix* patterns needs no secondary
//!   structure at all (a sorted range scan), and non-prefix patterns are served by
//!   ordered permuted-key indexes whose range scans keep matching entries physically
//!   adjacent — the index shape that sort-merge-style batched maintenance and
//!   leapfrog-triejoin-style multiway joins build on.
//!
//! Both executors ([`Executor`](crate::executor::Executor) and
//! [`InterpretedExecutor`](crate::interp::InterpretedExecutor)) are generic over the
//! backend with `HashViewStorage` as the default, so existing code is unaffected;
//! [`StorageBackend`] names the backends for runtime selection (strategy registry,
//! experiment CLIs), and [`StorageFootprint`] is the common memory proxy the
//! `exp_storage` experiment compares.

use std::collections::BTreeMap;
use std::fmt;

use dbring_algebra::{Number, Ring, Semiring};
use dbring_relations::Value;

mod hash;
mod ordered;

pub use hash::HashViewStorage;
pub use ordered::OrderedViewStorage;

/// The default backend's former name, kept so type names in downstream signatures keep
/// resolving. (Operations moved from inherent methods to the [`ViewStorage`] trait, so
/// calling them requires the trait in scope; the allocating `slice` helper is gone —
/// use [`ViewStorage::for_each_slice`].)
pub type MapStorage = HashViewStorage;

/// Minimum consolidated deltas per key-range shard for
/// [`ViewStorage::apply_sorted_sharded`] to actually split a run: below
/// `shards * MIN_DELTAS_PER_SHARD` deltas the in-tree backends fall back to the
/// sequential [`ViewStorage::apply_sorted`] pass, because thread spawn plus the
/// repartition/merge of the primary structure dwarfs such a batch.
pub const MIN_DELTAS_PER_SHARD: usize = 64;

/// The storage contract a materialized view must satisfy for the executors to run
/// trigger programs over it.
///
/// All keys of one map share a fixed arity; values live in the [`Number`] ring and
/// entries whose value reaches zero are pruned (a map never stores explicit zeros, so
/// `len` is the number of non-zero groups). Enumeration callbacks receive the full key
/// in *original position order* regardless of how the backend physically arranges it.
///
/// The trait is deliberately generic (not object-safe): the executors monomorphize over
/// the backend, so going through the trait costs nothing on the hot path.
pub trait ViewStorage: Clone + fmt::Debug {
    /// The [`StorageBackend`] value naming this backend, so code that is generic over
    /// the backend type can reach the value-level registries (boxed engines, strategy
    /// names, experiment CLIs) without a parallel name parameter. Purely a *name*:
    /// typed construction (`Executor::<S>::with_backend`, the `IncrementalView`
    /// facade) always builds `S` itself and never routes through this value, so a
    /// backend outside the enum should name whichever in-tree backend it most
    /// resembles.
    const BACKEND: StorageBackend;

    /// Creates an empty map whose keys have the given arity.
    fn new(key_arity: usize) -> Self;

    /// The key arity.
    fn key_arity(&self) -> usize;

    /// Number of entries with a non-zero value.
    fn len(&self) -> usize;

    /// Whether the map has no non-zero entries.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value stored under `key` (zero if absent).
    fn get(&self, key: &[Value]) -> Number;

    /// Adds `delta` to the value under `key`, maintaining indexes and pruning zeros.
    /// The key is consumed (backends may reuse the allocation on first insertion).
    ///
    /// # Panics
    /// Panics if the key arity does not match.
    fn add(&mut self, key: Vec<Value>, delta: Number);

    /// Adds `delta` to the value under `key`, cloning the key *only* when the entry
    /// does not already exist — the executor's steady-state write path.
    ///
    /// # Panics
    /// Panics if the key arity does not match.
    fn add_ref(&mut self, key: &[Value], delta: Number);

    /// Accumulates a consolidated batch of ring deltas whose keys are **strictly
    /// ascending** (sorted, no duplicates) — the batch-execution write path, fed by
    /// [`DeltaBatch`](dbring_relations::DeltaBatch)-driven triggers that buffer,
    /// sort and consolidate their writes per map. The keys are borrowed (they point
    /// into the executor's reusable write buffers), so a backend clones only what it
    /// actually inserts.
    ///
    /// The default is a per-key [`add_ref`](ViewStorage::add_ref) loop (the right thing
    /// for hash backends, where sortedness buys nothing); ordered backends override it
    /// with a single sequential merge pass so a large batch costs O(n + k) instead of
    /// O(k log n). Zero deltas are ignored either way, and index maintenance and
    /// zero-pruning behave exactly as `add_ref`.
    fn apply_sorted(&mut self, deltas: &[(&[Value], Number)]) {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].0 < w[1].0),
            "apply_sorted requires strictly ascending keys"
        );
        for (key, delta) in deltas {
            self.add_ref(key, *delta);
        }
    }

    /// Applies a sorted, consolidated run exactly like
    /// [`apply_sorted`](ViewStorage::apply_sorted) while reporting each delta key's
    /// **pre-image** — the value held before the run landed (zero ⇔ absent) — to
    /// `log`. This is staged ingest's capture-and-land step: the executor feeds the
    /// pre-images straight into its undo log, and on rollback restores them via
    /// [`restore`](ViewStorage::restore).
    ///
    /// Every delta key is reported exactly once, **including** zero-delta keys (a
    /// spurious log entry restores a value to itself — harmless — while a missing one
    /// would leak a write). Keys in a run are unique, so the report order is
    /// backend-defined.
    ///
    /// The default probes each key with [`get`](ViewStorage::get) and then delegates
    /// to `apply_sorted` — always correct, but it pays a second lookup per key.
    /// Both in-tree backends override it to capture the pre-image inside the landing
    /// pass itself, which is what keeps staged ingest within a few percent of the
    /// direct path.
    fn apply_sorted_logged(
        &mut self,
        deltas: &[(&[Value], Number)],
        mut log: impl FnMut(&[Value], Number),
    ) {
        for (key, _) in deltas {
            log(key, self.get(key));
        }
        self.apply_sorted(deltas);
    }

    /// Like [`apply_sorted`](ViewStorage::apply_sorted), but allowed to split the run
    /// into up to `shards` contiguous key ranges and land them concurrently. The
    /// result must be indistinguishable from `apply_sorted` — same entries, same
    /// zero-pruning, same index maintenance — only the landing order within the run
    /// may differ (which matters solely for float rounding; see the executor's batch
    /// docs).
    ///
    /// The default ignores the hint and delegates to `apply_sorted`, which is always
    /// correct. Backends with an internal parallel path override it, and are expected
    /// to fall back to the sequential pass when `shards <= 1` or when the run is too
    /// small (relative to [`MIN_DELTAS_PER_SHARD`] and the map) for splitting to pay.
    ///
    /// [`MIN_DELTAS_PER_SHARD`]: crate::storage::MIN_DELTAS_PER_SHARD
    fn apply_sorted_sharded(&mut self, deltas: &[(&[Value], Number)], shards: usize) {
        let _ = shards;
        self.apply_sorted(deltas);
    }

    /// Overwrites the value under `key` (used by initialization).
    fn set(&mut self, key: Vec<Value>, value: Number) {
        let delta = value.add(&self.get(&key).neg());
        self.add(key, delta);
    }

    /// Restores the value under `key` to an exact previously-observed `value`
    /// (zero ⇔ absent), **byte-identically** — the rollback primitive behind
    /// staged batch execution. Unlike [`set`](ViewStorage::set), which lands an
    /// arithmetic delta and therefore cannot reproduce a float bit pattern
    /// exactly (`0.1 + (0.4 - 0.3 - 0.1)` need not be `0.1`), `restore` first
    /// cancels the current entry with its own negation (`x + (-x)` is exactly
    /// zero in the [`Number`] ring, so the entry is pruned with full index
    /// maintenance) and then, if `value` is non-zero, inserts it verbatim via the
    /// absent-key path of [`add_ref`](ViewStorage::add_ref). The default works on
    /// any backend; backends with a cheaper direct overwrite may override it, as
    /// long as the result is bit-exact.
    fn restore(&mut self, key: &[Value], value: Number) {
        let current = self.get(key);
        if !current.is_zero() {
            self.add_ref(key, current.neg());
        }
        if !value.is_zero() {
            self.add_ref(key, value);
        }
    }

    /// Registers a slice index over the given key positions (deduplicated; degenerate
    /// patterns covering no or all positions are ignored). Entries already present are
    /// backfilled, so registration order and insertion order may be interleaved freely.
    fn register_index(&mut self, positions: Vec<usize>);

    /// Visits every `(key, value)` entry, in backend-defined order.
    fn for_each(&self, visit: impl FnMut(&[Value], Number));

    /// Visits every entry whose key matches `values` at the given positions, without
    /// materializing the matches. Positions must be sorted and distinct.
    ///
    /// With a registered index for the pattern (or, for ordered backends, a pattern the
    /// physical layout already serves) the cost is proportional to the number of
    /// matches — times at most a per-match probe of the primary structure (O(1) hash /
    /// O(log n) ordered), never to the size of the map; otherwise the backend falls
    /// back to a full scan. An empty pattern visits every entry.
    fn for_each_slice(
        &self,
        positions: &[usize],
        values: &[Value],
        visit: impl FnMut(&[Value], Number),
    );

    /// The index-free fallback for [`for_each_slice`]: visits matching entries by
    /// scanning every entry and filtering on the bound positions. Backends call this
    /// when no physical structure serves the pattern, so the match semantics live in
    /// exactly one place.
    ///
    /// [`for_each_slice`]: ViewStorage::for_each_slice
    fn for_each_slice_scan(
        &self,
        positions: &[usize],
        values: &[Value],
        mut visit: impl FnMut(&[Value], Number),
    ) {
        self.for_each(|k, v| {
            if positions
                .iter()
                .zip(values.iter())
                .all(|(&i, v)| &k[i] == v)
            {
                visit(k, v);
            }
        });
    }

    /// The memory proxy for this map: entry and index-entry counts.
    fn footprint(&self) -> StorageFootprint;

    /// The entries as a sorted table (a convenience for result reporting and tests).
    fn to_table(&self) -> BTreeMap<Vec<Value>, Number> {
        let mut out = BTreeMap::new();
        self.for_each(|k, v| {
            out.insert(k.to_vec(), v);
        });
        out
    }
}

/// The storage backends a view can run on, for runtime selection (strategy names,
/// experiment CLIs). Compile-time selection just names the backend type directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum StorageBackend {
    /// [`HashViewStorage`]: hash map + hash slice indexes (the default).
    Hash,
    /// [`OrderedViewStorage`]: `BTreeMap` + sorted range scans / permuted-key indexes.
    Ordered,
}

impl StorageBackend {
    /// Every backend, in registry order.
    pub const ALL: [StorageBackend; 2] = [StorageBackend::Hash, StorageBackend::Ordered];

    /// The backend's short name ("hash", "ordered") as used in strategy names
    /// (`recursive-ivm@ordered`) and experiment output.
    pub fn name(self) -> &'static str {
        match self {
            StorageBackend::Hash => "hash",
            StorageBackend::Ordered => "ordered",
        }
    }

    /// Parses a backend name as produced by [`StorageBackend::name`].
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "hash" => Some(StorageBackend::Hash),
            "ordered" => Some(StorageBackend::Ordered),
            _ => None,
        }
    }
}

impl fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for StorageBackend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        StorageBackend::parse(s).ok_or_else(|| format!("unknown storage backend {s:?}"))
    }
}

/// A backend-independent memory proxy: how many entries a map (or a whole view
/// hierarchy) holds, and how much secondary-index structure sits next to them. Wall
/// clock varies per machine; these counts are exact and comparable across backends.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageFootprint {
    /// Non-zero entries in the primary structure.
    pub entries: usize,
    /// Secondary index structures maintained (one per registered non-degenerate
    /// pattern the backend cannot serve from its physical layout).
    pub indexes: usize,
    /// Total entries across all secondary index structures.
    pub index_entries: usize,
}

impl StorageFootprint {
    /// Component-wise sum (for aggregating over a view hierarchy).
    pub fn merge(self, other: StorageFootprint) -> StorageFootprint {
        StorageFootprint {
            entries: self.entries + other.entries,
            indexes: self.indexes + other.indexes,
            index_entries: self.index_entries + other.index_entries,
        }
    }
}

/// Test helper: materializes a slice enumeration as an owned vector, so backend tests
/// can assert on match sets without closure plumbing.
#[cfg(test)]
pub(crate) fn slice_entries<S: ViewStorage>(
    storage: &S,
    positions: &[usize],
    values: &[Value],
) -> Vec<(Vec<Value>, Number)> {
    let mut out = Vec::new();
    storage.for_each_slice(positions, values, |k, v| out.push((k.to_vec(), v)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    #[test]
    fn backend_names_round_trip() {
        for backend in StorageBackend::ALL {
            assert_eq!(StorageBackend::parse(backend.name()), Some(backend));
            assert_eq!(backend.to_string(), backend.name());
            assert_eq!(backend.name().parse::<StorageBackend>(), Ok(backend));
        }
        assert_eq!(StorageBackend::parse("mmap"), None);
        assert!("mmap".parse::<StorageBackend>().is_err());
    }

    #[test]
    fn footprints_merge_componentwise() {
        let a = StorageFootprint {
            entries: 3,
            indexes: 1,
            index_entries: 3,
        };
        let b = StorageFootprint {
            entries: 2,
            indexes: 0,
            index_entries: 0,
        };
        let m = a.merge(b);
        assert_eq!(m.entries, 5);
        assert_eq!(m.indexes, 1);
        assert_eq!(m.index_entries, 3);
        assert_eq!(StorageFootprint::default().entries, 0);
    }

    /// `apply_sorted` must be indistinguishable from the equivalent `add_ref` loop on
    /// every backend — same tables, same pruning, same index maintenance — for batches
    /// small (point path) and large (the ordered backend's merge path) relative to the
    /// map, including zero deltas, zero-sum pruning and brand-new keys.
    #[test]
    fn apply_sorted_matches_the_add_ref_loop_on_both_backends() {
        fn check<S: ViewStorage>() {
            for batch_scale in [1usize, 12] {
                let mut batched = S::new(2);
                let mut looped = S::new(2);
                for m in [&mut batched, &mut looped] {
                    m.register_index(vec![1]);
                    for i in 0..64i64 {
                        m.add(key(&[i, i % 4]), Number::Int(i + 1));
                    }
                }
                // scale 1 keeps the batch below the merge threshold (point path on the
                // ordered backend); scale 12 crosses it (merge path).
                let mut deltas: Vec<(Vec<Value>, Number)> = Vec::new();
                for i in 0..(batch_scale as i64) {
                    // Mix: existing keys (some summed to zero), new keys, zero deltas.
                    deltas.push((key(&[3 * i, 3 * i % 4]), Number::Int(-(3 * i + 1))));
                    deltas.push((key(&[3 * i + 1, (3 * i + 1) % 4]), Number::Int(5)));
                    deltas.push((key(&[100 + i, 0]), Number::Int(7)));
                    deltas.push((key(&[200 + i, 1]), Number::Int(0)));
                }
                deltas.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                deltas.dedup_by(|a, b| a.0 == b.0);
                let refs: Vec<(&[Value], Number)> =
                    deltas.iter().map(|(k, d)| (k.as_slice(), *d)).collect();
                batched.apply_sorted(&refs);
                for (k, d) in &deltas {
                    looped.add_ref(k, *d);
                }
                assert_eq!(batched.to_table(), looped.to_table());
                assert_eq!(batched.len(), looped.len());
                assert_eq!(batched.footprint(), looped.footprint());
                // Index maintenance survived the batch: slices still see every entry.
                for n in 0..4 {
                    let mut via_batch = slice_entries(&batched, &[1], &key(&[n]));
                    let mut via_loop = slice_entries(&looped, &[1], &key(&[n]));
                    via_batch.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    via_loop.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    assert_eq!(via_batch, via_loop);
                }
            }
        }
        check::<HashViewStorage>();
        check::<OrderedViewStorage>();
    }

    /// `apply_sorted_sharded` must be indistinguishable from `apply_sorted` on every
    /// backend and shard count — same tables, same pruning, same index maintenance —
    /// whether the run engages the sharded path (large runs, `shards > 1`) or falls
    /// back to the sequential pass (small runs, `shards = 1`, or a run that is tiny
    /// relative to the map).
    #[test]
    fn apply_sorted_sharded_matches_apply_sorted_on_both_backends() {
        fn check<S: ViewStorage>() {
            for (seed_n, delta_n, shards) in [
                (64i64, 16i64, 4usize), // below threshold: sequential fallback
                (64, 600, 1),           // shards = 1: sequential fallback
                (64, 600, 4),           // sharded, run much larger than the map
                (500, 2000, 8),         // sharded, larger map and more shards
                (4000, 300, 4),         // run tiny relative to the map: fallback
            ] {
                let mut sharded = S::new(2);
                let mut sequential = S::new(2);
                for m in [&mut sharded, &mut sequential] {
                    m.register_index(vec![1]);
                    for i in 0..seed_n {
                        m.add(key(&[i, i % 4]), Number::Int(i + 1));
                    }
                }
                // Mix: zero-sum prunes of seeded entries, accumulations, brand-new
                // keys, and zero deltas — spread over the whole key range so every
                // shard sees all kinds.
                let mut deltas: Vec<(Vec<Value>, Number)> = Vec::new();
                for i in 0..delta_n {
                    let j = i % seed_n;
                    deltas.push(match i % 4 {
                        0 => (key(&[j, j % 4]), Number::Int(-(j + 1))),
                        1 => (key(&[j, j % 4]), Number::Int(7)),
                        2 => (key(&[seed_n + i, i % 4]), Number::Int(5)),
                        _ => (key(&[seed_n + delta_n + i, 0]), Number::Int(0)),
                    });
                }
                deltas.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                deltas.dedup_by(|a, b| a.0 == b.0);
                let refs: Vec<(&[Value], Number)> =
                    deltas.iter().map(|(k, d)| (k.as_slice(), *d)).collect();
                sharded.apply_sorted_sharded(&refs, shards);
                sequential.apply_sorted(&refs);
                let label = format!("seed={seed_n} deltas={delta_n} shards={shards}");
                assert_eq!(sharded.to_table(), sequential.to_table(), "{label}");
                assert_eq!(sharded.len(), sequential.len(), "{label}");
                assert_eq!(sharded.footprint(), sequential.footprint(), "{label}");
                for n in 0..4 {
                    let mut via_sharded = slice_entries(&sharded, &[1], &key(&[n]));
                    let mut via_sequential = slice_entries(&sequential, &[1], &key(&[n]));
                    via_sharded.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    via_sequential.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    assert_eq!(via_sharded, via_sequential, "{label} slice {n}");
                }
            }
        }
        check::<HashViewStorage>();
        check::<OrderedViewStorage>();
    }

    /// `apply_sorted_logged` must land exactly what `apply_sorted` lands *and* report
    /// exactly the pre-images a probe loop before the batch would have seen — one log
    /// call per delta key, zero for absent keys, on every backend and on both sides
    /// of the ordered backend's point/merge threshold. This is the invariant the
    /// staged-ingest undo log is built on.
    #[test]
    fn apply_sorted_logged_matches_a_probe_loop_plus_apply_sorted() {
        fn check<S: ViewStorage>() {
            for batch_scale in [1usize, 12] {
                let mut logged = S::new(2);
                let mut probed = S::new(2);
                for m in [&mut logged, &mut probed] {
                    m.register_index(vec![1]);
                    for i in 0..64i64 {
                        m.add(key(&[i, i % 4]), Number::Int(i + 1));
                    }
                }
                // Same mix as the apply_sorted parity test: zero-sum prunes,
                // accumulations, brand-new keys and zero deltas, at a scale below
                // (1) and above (12) the ordered backend's merge threshold.
                let mut deltas: Vec<(Vec<Value>, Number)> = Vec::new();
                for i in 0..(batch_scale as i64) {
                    deltas.push((key(&[3 * i, 3 * i % 4]), Number::Int(-(3 * i + 1))));
                    deltas.push((key(&[3 * i + 1, (3 * i + 1) % 4]), Number::Int(5)));
                    deltas.push((key(&[100 + i, 0]), Number::Int(7)));
                    deltas.push((key(&[200 + i, 1]), Number::Int(0)));
                }
                deltas.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                deltas.dedup_by(|a, b| a.0 == b.0);
                let refs: Vec<(&[Value], Number)> =
                    deltas.iter().map(|(k, d)| (k.as_slice(), *d)).collect();
                let mut expected: Vec<(Vec<Value>, Number)> = refs
                    .iter()
                    .map(|(k, _)| (k.to_vec(), probed.get(k)))
                    .collect();
                probed.apply_sorted(&refs);
                let mut captured: Vec<(Vec<Value>, Number)> = Vec::new();
                logged.apply_sorted_logged(&refs, |k, pre| captured.push((k.to_vec(), pre)));
                // Log order is backend-defined; contents are not.
                captured.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                expected.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                let label = format!("{:?} scale={batch_scale}", S::BACKEND);
                assert_eq!(captured, expected, "pre-image log diverged ({label})");
                assert_eq!(logged.to_table(), probed.to_table(), "{label}");
                assert_eq!(logged.len(), probed.len(), "{label}");
                assert_eq!(logged.footprint(), probed.footprint(), "{label}");
                for n in 0..4 {
                    let mut via_logged = slice_entries(&logged, &[1], &key(&[n]));
                    let mut via_probed = slice_entries(&probed, &[1], &key(&[n]));
                    via_logged.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    via_probed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                    assert_eq!(via_logged, via_probed, "{label} slice {n}");
                }
            }
        }
        check::<HashViewStorage>();
        check::<OrderedViewStorage>();
    }

    /// Regression (shared across backends): registering an index *after* entries exist —
    /// including permuted-key (non-prefix) patterns, and after zero-sum removals — must
    /// serve exactly the matches a scan over the live entries finds. The hash backend
    /// had this bug (fixed in an earlier change); this pins both backends to the same
    /// contract so the ordered backend cannot regress to it either.
    #[test]
    fn late_index_registration_backfill_parity_across_backends() {
        fn scan_matches<S: ViewStorage>(
            m: &S,
            positions: &[usize],
            values: &[Value],
        ) -> Vec<(Vec<Value>, Number)> {
            let mut out = Vec::new();
            m.for_each_slice_scan(positions, values, |k, v| out.push((k.to_vec(), v)));
            out.sort_unstable_by(|a, b| a.0.cmp(&b.0));
            out
        }
        fn check<S: ViewStorage>() {
            let mut m = S::new(3);
            for (a, b, c, v) in [
                (1, 10, 7, 2),
                (1, 11, 7, 3),
                (2, 10, 8, 4),
                (2, 12, 7, 5),
                (3, 10, 7, 6),
            ] {
                m.add(key(&[a, b, c]), Number::Int(v));
            }
            // Zero-sum removals *before* registration: the index must not resurrect them.
            m.add(key(&[1, 11, 7]), Number::Int(-3));
            m.add(key(&[2, 10, 8]), Number::Int(-4));
            // Late registration of permuted (non-prefix) patterns over existing entries.
            m.register_index(vec![2]);
            m.register_index(vec![1, 2]);
            for (positions, values) in [
                (vec![2], key(&[7])),
                (vec![2], key(&[8])),
                (vec![1, 2], key(&[10, 7])),
                (vec![1, 2], key(&[11, 7])),
            ] {
                let mut indexed = slice_entries(&m, &positions, &values);
                indexed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                assert_eq!(
                    indexed,
                    scan_matches(&m, &positions, &values),
                    "backfilled index diverged from a scan on pattern {positions:?}"
                );
            }
            // Registered indexes keep tracking writes and zero-sum removals afterwards.
            m.add(key(&[4, 13, 7]), Number::Int(9));
            m.add(key(&[1, 10, 7]), Number::Int(-2));
            for (positions, values) in [(vec![2], key(&[7])), (vec![1, 2], key(&[13, 7]))] {
                let mut indexed = slice_entries(&m, &positions, &values);
                indexed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
                assert_eq!(indexed, scan_matches(&m, &positions, &values));
            }
        }
        check::<HashViewStorage>();
        check::<OrderedViewStorage>();
    }

    /// `restore` must reproduce a previously-observed entry state bit-exactly on
    /// both backends: floats come back with their original bit pattern (where a
    /// `set` of the arithmetic difference would not), zero restores prune, and
    /// index maintenance tracks every transition.
    #[test]
    fn restore_is_bit_exact_on_both_backends() {
        fn check<S: ViewStorage>() {
            let mut m = S::new(1);
            m.register_index(vec![0]);
            // 0.1 + 0.2 is famously not 0.3; capture the pre-image and restore it.
            m.add(key(&[1]), Number::Float(0.1));
            let before = m.get(&key(&[1]));
            m.add(key(&[1]), Number::Float(0.2));
            m.restore(&key(&[1]), before);
            assert_eq!(m.get(&key(&[1])).as_f64().to_bits(), 0.1f64.to_bits());
            // Restoring zero prunes the entry (and its index postings).
            m.restore(&key(&[1]), Number::Int(0));
            assert_eq!(m.len(), 0);
            assert!(slice_entries(&m, &[0], &key(&[1])).is_empty());
            // Restoring a non-zero value onto an absent key inserts it verbatim.
            m.restore(&key(&[2]), Number::Float(0.3));
            assert_eq!(m.get(&key(&[2])).as_f64().to_bits(), 0.3f64.to_bits());
            assert_eq!(slice_entries(&m, &[0], &key(&[2])).len(), 1);
        }
        check::<HashViewStorage>();
        check::<OrderedViewStorage>();
    }

    /// The trait's provided `set` and `to_table` behave identically on both backends.
    #[test]
    fn provided_methods_work_on_both_backends() {
        fn check<S: ViewStorage>() {
            let mut m = S::new(2);
            m.set(key(&[1, 2]), Number::Int(5));
            m.set(key(&[1, 3]), Number::Int(7));
            m.set(key(&[1, 2]), Number::Int(2));
            assert_eq!(m.get(&key(&[1, 2])), Number::Int(2));
            m.set(key(&[1, 3]), Number::Int(0));
            assert_eq!(m.len(), 1);
            assert!(!m.is_empty());
            let table = m.to_table();
            assert_eq!(table.len(), 1);
            assert_eq!(table[&key(&[1, 2])], Number::Int(2));
        }
        check::<HashViewStorage>();
        check::<OrderedViewStorage>();
    }
}
