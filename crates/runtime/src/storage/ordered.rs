//! The ordered backend: a `BTreeMap` keyed on the full tuple, with sorted-prefix range
//! scans standing in for slice indexes.
//!
//! Keys sort lexicographically, so every enumeration over a *prefix* pattern (key
//! positions `0..k`) is a contiguous range scan of the primary structure — no secondary
//! index, no index maintenance on writes, and it works even for patterns nobody
//! registered. A registered *non-prefix* pattern is served by a permuted-key index: an
//! ordered set holding each key re-ordered so the pattern's positions come first, which
//! turns the pattern into a prefix of the permuted space and makes the same range-scan
//! trick apply (the full key is reconstructed through the inverse permutation before it
//! reaches the visitor, so callers never see the permuted layout). Unregistered
//! non-prefix patterns fall back to a full scan, exactly like the hash backend.
//!
//! Probes and writes are O(log n) against the hash backend's O(1) — the price paid for
//! matching entries being physically adjacent, which is what sort-merge-style batched
//! maintenance and leapfrog-triejoin-style multiway joins (Veldhuizen) want underneath
//! them, and what makes an mmap/columnar spill-to-disk variant practical later.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound;

use dbring_algebra::{Number, Semiring};
use dbring_relations::Value;

use super::{StorageFootprint, ViewStorage};

/// A secondary ordered index for one registered non-prefix pattern: the keys of the map,
/// permuted so the pattern's positions come first.
#[derive(Clone, Debug)]
struct PermutedIndex {
    /// `perm[j]` is the original key position stored at permuted slot `j`: the pattern's
    /// positions in ascending order, then the remaining positions in ascending order.
    perm: Vec<usize>,
    /// The permuted keys, ordered — entries matching a pattern binding form a contiguous
    /// range under the binding as a prefix.
    keys: BTreeSet<Vec<Value>>,
}

impl PermutedIndex {
    fn permute(&self, key: &[Value]) -> Vec<Value> {
        self.perm.iter().map(|&i| key[i].clone()).collect()
    }

    fn insert(&mut self, key: &[Value]) {
        self.keys.insert(self.permute(key));
    }

    fn remove(&mut self, key: &[Value]) {
        self.keys.remove(&self.permute(key));
    }
}

/// One materialized map over ordered storage: a `BTreeMap` from full key tuples to
/// aggregate values, plus permuted-key indexes for the registered non-prefix patterns.
#[derive(Clone, Debug, Default)]
pub struct OrderedViewStorage {
    key_arity: usize,
    data: BTreeMap<Vec<Value>, Number>,
    /// Permuted indexes, one per registered non-prefix pattern (prefix patterns need
    /// none: the primary structure already serves them).
    indexes: BTreeMap<Vec<usize>, PermutedIndex>,
}

/// Whether sorted positions form the contiguous prefix `0..positions.len()`.
fn is_prefix(positions: &[usize]) -> bool {
    positions.iter().enumerate().all(|(i, &p)| i == p)
}

impl OrderedViewStorage {
    /// Iterates over all `(key, value)` entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Number)> {
        self.data.iter()
    }

    /// The patterns served by a permuted index (prefix patterns never appear here — the
    /// primary order serves them directly).
    pub fn index_patterns(&self) -> impl Iterator<Item = &Vec<usize>> {
        self.indexes.keys()
    }

    /// Accumulates `delta` into an existing entry, pruning it (and its index entries)
    /// when the sum reaches zero; returns `false` untouched if the entry is absent.
    fn accumulate_existing(&mut self, key: &[Value], delta: Number) -> bool {
        let Some(value) = self.data.get_mut(key) else {
            return false;
        };
        let sum = value.add(&delta);
        if sum.is_zero() {
            self.data.remove(key);
            for index in self.indexes.values_mut() {
                index.remove(key);
            }
        } else {
            *value = sum;
        }
        true
    }
}

impl ViewStorage for OrderedViewStorage {
    const BACKEND: super::StorageBackend = super::StorageBackend::Ordered;

    fn new(key_arity: usize) -> Self {
        OrderedViewStorage {
            key_arity,
            data: BTreeMap::new(),
            indexes: BTreeMap::new(),
        }
    }

    fn key_arity(&self) -> usize {
        self.key_arity
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn get(&self, key: &[Value]) -> Number {
        self.data.get(key).copied().unwrap_or(Number::Int(0))
    }

    fn add(&mut self, key: Vec<Value>, delta: Number) {
        assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        if delta.is_zero() {
            return;
        }
        if self.accumulate_existing(&key, delta) {
            return;
        }
        for index in self.indexes.values_mut() {
            index.insert(&key);
        }
        self.data.insert(key, delta);
    }

    fn add_ref(&mut self, key: &[Value], delta: Number) {
        assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        if delta.is_zero() {
            return;
        }
        if self.accumulate_existing(key, delta) {
            return;
        }
        for index in self.indexes.values_mut() {
            index.insert(key);
        }
        self.data.insert(key.to_vec(), delta);
    }

    /// Accumulates a strictly-ascending delta batch with one **sequential merge pass**:
    /// the sorted primary structure and the sorted batch are zipped into a fresh map,
    /// summing where keys collide, pruning zero sums (with index removal) and inserting
    /// new keys (with index insertion) as the merge encounters them. Cost O(n + k) plus
    /// the bulk rebuild — the batch counterpart of the range scans the primary sort
    /// order already gives enumeration.
    ///
    /// Small batches (k ≪ n) fall back to the per-key `add_ref` loop: rebuilding an
    /// n-entry tree to land a handful of deltas would waste the merge.
    fn apply_sorted(&mut self, deltas: &[(&[Value], Number)]) {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].0 < w[1].0),
            "apply_sorted requires strictly ascending keys"
        );
        // Merge only when the batch is within ~a factor of the map size; otherwise the
        // O(k log n) point path beats the O(n + k) rebuild.
        if deltas.len() * 8 < self.data.len() {
            for (key, delta) in deltas {
                self.add_ref(key, *delta);
            }
            return;
        }
        let key_arity = self.key_arity;
        let old = std::mem::take(&mut self.data);
        let mut merged: Vec<(Vec<Value>, Number)> = Vec::with_capacity(old.len() + deltas.len());
        let mut di = 0usize;
        let insert_new = |indexes: &mut BTreeMap<Vec<usize>, PermutedIndex>,
                          merged: &mut Vec<(Vec<Value>, Number)>,
                          key: &[Value],
                          delta: Number| {
            assert_eq!(key.len(), key_arity, "key arity mismatch");
            if delta.is_zero() {
                return;
            }
            for index in indexes.values_mut() {
                index.insert(key);
            }
            merged.push((key.to_vec(), delta));
        };
        for (key, value) in old {
            while di < deltas.len() && deltas[di].0 < key.as_slice() {
                insert_new(&mut self.indexes, &mut merged, deltas[di].0, deltas[di].1);
                di += 1;
            }
            if di < deltas.len() && deltas[di].0 == key.as_slice() {
                let sum = value.add(&deltas[di].1);
                di += 1;
                if sum.is_zero() {
                    for index in self.indexes.values_mut() {
                        index.remove(&key);
                    }
                } else {
                    merged.push((key, sum));
                }
            } else {
                merged.push((key, value));
            }
        }
        for (key, delta) in &deltas[di..] {
            insert_new(&mut self.indexes, &mut merged, key, *delta);
        }
        // `merged` is ascending by construction, so the bulk build is a linear pass.
        self.data = merged.into_iter().collect();
    }

    /// The staged-ingest landing pass: pre-images are captured inside the same
    /// merge (or, for small runs, the same tree descent) that lands the write, so
    /// staging pays no second lookup per key. Write semantics are exactly
    /// [`apply_sorted`](ViewStorage::apply_sorted)'s, including the small-batch
    /// point-path fallback and its threshold.
    fn apply_sorted_logged(
        &mut self,
        deltas: &[(&[Value], Number)],
        mut log: impl FnMut(&[Value], Number),
    ) {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].0 < w[1].0),
            "apply_sorted_logged requires strictly ascending keys"
        );
        if deltas.len() * 8 < self.data.len() {
            // Point path: one descent per key serves both capture and write.
            for (key, delta) in deltas {
                assert_eq!(key.len(), self.key_arity, "key arity mismatch");
                match self.data.get_mut(*key) {
                    Some(value) => {
                        log(key, *value);
                        if delta.is_zero() {
                            continue;
                        }
                        let sum = value.add(delta);
                        if sum.is_zero() {
                            self.data.remove(*key);
                            for index in self.indexes.values_mut() {
                                index.remove(key);
                            }
                        } else {
                            *value = sum;
                        }
                    }
                    None => {
                        log(key, Number::Int(0));
                        if delta.is_zero() {
                            continue;
                        }
                        for index in self.indexes.values_mut() {
                            index.insert(key);
                        }
                        self.data.insert(key.to_vec(), *delta);
                    }
                }
            }
            return;
        }
        // Merge path: the zip already visits every delta key — collisions log the
        // old value, fresh keys log zero.
        let key_arity = self.key_arity;
        let old = std::mem::take(&mut self.data);
        let mut merged: Vec<(Vec<Value>, Number)> = Vec::with_capacity(old.len() + deltas.len());
        let mut di = 0usize;
        let insert_new = |indexes: &mut BTreeMap<Vec<usize>, PermutedIndex>,
                          merged: &mut Vec<(Vec<Value>, Number)>,
                          key: &[Value],
                          delta: Number,
                          log: &mut dyn FnMut(&[Value], Number)| {
            assert_eq!(key.len(), key_arity, "key arity mismatch");
            log(key, Number::Int(0));
            if delta.is_zero() {
                return;
            }
            for index in indexes.values_mut() {
                index.insert(key);
            }
            merged.push((key.to_vec(), delta));
        };
        for (key, value) in old {
            while di < deltas.len() && deltas[di].0 < key.as_slice() {
                insert_new(
                    &mut self.indexes,
                    &mut merged,
                    deltas[di].0,
                    deltas[di].1,
                    &mut log,
                );
                di += 1;
            }
            if di < deltas.len() && deltas[di].0 == key.as_slice() {
                log(&key, value);
                let sum = value.add(&deltas[di].1);
                di += 1;
                if sum.is_zero() {
                    for index in self.indexes.values_mut() {
                        index.remove(&key);
                    }
                } else {
                    merged.push((key, sum));
                }
            } else {
                merged.push((key, value));
            }
        }
        for (key, delta) in &deltas[di..] {
            insert_new(&mut self.indexes, &mut merged, key, *delta, &mut log);
        }
        self.data = merged.into_iter().collect();
    }

    /// Sharded accumulation by pre-splitting the tree: `BTreeMap::split_off` at each
    /// range boundary hands every scoped worker the subtree its contiguous delta
    /// range can touch; each worker runs the same zip-merge as
    /// [`apply_sorted`](ViewStorage::apply_sorted) into a per-shard vector, and the
    /// (ascending, disjoint) per-shard results chain into one linear bulk rebuild.
    /// The map-global permuted indexes cannot be touched concurrently, so workers
    /// record inserted/pruned keys and the indexes are fixed after the join.
    ///
    /// Falls back to the sequential pass when the run is below
    /// `shards * MIN_DELTAS_PER_SHARD` deltas or below the merge threshold (where
    /// `apply_sorted` takes the point path anyway).
    fn apply_sorted_sharded(&mut self, deltas: &[(&[Value], Number)], shards: usize) {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].0 < w[1].0),
            "apply_sorted_sharded requires strictly ascending keys"
        );
        let k = shards.min(deltas.len() / super::MIN_DELTAS_PER_SHARD);
        if k <= 1 || deltas.len() * 8 < self.data.len() {
            self.apply_sorted(deltas);
            return;
        }
        let key_arity = self.key_arity;
        for (key, _) in deltas {
            assert_eq!(key.len(), key_arity, "key arity mismatch");
        }
        // Shard s covers delta indices [bounds[s-1], bounds[s]); splitting the tree at
        // each boundary key gives subtree s exactly the entries range s can touch.
        let bounds: Vec<usize> = (1..k).map(|s| s * deltas.len() / k).collect();
        let mut remaining = std::mem::take(&mut self.data);
        let mut subtrees: Vec<BTreeMap<Vec<Value>, Number>> = Vec::with_capacity(k);
        for &b in bounds.iter().rev() {
            subtrees.push(remaining.split_off(deltas[b].0));
        }
        subtrees.push(remaining);
        subtrees.reverse();
        let track_indexes = !self.indexes.is_empty();
        let mut merged: Vec<Vec<(Vec<Value>, Number)>> = (0..k).map(|_| Vec::new()).collect();
        let mut fixups: Vec<IndexFixups> = (0..k).map(|_| IndexFixups::default()).collect();
        std::thread::scope(|scope| {
            let mut rest = deltas;
            let mut prev = 0usize;
            for (s, ((subtree, out), fixup)) in subtrees
                .into_iter()
                .zip(merged.iter_mut())
                .zip(fixups.iter_mut())
                .enumerate()
            {
                let hi = bounds.get(s).copied().unwrap_or(deltas.len());
                let (range, tail) = rest.split_at(hi - prev);
                prev = hi;
                rest = tail;
                scope.spawn(move || {
                    out.reserve(subtree.len() + range.len());
                    let mut di = 0usize;
                    let insert_new = |out: &mut Vec<(Vec<Value>, Number)>,
                                      fixup: &mut IndexFixups,
                                      key: &[Value],
                                      delta: Number| {
                        if delta.is_zero() {
                            return;
                        }
                        let owned = key.to_vec();
                        if track_indexes {
                            fixup.inserted.push(owned.clone());
                        }
                        out.push((owned, delta));
                    };
                    for (key, value) in subtree {
                        while di < range.len() && range[di].0 < key.as_slice() {
                            insert_new(out, fixup, range[di].0, range[di].1);
                            di += 1;
                        }
                        if di < range.len() && range[di].0 == key.as_slice() {
                            let sum = value.add(&range[di].1);
                            di += 1;
                            if sum.is_zero() {
                                if track_indexes {
                                    fixup.removed.push(key);
                                }
                            } else {
                                out.push((key, sum));
                            }
                        } else {
                            out.push((key, value));
                        }
                    }
                    for &(key, delta) in &range[di..] {
                        insert_new(out, fixup, key, delta);
                    }
                });
            }
        });
        // Per-shard merges are ascending and the shards' key ranges are disjoint and
        // ordered, so chaining them rebuilds the tree in one linear pass.
        self.data = merged.into_iter().flatten().collect();
        // A key appears at most once in the run, so no key is both pruned and
        // inserted; fixup order across shards is immaterial.
        for fixup in fixups {
            for key in fixup.removed {
                for index in self.indexes.values_mut() {
                    index.remove(&key);
                }
            }
            for key in fixup.inserted {
                for index in self.indexes.values_mut() {
                    index.insert(&key);
                }
            }
        }
    }

    /// Registers a pattern. Degenerate patterns are ignored; *prefix* patterns are
    /// accepted but build no structure (the primary sort order already enumerates them
    /// via a range scan); non-prefix patterns get a permuted index, backfilled from the
    /// entries already present.
    fn register_index(&mut self, mut positions: Vec<usize>) {
        positions.sort_unstable();
        positions.dedup();
        if positions.is_empty() || positions.len() >= self.key_arity {
            return;
        }
        if is_prefix(&positions) || self.indexes.contains_key(&positions) {
            return;
        }
        let mut perm = positions.clone();
        perm.extend((0..self.key_arity).filter(|p| !positions.contains(p)));
        let mut index = PermutedIndex {
            perm,
            keys: BTreeSet::new(),
        };
        for key in self.data.keys() {
            index.insert(key);
        }
        self.indexes.insert(positions, index);
    }

    fn for_each(&self, mut visit: impl FnMut(&[Value], Number)) {
        for (k, v) in &self.data {
            visit(k, *v);
        }
    }

    /// Visits every entry whose key matches `values` at the given positions.
    ///
    /// Resolution order: empty pattern → all entries; prefix pattern (registered or not)
    /// → range scan of the primary structure; registered non-prefix pattern → range scan
    /// of its permuted index, reconstructing original-order keys into a scratch buffer
    /// and probing the primary map for each match's value (O(log n) per match — the
    /// trade-off for not duplicating values into every index, which would make each
    /// accumulate of an existing entry touch every index); otherwise a full scan.
    /// Positions must be sorted.
    fn for_each_slice(
        &self,
        positions: &[usize],
        values: &[Value],
        mut visit: impl FnMut(&[Value], Number),
    ) {
        assert_eq!(positions.len(), values.len());
        if positions.is_empty() {
            for (k, v) in &self.data {
                visit(k, *v);
            }
            return;
        }
        // Range bounds borrow `values` as `&[Value]` (`Vec<Value>: Borrow<[Value]>`),
        // so the scans below allocate nothing for the start key.
        let from = (Bound::Included(values), Bound::Unbounded);
        if is_prefix(positions) {
            // Keys extending `values` sort directly after it and form a contiguous run.
            for (k, v) in self.data.range::<[Value], _>(from) {
                if !k.starts_with(values) {
                    break;
                }
                visit(k, *v);
            }
            return;
        }
        if let Some(index) = self.indexes.get(positions) {
            let mut full_key = vec![Value::Int(0); self.key_arity];
            for permuted in index.keys.range::<[Value], _>(from) {
                if !permuted.starts_with(values) {
                    break;
                }
                for (j, &original) in index.perm.iter().enumerate() {
                    full_key[original] = permuted[j].clone();
                }
                let value = self
                    .data
                    .get(&full_key)
                    .copied()
                    .expect("index entry without a primary entry");
                visit(&full_key, value);
            }
            return;
        }
        self.for_each_slice_scan(positions, values, visit);
    }

    fn footprint(&self) -> StorageFootprint {
        StorageFootprint {
            entries: self.data.len(),
            indexes: self.indexes.len(),
            index_entries: self.indexes.values().map(|i| i.keys.len()).sum(),
        }
    }
}

/// Keys one shard worker inserted or pruned, replayed onto the map-global permuted
/// indexes after the scoped threads join (indexes are never touched concurrently).
#[derive(Default)]
struct IndexFixups {
    inserted: Vec<Vec<Value>>,
    removed: Vec<Vec<Value>>,
}

#[cfg(test)]
mod tests {
    use super::super::slice_entries;
    use super::*;

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    fn slice(
        m: &OrderedViewStorage,
        positions: &[usize],
        values: &[Value],
    ) -> Vec<(Vec<Value>, Number)> {
        slice_entries(m, positions, values)
    }

    #[test]
    fn get_add_and_prune() {
        let mut m = OrderedViewStorage::new(2);
        assert_eq!(m.get(&key(&[1, 2])), Number::Int(0));
        m.add(key(&[1, 2]), Number::Int(5));
        m.add(key(&[1, 3]), Number::Int(7));
        assert_eq!(m.get(&key(&[1, 2])), Number::Int(5));
        assert_eq!(m.len(), 2);
        m.add(key(&[1, 2]), Number::Int(-5));
        assert_eq!(m.get(&key(&[1, 2])), Number::Int(0));
        assert_eq!(m.len(), 1);
        m.add(key(&[1, 3]), Number::Int(0));
        assert_eq!(m.len(), 1);
        assert_eq!(m.key_arity(), 2);
        assert!(!m.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut m = OrderedViewStorage::new(2);
        m.add_ref(&key(&[1]), Number::Int(1));
    }

    #[test]
    fn prefix_patterns_range_scan_without_any_index() {
        let mut m = OrderedViewStorage::new(3);
        for (a, b, c) in [(1, 10, 100), (1, 10, 101), (1, 11, 100), (2, 10, 100)] {
            m.add(key(&[a, b, c]), Number::Int(1));
        }
        // No registration at all: prefix slices still cost only the matching range.
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 3);
        assert_eq!(slice(&m, &[0, 1], &key(&[1, 10])).len(), 2);
        assert_eq!(slice(&m, &[0, 1], &key(&[1, 12])).len(), 0);
        assert_eq!(slice(&m, &[], &[]).len(), 4);
        // Registering a prefix pattern builds no secondary structure.
        m.register_index(vec![0]);
        m.register_index(vec![0, 1]);
        assert_eq!(m.footprint().indexes, 0);
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 3);
    }

    #[test]
    fn prefix_scan_stops_at_the_end_of_the_matching_run() {
        let mut m = OrderedViewStorage::new(2);
        for (a, b) in [(1, 10), (2, 10), (2, 11), (3, 5)] {
            m.add(key(&[a, b]), Number::Int(1));
        }
        let hits = slice(&m, &[0], &key(&[2]));
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|(k, _)| k[0] == Value::int(2)));
    }

    #[test]
    fn non_prefix_patterns_use_a_permuted_index() {
        let mut m = OrderedViewStorage::new(2);
        m.register_index(vec![1]);
        for (a, b, v) in [(1, 10, 2), (1, 11, 3), (2, 10, 4), (2, 12, 5)] {
            m.add(key(&[a, b]), Number::Int(v));
        }
        assert_eq!(m.footprint().indexes, 1);
        assert_eq!(m.footprint().index_entries, 4);
        let mut hits: Vec<i64> = slice(&m, &[1], &key(&[10]))
            .iter()
            .map(|(_, v)| v.as_i64().unwrap())
            .collect();
        hits.sort_unstable();
        assert_eq!(hits, vec![2, 4]);
        // Keys reach the visitor in original position order.
        for (k, _) in slice(&m, &[1], &key(&[10])) {
            assert_eq!(k[1], Value::int(10));
        }
        // Pruning maintains the permuted index.
        m.add(key(&[1, 10]), Number::Int(-2));
        assert_eq!(slice(&m, &[1], &key(&[10])).len(), 1);
        assert_eq!(m.footprint().index_entries, 3);
        // Re-insertion after pruning works.
        m.add(key(&[1, 10]), Number::Int(9));
        assert_eq!(slice(&m, &[1], &key(&[10])).len(), 2);
    }

    #[test]
    fn unregistered_non_prefix_patterns_fall_back_to_scan() {
        let mut m = OrderedViewStorage::new(3);
        for (a, b, c) in [(1, 10, 7), (2, 11, 7), (3, 10, 8)] {
            m.add(key(&[a, b, c]), Number::Int(1));
        }
        assert_eq!(slice(&m, &[2], &key(&[7])).len(), 2);
        assert_eq!(slice(&m, &[1, 2], &key(&[10, 7])).len(), 1);
    }

    #[test]
    fn late_index_registration_backfills_existing_entries() {
        let mut m = OrderedViewStorage::new(2);
        m.add(key(&[1, 10]), Number::Int(2));
        m.add(key(&[2, 10]), Number::Int(3));
        m.add(key(&[3, 11]), Number::Int(4));
        m.register_index(vec![1]);
        assert_eq!(slice(&m, &[1], &key(&[10])).len(), 2);
        assert_eq!(slice(&m, &[1], &key(&[11])).len(), 1);
        assert_eq!(m.footprint().index_entries, 3);
        // Registration is idempotent and degenerate patterns stay ignored.
        m.register_index(vec![1]);
        m.register_index(vec![]);
        m.register_index(vec![0, 1]);
        m.register_index(vec![1, 1]);
        assert_eq!(m.index_patterns().count(), 1);
    }

    #[test]
    fn add_ref_matches_add_including_index_maintenance() {
        let mut by_ref = OrderedViewStorage::new(2);
        let mut by_value = OrderedViewStorage::new(2);
        for m in [&mut by_ref, &mut by_value] {
            m.register_index(vec![1]);
        }
        let trace: &[(&[i64], i64)] = &[
            (&[1, 10], 2),
            (&[1, 11], 3),
            (&[1, 10], -2), // prunes
            (&[2, 10], 4),
            (&[1, 10], 7), // re-inserts after pruning
            (&[2, 10], -4),
        ];
        for (k, d) in trace {
            by_ref.add_ref(&key(k), Number::Int(*d));
            by_value.add(key(k), Number::Int(*d));
        }
        assert_eq!(by_ref.len(), by_value.len());
        for (k, v) in by_value.iter() {
            assert_eq!(by_ref.get(k), *v);
        }
        assert_eq!(by_ref.footprint(), by_value.footprint());
        assert_eq!(slice(&by_ref, &[1], &key(&[10])).len(), 1);
        by_ref.add_ref(&key(&[5, 5]), Number::Int(0));
        assert_eq!(by_ref.get(&key(&[5, 5])), Number::Int(0));
    }

    #[test]
    fn iteration_is_sorted_and_floats_are_supported() {
        let mut m = OrderedViewStorage::new(1);
        m.add(key(&[3]), Number::Int(1));
        m.add(key(&[1]), Number::Float(2.5));
        m.add(key(&[2]), Number::Int(2));
        m.add(key(&[1]), Number::Int(1));
        assert_eq!(m.get(&key(&[1])), Number::Float(3.5));
        let keys: Vec<i64> = m.iter().map(|(k, _)| k[0].as_int().unwrap()).collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn mixed_value_types_keep_slices_correct() {
        // Prefix scans only rely on Ord being consistent with Eq, so heterogeneous
        // prefixes (ints next to strings) must still slice exactly.
        let mut m = OrderedViewStorage::new(2);
        m.add(vec![Value::str("FR"), Value::int(1)], Number::Int(1));
        m.add(vec![Value::str("FR"), Value::int(2)], Number::Int(1));
        m.add(vec![Value::str("DE"), Value::int(1)], Number::Int(1));
        m.add(vec![Value::int(7), Value::int(1)], Number::Int(1));
        assert_eq!(slice(&m, &[0], &[Value::str("FR")]).len(), 2);
        assert_eq!(slice(&m, &[0], &[Value::str("DE")]).len(), 1);
        assert_eq!(slice(&m, &[0], &[Value::int(7)]).len(), 1);
        assert_eq!(slice(&m, &[0], &[Value::str("IT")]).len(), 0);
    }
}
