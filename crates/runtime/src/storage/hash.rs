//! The hash backend: a flat hash map with hash-based slice indexes.
//!
//! A view is a hash map from key tuples (`Vec<Value>`) to aggregate values ([`Number`]).
//! Trigger statements with loop variables need to enumerate the entries of a map that
//! match a *partially* bound key ("give me all `(nation, cid)` entries with this
//! nation"); to keep that proportional to the number of matching entries — rather than to
//! the size of the map, which would silently reintroduce a dependence on the database
//! size — the storage maintains secondary indexes for exactly the key-position patterns
//! the compiled program needs. Index maintenance is a constant amount of extra work per
//! write.
//!
//! This is the default [`ViewStorage`](crate::storage::ViewStorage) backend: O(1) probes
//! and writes, and the backend the lowered executor's zero-allocation steady state was
//! tuned on. Its limitation is structural: hash indexes serve exactly the patterns
//! registered for them, so every additional pattern costs a full parallel index — the
//! trade-off the ordered backend inverts.

use std::collections::{HashMap, HashSet};

use dbring_algebra::{Number, Semiring};
use dbring_relations::Value;

use super::{StorageFootprint, ViewStorage};

/// One secondary index: the values at a pattern's key positions, mapped to the set of
/// full keys having those values.
type SliceIndex = HashMap<Vec<Value>, HashSet<Vec<Value>>>;

/// One materialized map: key tuples of a fixed arity mapping to aggregate values, plus the
/// slice indexes registered for it.
#[derive(Clone, Debug, Default)]
pub struct HashViewStorage {
    key_arity: usize,
    data: HashMap<Vec<Value>, Number>,
    /// For each registered pattern (a sorted list of key positions), the index over it.
    indexes: HashMap<Vec<usize>, SliceIndex>,
}

impl HashViewStorage {
    /// Iterates over all `(key, value)` entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &Number)> {
        self.data.iter()
    }

    /// The registered index patterns (sorted position lists).
    pub fn index_patterns(&self) -> impl Iterator<Item = &Vec<usize>> {
        self.indexes.keys()
    }

    /// Adds `delta` to an *existing* entry, pruning it (with index removal) when the sum
    /// reaches zero; returns `false` without touching anything if the entry is absent.
    /// Shared by `add` and `add_ref` so the accumulate / prune / index-maintenance
    /// invariants live in one place.
    fn accumulate_existing(&mut self, key: &[Value], delta: Number) -> bool {
        let Some(value) = self.data.get_mut(key) else {
            return false;
        };
        let sum = value.add(&delta);
        if sum.is_zero() {
            let (owned, _) = self
                .data
                .remove_entry(key)
                .expect("entry present: just read");
            Self::index_remove(&mut self.indexes, &owned);
        } else {
            *value = sum;
        }
        true
    }

    /// Records a newly inserted key in every index.
    fn index_insert(indexes: &mut HashMap<Vec<usize>, SliceIndex>, key: &[Value]) {
        for (pattern, index) in indexes.iter_mut() {
            let slice_key: Vec<Value> = pattern.iter().map(|&i| key[i].clone()).collect();
            index.entry(slice_key).or_default().insert(key.to_vec());
        }
    }

    /// Removes a pruned key from every index.
    fn index_remove(indexes: &mut HashMap<Vec<usize>, SliceIndex>, key: &[Value]) {
        for (pattern, index) in indexes.iter_mut() {
            let slice_key: Vec<Value> = pattern.iter().map(|&i| key[i].clone()).collect();
            if let Some(set) = index.get_mut(&slice_key) {
                set.remove(key);
                if set.is_empty() {
                    index.remove(&slice_key);
                }
            }
        }
    }
}

impl ViewStorage for HashViewStorage {
    const BACKEND: super::StorageBackend = super::StorageBackend::Hash;

    fn new(key_arity: usize) -> Self {
        HashViewStorage {
            key_arity,
            data: HashMap::new(),
            indexes: HashMap::new(),
        }
    }

    fn key_arity(&self) -> usize {
        self.key_arity
    }

    fn len(&self) -> usize {
        self.data.len()
    }

    fn get(&self, key: &[Value]) -> Number {
        self.data.get(key).copied().unwrap_or(Number::Int(0))
    }

    /// Adds `delta` to the value under `key`, maintaining indexes and pruning zeros.
    ///
    /// The key is consumed; it is cloned only for index maintenance on first insertion
    /// (an update of an existing entry, or any write to an unindexed map, never clones).
    fn add(&mut self, key: Vec<Value>, delta: Number) {
        assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        if delta.is_zero() {
            return;
        }
        if self.accumulate_existing(&key, delta) {
            return;
        }
        Self::index_insert(&mut self.indexes, &key);
        self.data.insert(key, delta);
    }

    /// Adds `delta` to the value under `key`, cloning the key *only* when the entry does
    /// not already exist — the steady-state write path of the executor performs no heap
    /// allocation at all.
    fn add_ref(&mut self, key: &[Value], delta: Number) {
        assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        if delta.is_zero() {
            return;
        }
        if self.accumulate_existing(key, delta) {
            return;
        }
        let owned: Vec<Value> = key.to_vec();
        Self::index_insert(&mut self.indexes, &owned);
        self.data.insert(owned, delta);
    }

    /// Registers a slice index over the given key positions (deduplicated, ignored if the
    /// pattern covers all positions or none). Entries already present are backfilled, so
    /// an index registered after writes serves exactly the same matches as one registered
    /// up front.
    fn register_index(&mut self, mut positions: Vec<usize>) {
        positions.sort_unstable();
        positions.dedup();
        if positions.is_empty() || positions.len() >= self.key_arity {
            return;
        }
        if self.indexes.contains_key(&positions) {
            return;
        }
        let mut index = SliceIndex::new();
        for key in self.data.keys() {
            let slice_key: Vec<Value> = positions.iter().map(|&i| key[i].clone()).collect();
            index.entry(slice_key).or_default().insert(key.clone());
        }
        self.indexes.insert(positions, index);
    }

    fn for_each(&self, mut visit: impl FnMut(&[Value], Number)) {
        for (k, v) in &self.data {
            visit(k, *v);
        }
    }

    /// Visits every entry whose key matches `values` at the given positions, without
    /// materializing the matches (the executor's allocation-free enumeration path).
    ///
    /// Resolution order: empty pattern → all entries, registered index → index probe,
    /// otherwise a full scan. Positions must be sorted.
    fn for_each_slice(
        &self,
        positions: &[usize],
        values: &[Value],
        mut visit: impl FnMut(&[Value], Number),
    ) {
        assert_eq!(positions.len(), values.len());
        if positions.is_empty() {
            for (k, v) in &self.data {
                visit(k, *v);
            }
            return;
        }
        if let Some(index) = self.indexes.get(positions) {
            if let Some(keys) = index.get(values) {
                for k in keys {
                    let (k, v) = self
                        .data
                        .get_key_value(k)
                        .expect("index entry without a primary entry");
                    visit(k, *v);
                }
            }
            return;
        }
        self.for_each_slice_scan(positions, values, visit);
    }

    /// The staged-ingest landing pass: one hash lookup per key serves both the
    /// pre-image capture and the accumulate/prune/insert — the same write semantics
    /// as the default `add_ref` loop, minus the second probe the trait default pays.
    fn apply_sorted_logged(
        &mut self,
        deltas: &[(&[Value], Number)],
        mut log: impl FnMut(&[Value], Number),
    ) {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].0 < w[1].0),
            "apply_sorted_logged requires strictly ascending keys"
        );
        for (key, delta) in deltas {
            assert_eq!(key.len(), self.key_arity, "key arity mismatch");
            match self.data.get_mut(*key) {
                Some(value) => {
                    log(key, *value);
                    if delta.is_zero() {
                        continue;
                    }
                    let sum = value.add(delta);
                    if sum.is_zero() {
                        let (owned, _) = self
                            .data
                            .remove_entry(*key)
                            .expect("entry present: just read");
                        Self::index_remove(&mut self.indexes, &owned);
                    } else {
                        *value = sum;
                    }
                }
                None => {
                    log(key, Number::Int(0));
                    if delta.is_zero() {
                        continue;
                    }
                    let owned: Vec<Value> = key.to_vec();
                    Self::index_insert(&mut self.indexes, &owned);
                    self.data.insert(owned, *delta);
                }
            }
        }
    }

    /// Sharded accumulation by interior sharding: the primary map is repartitioned
    /// into `k` maps along the contiguous key ranges of the sorted run, one worker
    /// lands each range into its own map on a scoped thread, and the shards are
    /// merged back. The (map-global) slice indexes cannot be touched concurrently, so
    /// workers record the keys they inserted/pruned and the indexes are fixed
    /// sequentially after the join.
    ///
    /// Falls back to the sequential [`apply_sorted`](ViewStorage::apply_sorted) when
    /// the run is below `shards * MIN_DELTAS_PER_SHARD` deltas or small relative to
    /// the map — the repartition and merge are two O(map) passes, a price only a
    /// run of comparable size can pay for.
    fn apply_sorted_sharded(&mut self, deltas: &[(&[Value], Number)], shards: usize) {
        debug_assert!(
            deltas.windows(2).all(|w| w[0].0 < w[1].0),
            "apply_sorted_sharded requires strictly ascending keys"
        );
        let k = shards.min(deltas.len() / super::MIN_DELTAS_PER_SHARD);
        if k <= 1 || deltas.len() * 4 < self.data.len() {
            self.apply_sorted(deltas);
            return;
        }
        for (key, _) in deltas {
            assert_eq!(key.len(), self.key_arity, "key arity mismatch");
        }
        // Shard s covers delta indices [bounds[s-1], bounds[s]); the boundary keys
        // (each range's first key) also partition the primary map's entries, since
        // the run is strictly ascending.
        let bounds: Vec<usize> = (1..k).map(|s| s * deltas.len() / k).collect();
        let boundary_keys: Vec<&[Value]> = bounds.iter().map(|&b| deltas[b].0).collect();
        let old = std::mem::take(&mut self.data);
        let mut shard_maps: Vec<HashMap<Vec<Value>, Number>> =
            (0..k).map(|_| HashMap::new()).collect();
        for (key, value) in old {
            let shard = boundary_keys.partition_point(|b| *b <= key.as_slice());
            shard_maps[shard].insert(key, value);
        }
        let track_indexes = !self.indexes.is_empty();
        let mut fixups: Vec<IndexFixups> = (0..k).map(|_| IndexFixups::default()).collect();
        std::thread::scope(|scope| {
            let mut rest = deltas;
            let mut prev = 0usize;
            for (s, (shard_map, fixup)) in shard_maps.iter_mut().zip(fixups.iter_mut()).enumerate()
            {
                let hi = bounds.get(s).copied().unwrap_or(deltas.len());
                let (range, tail) = rest.split_at(hi - prev);
                prev = hi;
                rest = tail;
                scope.spawn(move || {
                    for (key, delta) in range {
                        if delta.is_zero() {
                            continue;
                        }
                        if let Some(value) = shard_map.get_mut(*key) {
                            let sum = value.add(delta);
                            if sum.is_zero() {
                                let (owned, _) = shard_map
                                    .remove_entry(*key)
                                    .expect("entry present: just read");
                                if track_indexes {
                                    fixup.removed.push(owned);
                                }
                            } else {
                                *value = sum;
                            }
                        } else {
                            let owned = key.to_vec();
                            if track_indexes {
                                fixup.inserted.push(owned.clone());
                            }
                            shard_map.insert(owned, *delta);
                        }
                    }
                });
            }
        });
        let total: usize = shard_maps.iter().map(HashMap::len).sum();
        let mut data = HashMap::with_capacity(total);
        for shard in shard_maps {
            data.extend(shard);
        }
        self.data = data;
        // A key appears at most once in the run, so no key is both pruned and
        // inserted; fixup order across shards is immaterial.
        for fixup in fixups {
            for key in fixup.removed {
                Self::index_remove(&mut self.indexes, &key);
            }
            for key in fixup.inserted {
                Self::index_insert(&mut self.indexes, &key);
            }
        }
    }

    fn footprint(&self) -> StorageFootprint {
        StorageFootprint {
            entries: self.data.len(),
            indexes: self.indexes.len(),
            index_entries: self
                .indexes
                .values()
                .map(|index| index.values().map(HashSet::len).sum::<usize>())
                .sum(),
        }
    }
}

/// Keys one shard worker inserted or pruned, replayed onto the map-global slice
/// indexes after the scoped threads join (indexes are never touched concurrently).
#[derive(Default)]
struct IndexFixups {
    inserted: Vec<Vec<Value>>,
    removed: Vec<Vec<Value>>,
}

#[cfg(test)]
mod tests {
    use super::super::slice_entries;
    use super::*;

    fn key(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::int(v)).collect()
    }

    fn slice(
        m: &HashViewStorage,
        positions: &[usize],
        values: &[Value],
    ) -> Vec<(Vec<Value>, Number)> {
        slice_entries(m, positions, values)
    }

    #[test]
    fn get_add_and_prune() {
        let mut m = HashViewStorage::new(2);
        assert_eq!(m.get(&key(&[1, 2])), Number::Int(0));
        m.add(key(&[1, 2]), Number::Int(5));
        m.add(key(&[1, 3]), Number::Int(7));
        assert_eq!(m.get(&key(&[1, 2])), Number::Int(5));
        assert_eq!(m.len(), 2);
        m.add(key(&[1, 2]), Number::Int(-5));
        assert_eq!(m.get(&key(&[1, 2])), Number::Int(0));
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
        m.add(key(&[1, 3]), Number::Int(0));
        assert_eq!(m.len(), 1);
        assert_eq!(m.key_arity(), 2);
    }

    #[test]
    fn set_overwrites() {
        let mut m = HashViewStorage::new(1);
        m.set(key(&[1]), Number::Int(10));
        assert_eq!(m.get(&key(&[1])), Number::Int(10));
        m.set(key(&[1]), Number::Int(3));
        assert_eq!(m.get(&key(&[1])), Number::Int(3));
        m.set(key(&[1]), Number::Int(0));
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut m = HashViewStorage::new(2);
        m.add(key(&[1]), Number::Int(1));
    }

    #[test]
    fn slices_with_and_without_index() {
        let mut indexed = HashViewStorage::new(2);
        indexed.register_index(vec![0]);
        let mut scanned = HashViewStorage::new(2);
        for (a, b, v) in [(1, 10, 2), (1, 11, 3), (2, 10, 4), (2, 12, 5)] {
            indexed.add(key(&[a, b]), Number::Int(v));
            scanned.add(key(&[a, b]), Number::Int(v));
        }
        for store in [&indexed, &scanned] {
            let mut hits: Vec<i64> = slice(store, &[0], &key(&[1]))
                .iter()
                .map(|(_, v)| v.as_i64().unwrap())
                .collect();
            hits.sort_unstable();
            assert_eq!(hits, vec![2, 3]);
            assert!(slice(store, &[0], &key(&[9])).is_empty());
            // Slicing on the second position works too (scan fallback for `indexed`).
            assert_eq!(slice(store, &[1], &key(&[10])).len(), 2);
            // Empty pattern = all entries.
            assert_eq!(slice(store, &[], &[]).len(), 4);
        }
    }

    #[test]
    fn index_tracks_removals() {
        let mut m = HashViewStorage::new(2);
        m.register_index(vec![0]);
        m.add(key(&[1, 10]), Number::Int(2));
        m.add(key(&[1, 11]), Number::Int(3));
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 2);
        m.add(key(&[1, 10]), Number::Int(-2));
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 1);
        m.add(key(&[1, 11]), Number::Int(-3));
        assert!(slice(&m, &[0], &key(&[1])).is_empty());
        // Re-inserting after pruning works.
        m.add(key(&[1, 10]), Number::Int(9));
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 1);
    }

    #[test]
    fn degenerate_index_patterns_are_ignored() {
        let mut m = HashViewStorage::new(2);
        m.register_index(vec![]);
        m.register_index(vec![0, 1]);
        m.register_index(vec![1, 0, 1]);
        assert_eq!(m.index_patterns().count(), 0);
        m.register_index(vec![1]);
        assert_eq!(m.index_patterns().count(), 1);
    }

    /// Regression: registering an index *after* entries exist used to leave the index
    /// empty, silently dropping every pre-existing entry from subsequent enumerations.
    /// Registration must backfill.
    #[test]
    fn late_index_registration_backfills_existing_entries() {
        let mut m = HashViewStorage::new(2);
        m.add(key(&[1, 10]), Number::Int(2));
        m.add(key(&[1, 11]), Number::Int(3));
        m.add(key(&[2, 10]), Number::Int(4));
        m.register_index(vec![0]);
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 2);
        assert_eq!(slice(&m, &[0], &key(&[2])).len(), 1);
        // The backfilled index keeps tracking later writes and prunes.
        m.add(key(&[1, 12]), Number::Int(1));
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 3);
        m.add(key(&[1, 10]), Number::Int(-2));
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 2);
        // Re-registering the same pattern is a no-op (the live index survives).
        m.register_index(vec![0]);
        assert_eq!(slice(&m, &[0], &key(&[1])).len(), 2);
        assert_eq!(m.footprint().indexes, 1);
        assert_eq!(m.footprint().index_entries, m.len());
    }

    #[test]
    fn add_ref_matches_add_including_index_maintenance() {
        let mut by_ref = HashViewStorage::new(2);
        let mut by_value = HashViewStorage::new(2);
        for m in [&mut by_ref, &mut by_value] {
            m.register_index(vec![0]);
        }
        let trace: &[(&[i64], i64)] = &[
            (&[1, 10], 2),
            (&[1, 11], 3),
            (&[1, 10], -2), // prunes
            (&[2, 10], 4),
            (&[1, 10], 7), // re-inserts after pruning
            (&[2, 10], -4),
        ];
        for (k, d) in trace {
            by_ref.add_ref(&key(k), Number::Int(*d));
            by_value.add(key(k), Number::Int(*d));
        }
        assert_eq!(by_ref.len(), by_value.len());
        for (k, v) in by_value.iter() {
            assert_eq!(by_ref.get(k), *v);
        }
        assert_eq!(slice(&by_ref, &[0], &key(&[1])).len(), 2);
        assert_eq!(slice(&by_ref, &[0], &key(&[2])).len(), 0);
        // Zero deltas are ignored on both paths.
        by_ref.add_ref(&key(&[5, 5]), Number::Int(0));
        assert_eq!(by_ref.get(&key(&[5, 5])), Number::Int(0));
    }

    #[test]
    fn for_each_slice_agrees_with_materialized_slices() {
        let mut m = HashViewStorage::new(2);
        m.register_index(vec![0]);
        for (a, b, v) in [(1, 10, 2), (1, 11, 3), (2, 10, 4)] {
            m.add(key(&[a, b]), Number::Int(v));
        }
        for (positions, values) in [
            (vec![0], key(&[1])),
            (vec![1], key(&[10])), // scan fallback
            (vec![], vec![]),      // all entries
            (vec![0], key(&[9])),  // no matches
        ] {
            let mut visited = 0usize;
            let mut sum = 0i64;
            m.for_each_slice(&positions, &values, |_, v| {
                visited += 1;
                sum += v.as_i64().unwrap();
            });
            let expected = slice(&m, &positions, &values);
            assert_eq!(visited, expected.len());
            assert_eq!(
                sum,
                expected
                    .iter()
                    .map(|(_, v)| v.as_i64().unwrap())
                    .sum::<i64>()
            );
        }
    }

    #[test]
    fn float_values_are_supported() {
        let mut m = HashViewStorage::new(1);
        m.add(key(&[1]), Number::Float(2.5));
        m.add(key(&[1]), Number::Int(1));
        assert_eq!(m.get(&key(&[1])), Number::Float(3.5));
    }

    #[test]
    fn footprint_counts_entries_and_index_entries() {
        let mut m = HashViewStorage::new(2);
        m.register_index(vec![0]);
        m.register_index(vec![1]);
        for (a, b) in [(1, 10), (1, 11), (2, 10)] {
            m.add(key(&[a, b]), Number::Int(1));
        }
        let fp = m.footprint();
        assert_eq!(fp.entries, 3);
        assert_eq!(fp.indexes, 2);
        assert_eq!(fp.index_entries, 6); // every entry appears once per index
    }
}
