//! Runtime for the compiled trigger programs of `dbring-compiler`, plus the maintenance
//! baselines the paper's complexity argument compares against.
//!
//! ## The two-stage pipeline: compile → lower → execute
//!
//! A standing query goes through two representations before it runs:
//!
//! 1. **`TriggerProgram`** (from [`dbring_compiler::compile`](dbring_compiler::compile())) — the string-named NC0C
//!    IR: readable, serializable, validatable, and the right entry point for anything
//!    that *inspects* a program (code generation, `describe()`, tests over statement
//!    structure).
//! 2. **`ExecPlan`** (from [`dbring_compiler::lower`](dbring_compiler::lower())) — the slot-resolved execution
//!    plan: every variable is a fixed `u16` frame slot, every lookup is pre-classified
//!    as a fully-bound `Probe` or a partially-bound `Enumerate` with its slice-index
//!    pattern chosen once. This is the right entry point for anything that *runs* a
//!    program; [`Executor::new`](executor::Executor::new) lowers internally, so most
//!    callers never touch the plan directly.
//!
//! ## Pluggable view storage
//!
//! Both executors are generic over the [`ViewStorage`] backend
//! holding their materialized views — the paper's guarantee only needs point probes,
//! ring accumulation with zero-pruning, and partial-key enumeration, so backends with
//! different physical trade-offs plug in under the unchanged execution layer:
//! [`HashViewStorage`] (the default: hash map + hash slice
//! indexes, O(1) probes) and [`OrderedViewStorage`]
//! (`BTreeMap` + sorted range scans, O(log n) probes but prefix enumerations need no
//! secondary index at all). Select at compile time by naming the type
//! (`Executor::<OrderedViewStorage>::with_backend`) or at runtime through
//! [`StorageBackend`] and the strategy registry
//! ([`strategy_by_name`], names like
//! `"recursive-ivm@ordered"`).
//!
//! Four maintenance strategies are provided behind the common
//! [`MaintenanceStrategy`] interface:
//!
//! * [`Executor`] — **recursive IVM** (the paper's contribution),
//!   running the lowered plan over flat reusable frames: per update it performs a
//!   constant number of arithmetic operations per maintained value, never touches the
//!   base relations, and in the steady state allocates nothing on the heap (keys are
//!   assembled in scratch buffers; writes go through
//!   [`ViewStorage::add_ref`], which only clones a key
//!   on first insertion). Arithmetic operations and map writes are counted so the
//!   experiments can verify the constant-work claim (Theorem 7.1) directly rather than
//!   only through wall-clock time.
//! * [`InterpretedExecutor`] — the same trigger semantics
//!   interpreted directly over the string-named IR with per-candidate `HashMap`
//!   environments. Slower by design; it is the auditable reference the lowered path is
//!   tested (and benchmarked) against, with identical
//!   [`ExecStats`] accounting.
//! * [`ClassicalIvm`] — classical first-order incremental view
//!   maintenance: only the query result is materialized; on every update the *first*
//!   delta query is evaluated against the stored database with the reference evaluator.
//! * [`NaiveReeval`] — non-incremental evaluation: the query is
//!   recomputed from scratch after every update.
//!
//! [`executor::Executor::initialize_from`] loads a compiled program's views from a
//! non-empty starting database by evaluating each view's defining query once with the
//! reference evaluator (the "initial values" step of Section 1.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod executor;
pub mod fault;
pub mod interp;
pub mod registry;
pub mod snapshot;
pub mod storage;
pub mod strategy;

pub use baseline::{ClassicalIvm, NaiveReeval};
pub use engine::{boxed_engine, boxed_engine_by_name, try_boxed_engine, ViewEngine};
pub use executor::{ExecStats, Executor, RuntimeError, StagedBatch};
pub use fault::{FaultOp, FaultPlan, FaultStorage};
pub use interp::InterpretedExecutor;
pub use registry::{EngineRegistry, ParallelConfig};
pub use snapshot::{SnapshotAccess, SnapshotStore, ViewSnapshot};
pub use storage::{
    HashViewStorage, MapStorage, OrderedViewStorage, StorageBackend, StorageFootprint, ViewStorage,
};
pub use strategy::{interpreted_ivm, recursive_ivm, strategy_by_name, MaintenanceStrategy};
