//! Runtime for the compiled trigger programs of `dbring-compiler`, plus the maintenance
//! baselines the paper's complexity argument compares against.
//!
//! Three maintenance strategies are provided behind the common
//! [`MaintenanceStrategy`](strategy::MaintenanceStrategy) interface:
//!
//! * [`Executor`](executor::Executor) — **recursive IVM** (the paper's contribution): runs
//!   a compiled NC0C trigger program over flat hash maps; per update it performs a
//!   constant number of arithmetic operations per maintained value and never touches the
//!   base relations. Arithmetic operations and map writes are counted so the experiments
//!   can verify the constant-work claim directly rather than only through wall-clock time.
//! * [`ClassicalIvm`](baseline::ClassicalIvm) — classical first-order incremental view
//!   maintenance: only the query result is materialized; on every update the *first* delta
//!   query is evaluated against the stored database with the reference evaluator.
//! * [`NaiveReeval`](baseline::NaiveReeval) — non-incremental evaluation: the query is
//!   recomputed from scratch after every update.
//!
//! [`executor::Executor::initialize_from`] loads a compiled program's views from a
//! non-empty starting database by evaluating each view's defining query once with the
//! reference evaluator (the "initial values" step of Section 1.1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod executor;
pub mod storage;
pub mod strategy;

pub use baseline::{ClassicalIvm, NaiveReeval};
pub use executor::{ExecStats, Executor, RuntimeError};
pub use storage::MapStorage;
pub use strategy::MaintenanceStrategy;
