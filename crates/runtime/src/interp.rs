//! The reference interpreter: trigger programs executed directly over the string-named
//! IR, with one `HashMap<String, Value>` environment per candidate binding.
//!
//! This was the executor's original inner loop. It remains as the *semantic reference*
//! for the slot-resolved [`Executor`](crate::executor::Executor): slower (per-factor name
//! hashing, per-binding environment clones, per-call bound-position derivation) but
//! simple enough to audit at a glance. The equivalence tests and the
//! `per_update_latency` bench run both paths against each other; work counters
//! ([`ExecStats`]) are maintained identically so the comparison is exact, not just
//! end-state equal.

use std::collections::{HashMap, HashSet};

use dbring_algebra::{Number, Semiring};
use dbring_relations::{Database, DeltaBatch, Update, Value};

use dbring_agca::eval::{compare_values, EvalError};
use dbring_compiler::{RhsFactor, ScalarExpr, Statement, TriggerProgram};
use dbring_delta::Sign;

use crate::executor::{rollback_maps, ExecStats, RuntimeError, StagedBatch, UndoLog};
use crate::storage::{HashViewStorage, ViewStorage};

/// The name-resolving reference executor for one compiled trigger program, generic over
/// the [`ViewStorage`] backend like the lowered [`Executor`](crate::executor::Executor)
/// (default: the hash backend).
#[derive(Clone, Debug)]
pub struct InterpretedExecutor<S: ViewStorage = HashViewStorage> {
    program: TriggerProgram,
    maps: Vec<S>,
    stats: ExecStats,
}

impl InterpretedExecutor<HashViewStorage> {
    /// Creates an interpreter with empty views on the default hash backend (correct when
    /// starting from the empty database; otherwise call
    /// [`InterpretedExecutor::initialize_from`]). For another backend, name it:
    /// `InterpretedExecutor::<OrderedViewStorage>::with_backend`.
    pub fn new(program: TriggerProgram) -> Self {
        Self::with_backend(program)
    }
}

impl<S: ViewStorage> InterpretedExecutor<S> {
    /// Creates an interpreter with empty views on the backend named by the type
    /// parameter, e.g. `InterpretedExecutor::<OrderedViewStorage>::with_backend(p)`.
    pub fn with_backend(program: TriggerProgram) -> Self {
        let mut maps: Vec<S> = program
            .maps
            .iter()
            .map(|m| S::new(m.key_vars.len()))
            .collect();
        // Register the slice indexes each statement will need: for every lookup, the key
        // positions that are bound (by parameters or earlier lookups) at that point.
        for trigger in &program.triggers {
            for stmt in &trigger.statements {
                let mut bound: HashSet<&str> = trigger.params.iter().map(String::as_str).collect();
                for factor in &stmt.factors {
                    if let RhsFactor::MapLookup { map, keys } = factor {
                        let positions: Vec<usize> = keys
                            .iter()
                            .enumerate()
                            .filter(|(_, k)| bound.contains(k.as_str()))
                            .map(|(i, _)| i)
                            .collect();
                        if !positions.is_empty() && positions.len() < keys.len() {
                            maps[*map].register_index(positions);
                        }
                        bound.extend(keys.iter().map(String::as_str));
                    }
                }
            }
        }
        InterpretedExecutor {
            program,
            maps,
            stats: ExecStats::default(),
        }
    }

    /// The compiled program this interpreter runs.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Resets the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Accepts (and ignores) a within-view thread budget: the reference interpreter
    /// applies every write immediately, so it has no batched flush to shard.
    pub fn set_parallelism(&mut self, _threads: usize) {}

    /// The storage of one materialized view.
    pub fn map(&self, id: usize) -> &S {
        &self.maps[id]
    }

    /// The output view's storage.
    pub fn output(&self) -> &S {
        &self.maps[self.program.output]
    }

    /// The output view as a sorted table.
    pub fn output_table(&self) -> std::collections::BTreeMap<Vec<Value>, Number> {
        self.output().to_table()
    }

    /// The output value for one group key (zero if absent).
    pub fn output_value(&self, key: &[Value]) -> Number {
        self.output().get(key)
    }

    /// Total number of entries across all views.
    pub fn total_entries(&self) -> usize {
        self.maps.iter().map(S::len).sum()
    }

    /// The aggregate memory proxy of the whole view hierarchy: entries plus the
    /// secondary-index structure the backend maintains next to them (identical
    /// accounting to the lowered [`Executor`](crate::executor::Executor)).
    pub fn storage_footprint(&self) -> crate::storage::StorageFootprint {
        self.maps
            .iter()
            .map(S::footprint)
            .fold(Default::default(), crate::storage::StorageFootprint::merge)
    }

    /// Loads every view from a non-empty starting database (the same bulk-load routine
    /// the lowered [`Executor`](crate::executor::Executor) uses, so both paths
    /// initialize identically).
    pub fn initialize_from(&mut self, db: &Database) -> Result<(), EvalError> {
        crate::executor::initialize_maps(&self.program, &mut self.maps, db)
    }

    /// Applies a single-tuple update by interpreting the matching trigger. As in the
    /// lowered executor, an update with multiplicity 0 is an explicit no-op: it fires
    /// nothing, checks nothing (not even arity) and leaves the work counters untouched.
    ///
    /// On error the update may be partially applied; use
    /// [`InterpretedExecutor::stage_update`] for all-or-nothing per-update semantics.
    pub fn apply(&mut self, update: &Update) -> Result<(), RuntimeError> {
        self.apply_logged(update, &mut None)
    }

    /// Stages a single-tuple update: applies it while logging pre-images. On `Err` the
    /// interpreter has already been rolled back bit-exactly — mirrors
    /// [`Executor::stage_update`](crate::executor::Executor::stage_update).
    pub fn stage_update(&mut self, update: &Update) -> Result<StagedBatch, RuntimeError> {
        let stats_before = self.stats;
        let mut undo = UndoLog::default();
        match self.apply_logged(update, &mut Some(&mut undo)) {
            Ok(()) => Ok(StagedBatch { undo, stats_before }),
            Err(e) => {
                rollback_maps(&mut self.maps, &undo);
                self.stats = stats_before;
                Err(e)
            }
        }
    }

    fn apply_logged(
        &mut self,
        update: &Update,
        undo: &mut Option<&mut UndoLog>,
    ) -> Result<(), RuntimeError> {
        if update.multiplicity == 0 {
            return Ok(());
        }
        let sign = if update.multiplicity >= 0 {
            Sign::Insert
        } else {
            Sign::Delete
        };
        let Some(trigger_index) = self
            .program
            .triggers
            .iter()
            .position(|t| t.relation == update.relation && t.sign == sign)
        else {
            return Ok(());
        };
        let trigger = &self.program.triggers[trigger_index];
        if trigger.params.len() != update.values.len() {
            return Err(RuntimeError::ArityMismatch {
                relation: update.relation.clone(),
                expected: trigger.params.len(),
                got: update.values.len(),
            });
        }
        let env: HashMap<String, Value> = trigger
            .params
            .iter()
            .cloned()
            .zip(update.values.iter().cloned())
            .collect();
        for _ in 0..update.multiplicity.unsigned_abs() {
            self.stats.updates += 1;
            for stmt_index in 0..self.program.triggers[trigger_index].statements.len() {
                let stmt = &self.program.triggers[trigger_index].statements[stmt_index];
                Self::execute_statement(
                    &mut self.maps,
                    &mut self.stats,
                    stmt,
                    &env,
                    Number::Int(1),
                    undo,
                )?;
            }
        }
        Ok(())
    }

    /// Applies a sequence of updates.
    ///
    /// **Not atomic:** updates are applied in order, and a failure leaves every update
    /// *before* the failing one applied. The error is wrapped in
    /// [`RuntimeError::AtUpdate`] carrying the failing update's index, exactly like the
    /// lowered [`Executor::apply_all`](crate::executor::Executor::apply_all).
    pub fn apply_all<'a>(
        &mut self,
        updates: impl IntoIterator<Item = &'a Update>,
    ) -> Result<(), RuntimeError> {
        for (index, u) in updates.into_iter().enumerate() {
            self.apply(u).map_err(|e| RuntimeError::AtUpdate {
                index,
                source: Box::new(e),
            })?;
        }
        Ok(())
    }

    /// Applies a normalized [`DeltaBatch`]: the reference counterpart of the lowered
    /// [`Executor::apply_batch`](crate::executor::Executor::apply_batch), maintaining
    /// the same semantics (consolidation, weighted firing for triggers whose delta is
    /// degree ≤ 1 in the updated relation, unit replay otherwise) and identical
    /// [`ExecStats`] accounting, so the two batch paths can be tested against each
    /// other exactly.
    ///
    /// **Atomic per view**, like the lowered path: this is
    /// [`stage_batch`](InterpretedExecutor::stage_batch) plus an immediate commit, so
    /// on `Err` tables and stats are bit-identical to before the call.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<(), RuntimeError> {
        let staged = self.stage_batch(batch)?;
        self.commit_staged(staged);
        Ok(())
    }

    /// Stages a batch: applies it while logging the pre-image of every write. On `Err`
    /// the rollback has already happened. The snapshot-and-restore equivalent of
    /// [`Executor::stage_batch`](crate::executor::Executor::stage_batch) — the
    /// interpreter writes per delta instead of buffering, so the undo log is its only
    /// route back to the pre-batch state.
    pub fn stage_batch(&mut self, batch: &DeltaBatch) -> Result<StagedBatch, RuntimeError> {
        let stats_before = self.stats;
        let mut undo = UndoLog::default();
        match self.apply_batch_logged(batch, &mut Some(&mut undo)) {
            Ok(()) => Ok(StagedBatch { undo, stats_before }),
            Err(e) => {
                rollback_maps(&mut self.maps, &undo);
                self.stats = stats_before;
                Err(e)
            }
        }
    }

    /// Makes a staged batch permanent by releasing its undo log.
    pub fn commit_staged(&mut self, staged: StagedBatch) {
        drop(staged);
    }

    /// Rolls a staged batch back bit-exactly (tables and [`ExecStats`]).
    pub fn abort_staged(&mut self, staged: StagedBatch) {
        let StagedBatch { undo, stats_before } = staged;
        rollback_maps(&mut self.maps, &undo);
        self.stats = stats_before;
    }

    /// The unlogged batch path, kept as the staging-overhead measurement baseline.
    ///
    /// **Not atomic:** a mid-group error leaves earlier groups (and the failing
    /// group's earlier deltas — the interpreter writes per delta) applied.
    pub fn apply_batch_direct(&mut self, batch: &DeltaBatch) -> Result<(), RuntimeError> {
        self.apply_batch_logged(batch, &mut None)
    }

    fn apply_batch_logged(
        &mut self,
        batch: &DeltaBatch,
        undo: &mut Option<&mut UndoLog>,
    ) -> Result<(), RuntimeError> {
        for group in batch.groups() {
            let sign = if group.is_insert() {
                Sign::Insert
            } else {
                Sign::Delete
            };
            let Some(trigger_index) = self
                .program
                .triggers
                .iter()
                .position(|t| t.relation == group.relation() && t.sign == sign)
            else {
                continue;
            };
            // Weighted firing reads no map the trigger writes, so immediate writes and
            // the lowered path's deferred ones land in identical final states.
            let weighted = self.program.triggers[trigger_index].supports_weighted_firing();
            for (values, weight) in group.deltas() {
                let trigger = &self.program.triggers[trigger_index];
                if trigger.params.len() != values.len() {
                    return Err(RuntimeError::ArityMismatch {
                        relation: group.relation().to_string(),
                        expected: trigger.params.len(),
                        got: values.len(),
                    });
                }
                let env: HashMap<String, Value> = trigger
                    .params
                    .iter()
                    .cloned()
                    .zip(values.iter().cloned())
                    .collect();
                let firings = if weighted { 1 } else { *weight };
                let scale = if weighted {
                    Number::Int(*weight)
                } else {
                    Number::Int(1)
                };
                for _ in 0..firings {
                    self.stats.updates += if weighted { *weight as u64 } else { 1 };
                    for stmt_index in 0..self.program.triggers[trigger_index].statements.len() {
                        let stmt = &self.program.triggers[trigger_index].statements[stmt_index];
                        Self::execute_statement(
                            &mut self.maps,
                            &mut self.stats,
                            stmt,
                            &env,
                            scale,
                            undo,
                        )?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Interprets one statement against `base_env`, writing `scale ×` its deltas
    /// (`scale` is 1 for single-tuple firings, the consolidated weight for the batch
    /// path's weighted firings).
    fn execute_statement(
        maps: &mut [S],
        stats: &mut ExecStats,
        stmt: &Statement,
        base_env: &HashMap<String, Value>,
        scale: Number,
        undo: &mut Option<&mut UndoLog>,
    ) -> Result<(), RuntimeError> {
        // The set of candidate bindings, each with the product accumulated so far.
        let mut envs: Vec<(HashMap<String, Value>, Number)> =
            vec![(base_env.clone(), Number::Int(1))];
        for factor in &stmt.factors {
            if envs.is_empty() {
                break;
            }
            match factor {
                RhsFactor::MapLookup { map, keys } => {
                    let storage = &maps[*map];
                    let mut next = Vec::new();
                    for (env, acc) in envs {
                        let mut bound_positions = Vec::new();
                        let mut bound_values = Vec::new();
                        let mut unbound_positions = Vec::new();
                        for (i, key_var) in keys.iter().enumerate() {
                            match env.get(key_var) {
                                Some(v) => {
                                    bound_positions.push(i);
                                    bound_values.push(v.clone());
                                }
                                None => unbound_positions.push(i),
                            }
                        }
                        if unbound_positions.is_empty() {
                            let value = storage.get(&bound_values);
                            if value.is_zero() {
                                continue;
                            }
                            stats.multiplications += 1;
                            next.push((env, acc.mul(&value)));
                        } else {
                            // Enumerate matches through the backend's visitor API (no
                            // materialized match list; see `ViewStorage::for_each_slice`).
                            storage.for_each_slice(
                                &bound_positions,
                                &bound_values,
                                |full_key, value| {
                                    let mut extended = env.clone();
                                    for &i in &unbound_positions {
                                        let var = &keys[i];
                                        let val = full_key[i].clone();
                                        match extended.get(var) {
                                            Some(existing) if *existing != val => return,
                                            _ => {
                                                extended.insert(var.clone(), val);
                                            }
                                        }
                                    }
                                    stats.multiplications += 1;
                                    stats.bindings_enumerated += 1;
                                    next.push((extended, acc.mul(&value)));
                                },
                            );
                        }
                    }
                    envs = next;
                }
                RhsFactor::Scalar(term) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for (env, acc) in envs {
                        let value = eval_scalar(term, &env)?;
                        let number = value
                            .as_number()
                            .ok_or_else(|| RuntimeError::NonNumericValue(term.to_string()))?;
                        if number.is_zero() {
                            continue;
                        }
                        stats.multiplications += 1;
                        next.push((env, acc.mul(&number)));
                    }
                    envs = next;
                }
                RhsFactor::Guard(op, lhs, rhs) => {
                    let mut next = Vec::with_capacity(envs.len());
                    for (env, acc) in envs {
                        let l = eval_scalar(lhs, &env)?;
                        let r = eval_scalar(rhs, &env)?;
                        if op.test(compare_values(&l, &r)) {
                            next.push((env, acc));
                        }
                    }
                    envs = next;
                }
            }
        }
        // Collect all writes first, then apply (a statement never reads its own writes).
        let mut writes: Vec<(Vec<Value>, Number)> = Vec::with_capacity(envs.len());
        for (env, acc) in envs {
            if acc.is_zero() {
                continue;
            }
            let mut key = Vec::with_capacity(stmt.target_keys.len());
            for var in &stmt.target_keys {
                key.push(
                    env.get(var)
                        .cloned()
                        .ok_or_else(|| RuntimeError::UnboundVariable(var.clone()))?,
                );
            }
            writes.push((key, stmt.coefficient.mul(&scale).mul(&acc)));
        }
        for (key, delta) in writes {
            stats.additions += 1;
            if let Some(undo) = undo {
                undo.push_once(stmt.target, &key, || maps[stmt.target].get(&key));
            }
            maps[stmt.target].add(key, delta);
        }
        Ok(())
    }
}

fn eval_scalar(term: &ScalarExpr, env: &HashMap<String, Value>) -> Result<Value, RuntimeError> {
    fn numeric(term: &ScalarExpr, env: &HashMap<String, Value>) -> Result<Number, RuntimeError> {
        let v = eval_scalar(term, env)?;
        v.as_number()
            .ok_or_else(|| RuntimeError::NonNumericValue(term.to_string()))
    }
    match term {
        ScalarExpr::Const(v) => Ok(v.clone()),
        ScalarExpr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| RuntimeError::UnboundVariable(x.clone())),
        ScalarExpr::Add(a, b) => Ok(Value::from(numeric(a, env)?.add(&numeric(b, env)?))),
        ScalarExpr::Mul(a, b) => Ok(Value::from(numeric(a, env)?.mul(&numeric(b, env)?))),
        ScalarExpr::Neg(a) => Ok(Value::from(numeric(a, env)?.mul(&Number::Int(-1)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;
    use dbring_compiler::compile;

    #[test]
    fn interpreter_maintains_the_example_1_2_trace() {
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let mut exec = InterpretedExecutor::new(compile(&catalog, &q).unwrap());
        let ins = |v: &str| Update::insert("R", vec![Value::str(v)]);
        let del = |v: &str| Update::delete("R", vec![Value::str(v)]);
        let trace = [
            (ins("c"), 1),
            (ins("c"), 4),
            (ins("d"), 5),
            (ins("c"), 10),
            (del("d"), 9),
            (ins("c"), 16),
            (del("c"), 9),
        ];
        for (update, expected) in trace {
            exec.apply(&update).unwrap();
            assert_eq!(exec.output_value(&[]), Number::Int(expected));
        }
        assert_eq!(exec.stats().updates, 7);
        exec.reset_stats();
        assert_eq!(exec.stats(), ExecStats::default());
        assert!(exec.total_entries() > 0);
        assert!(exec.program().statement_count() > 0);
        assert_eq!(exec.map(exec.program().output).len(), exec.output().len());
    }

    #[test]
    fn interpreter_batch_path_matches_the_lowered_batch_path_exactly() {
        let mut catalog = Database::new();
        catalog.declare("C", &["cid", "nation"]).unwrap();
        catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
        // One unit-replay query and one weighted (degree-1) query.
        let queries = [
            parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap(),
            dbring_agca::sql::parse_sql(
                "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
                &catalog,
            )
            .unwrap(),
        ];
        let updates: Vec<Update> = (0..20)
            .flat_map(|i| {
                [
                    Update::insert("C", vec![Value::int(i % 6), Value::int(i % 3)]),
                    Update::insert(
                        "Sales",
                        vec![Value::int(i % 4), Value::float(1.5), Value::int(i % 5)],
                    ),
                ]
            })
            .collect();
        let batch = dbring_relations::DeltaBatch::from_updates(&updates);
        for query in &queries {
            let program = compile(&catalog, query).unwrap();
            let mut interp = InterpretedExecutor::new(program.clone());
            interp.apply_batch(&batch).unwrap();
            let mut lowered = crate::executor::Executor::new(program.clone());
            lowered.apply_batch(&batch).unwrap();
            assert_eq!(interp.output_table(), lowered.output_table());
            assert_eq!(interp.total_entries(), lowered.total_entries());
            assert_eq!(interp.stats(), lowered.stats(), "on {}", query.name);
            // And the batch matches the per-update reference semantics.
            let mut per_tuple = InterpretedExecutor::new(program);
            per_tuple.apply_all(&updates).unwrap();
            assert_eq!(interp.output_table(), per_tuple.output_table());
        }
    }

    #[test]
    fn interpreter_no_ops_zero_multiplicity_and_indexes_apply_all_errors() {
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x))").unwrap();
        let mut exec = InterpretedExecutor::new(compile(&catalog, &q).unwrap());
        let mut zero = Update::insert("R", vec![Value::int(1)]);
        zero.multiplicity = 0;
        exec.apply(&zero).unwrap();
        assert_eq!(exec.stats(), ExecStats::default());
        let err = exec
            .apply_all(&[
                Update::insert("R", vec![Value::int(1)]),
                Update::insert("R", vec![]),
            ])
            .unwrap_err();
        assert!(matches!(&err, RuntimeError::AtUpdate { index: 1, source }
                if matches!(**source, RuntimeError::ArityMismatch { .. })));
        assert_eq!(exec.stats().updates, 1, "update 0 was already applied");
    }

    /// The interpreter's stage/commit/abort mirrors the lowered executor's: a failed
    /// batch (even one that wrote per delta before failing) rolls back bit-exactly,
    /// and stage+commit equals the direct path.
    #[test]
    fn interpreter_staging_rolls_back_failed_batches() {
        let mut catalog = Database::new();
        catalog.declare("C", &["cid", "nation"]).unwrap();
        let q = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        let mut exec = InterpretedExecutor::new(compile(&catalog, &q).unwrap());
        exec.apply(&Update::insert("C", vec![Value::int(1), Value::int(7)]))
            .unwrap();
        let stats = exec.stats();
        let table = exec.output_table();
        let failing = [
            Update::insert("C", vec![Value::int(2), Value::int(7)]),
            Update::insert("C", vec![Value::int(9)]), // arity error
        ];
        let err = exec
            .apply_batch(&DeltaBatch::from_updates(&failing))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
        assert_eq!(exec.output_table(), table);
        assert_eq!(exec.stats(), stats);
        // stage → abort is a no-op; stage → commit applies.
        let good_updates = [Update::insert("C", vec![Value::int(2), Value::int(7)])];
        let good = DeltaBatch::from_updates(&good_updates);
        let staged = exec.stage_batch(&good).unwrap();
        assert!(staged.logged_writes() > 0);
        exec.abort_staged(staged);
        assert_eq!(exec.output_table(), table);
        assert_eq!(exec.stats(), stats);
        let staged = exec
            .stage_update(&Update::insert("C", vec![Value::int(2), Value::int(7)]))
            .unwrap();
        exec.commit_staged(staged);
        assert_eq!(exec.output_value(&[Value::int(1)]), Number::Int(2));
    }

    #[test]
    fn interpreter_initializes_from_a_database_and_checks_arity() {
        let mut catalog = Database::new();
        catalog.declare("C", &["cid", "nation"]).unwrap();
        let q = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        let program = compile(&catalog, &q).unwrap();
        let mut db = catalog.clone();
        let updates: Vec<Update> = (0..10)
            .map(|i| {
                Update::insert(
                    "C",
                    vec![Value::int(i), Value::str(["FR", "DE"][(i % 2) as usize])],
                )
            })
            .collect();
        db.apply_all(&updates).unwrap();
        let mut streamed = InterpretedExecutor::new(program.clone());
        streamed.apply_all(&updates).unwrap();
        let mut initialized = InterpretedExecutor::new(program);
        initialized.initialize_from(&db).unwrap();
        assert_eq!(streamed.output_table(), initialized.output_table());
        // Irrelevant updates are ignored; wrong arity errors.
        streamed
            .apply(&Update::insert("Other", vec![Value::int(1)]))
            .unwrap();
        assert!(matches!(
            streamed.apply(&Update::insert("C", vec![Value::int(1)])),
            Err(RuntimeError::ArityMismatch { .. })
        ));
    }
}
