//! The object-safe engine interface a hosted view runs behind, and the by-value
//! engine factory.
//!
//! A ring-of-views engine (the `dbring::Ring` facade) hosts *many* standing views
//! over one update stream. The views are heterogeneous — different
//! compiled programs, different storage backends, potentially different executor
//! families — so the host cannot be generic over one concrete executor type the way a
//! single [`IncrementalView`] is. [`ViewEngine`] is the object-safe contract that makes
//! a compiled, runnable view a *value*: everything the host needs to drive maintenance
//! (per-update and batched application, initialization from a snapshot) and serve reads
//! (point lookups, tables, work counters, footprints, the program itself) — behind
//! `Box<dyn ViewEngine>`, cloneable and inspectable.
//!
//! [`boxed_engine`] / [`try_boxed_engine`] are the by-value factory: pick a
//! [`StorageBackend`] with an enum value instead of a turbofish and get back a boxed
//! lowered executor. [`boxed_engine_by_name`] resolves the same registry names as
//! [`strategy_by_name`](crate::strategy::strategy_by_name)
//! (`"recursive-ivm@ordered"`, `"recursive-ivm-interpreted"`, …) so experiment CLIs can
//! host any executor family behind the same interface.
//!
//! The difference from [`MaintenanceStrategy`](crate::strategy::MaintenanceStrategy):
//! a strategy is the *measurement* interface (it covers the database-retaining
//! baselines, erases errors to `String`, and exposes only results), while `ViewEngine`
//! is the *hosting* interface (typed [`RuntimeError`]s, normalized-batch application,
//! snapshot initialization, program access for code generation). The baselines are
//! deliberately not `ViewEngine`s — they retain the base database, which a ring
//! maintains once for all views.
//!
//! [`IncrementalView`]: ../../dbring/struct.IncrementalView.html

use std::any::Any;
use std::collections::BTreeMap;

use dbring_agca::eval::EvalError;
use dbring_algebra::Number;
use dbring_compiler::{Diagnostic, LowerError, TriggerProgram};
use dbring_relations::{Database, DeltaBatch, Update, Value};

use crate::executor::{ExecStats, Executor, RuntimeError, StagedBatch};
use crate::interp::InterpretedExecutor;
use crate::storage::{
    HashViewStorage, OrderedViewStorage, StorageBackend, StorageFootprint, ViewStorage,
};

/// The object-safe interface of one compiled, runnable view: what an engine host (a
/// ring of views, an experiment harness) needs to drive maintenance and serve reads,
/// independent of the concrete executor and storage backend behind it.
///
/// Implemented by both executor families over every storage backend; obtain boxed
/// instances from [`boxed_engine`] (backend by value) or [`boxed_engine_by_name`]
/// (registry names). `Box<dyn ViewEngine>` is `Clone`, so hosts composed of boxed
/// engines stay cheaply cloneable for experiments that fork a loaded state.
pub trait ViewEngine: std::fmt::Debug + Send {
    /// The engine's registry name (`"recursive-ivm"`, `"recursive-ivm@ordered"`,
    /// `"recursive-ivm-interpreted"`, …): the executor family, suffixed with
    /// `@<backend>` off the default backend.
    fn engine_name(&self) -> &'static str;

    /// The compiled trigger program this engine runs (inspectable, NC0C-generatable).
    fn program(&self) -> &TriggerProgram;

    /// Runs the static plan auditor over this engine's program: re-lowers it and
    /// returns every [`Diagnostic`] the analysis pass pipeline finds (empty means
    /// clean). Engines whose program no longer lowers report `DB000 LoweringFailed`
    /// rather than silently auditing clean. This is a cold-path introspection call —
    /// auditing re-runs lowering, so don't put it on a per-update path.
    fn audit(&self) -> Vec<Diagnostic> {
        dbring_compiler::audit_program(self.program())
    }

    /// Applies one single-tuple update. Updates to relations the program has no
    /// trigger for are ignored; zero-multiplicity updates are explicit no-ops.
    fn apply(&mut self, update: &Update) -> Result<(), RuntimeError>;

    /// Applies an already-normalized [`DeltaBatch`]: one dispatch per
    /// `(relation, sign)` group, weighted firing where the trigger admits it.
    /// Equivalent to applying the batch's source updates one by one; **atomic per
    /// view** — on `Err` the engine's tables and stats are bit-identical to before
    /// the call (this is [`stage_batch`](ViewEngine::stage_batch) plus an immediate
    /// commit).
    fn apply_batch(&mut self, batch: &DeltaBatch<'_>) -> Result<(), RuntimeError>;

    /// Stages an already-normalized batch: applies it while logging the pre-image of
    /// every write, returning the [`StagedBatch`] token the host later passes to
    /// [`commit_staged`](ViewEngine::commit_staged) or
    /// [`abort_staged`](ViewEngine::abort_staged). On `Err` the engine has already
    /// rolled itself back bit-exactly. Tokens are engine-specific: return one only to
    /// the engine that produced it.
    fn stage_batch(&mut self, batch: &DeltaBatch<'_>) -> Result<StagedBatch, RuntimeError>;

    /// Stages one single-tuple update — the per-update counterpart of
    /// [`stage_batch`](ViewEngine::stage_batch), with the same `Err` ⇒ rolled-back
    /// contract (covering partial |multiplicity| > 1 firings).
    fn stage_update(&mut self, update: &Update) -> Result<StagedBatch, RuntimeError>;

    /// Makes a staged batch permanent by releasing its undo log. Cannot fail.
    fn commit_staged(&mut self, staged: StagedBatch);

    /// Rolls a staged batch back: tables and stats return bit-exactly to the
    /// pre-stage state.
    fn abort_staged(&mut self, staged: StagedBatch);

    /// The unlogged batch path: [`apply_batch`](ViewEngine::apply_batch) without the
    /// pre-image log. **Not atomic on error** — kept for callers that own their own
    /// recovery and as the staging-overhead measurement baseline (`exp_faults`).
    fn apply_batch_direct(&mut self, batch: &DeltaBatch<'_>) -> Result<(), RuntimeError>;

    /// Loads every materialized view from a non-empty starting database by evaluating
    /// its defining query (the initialization step of Section 1.1). The database is
    /// not retained.
    fn initialize_from(&mut self, db: &Database) -> Result<(), EvalError>;

    /// The output value for one group key (zero if absent).
    fn output_value(&self, key: &[Value]) -> Number;

    /// The full output table, sorted by group key.
    fn output_table(&self) -> BTreeMap<Vec<Value>, Number>;

    /// Work counters accumulated so far.
    fn stats(&self) -> ExecStats;

    /// Resets the work counters.
    fn reset_stats(&mut self);

    /// Sets the engine's thread budget for *within-view* parallel work — today that
    /// is sharding large batched flushes across key ranges. `1` (every engine's
    /// initial state) disables it; engines without an internal parallel path ignore
    /// the hint. Hosts propagate their
    /// [`ParallelConfig`](crate::registry::ParallelConfig) here on registration.
    fn set_parallelism(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Total entries across the whole view hierarchy.
    fn total_entries(&self) -> usize;

    /// Entry/index-entry counts of the whole view hierarchy (the cross-backend
    /// memory proxy).
    fn storage_footprint(&self) -> StorageFootprint;

    /// Clones the engine behind the object interface (`Box<dyn ViewEngine>: Clone`
    /// is built on this).
    fn boxed_clone(&self) -> Box<dyn ViewEngine>;

    /// Upcast for callers that know the concrete engine type (e.g. a facade that
    /// always hosts lowered executors and wants the typed `&Executor<S>` back).
    fn as_any(&self) -> &dyn Any;

    /// Mutable upcast, see [`ViewEngine::as_any`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn ViewEngine> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// Implements [`ViewEngine`] for one executor family, generic over the storage
/// backend (any [`ViewStorage`], not just the in-tree ones); the engine name is the
/// family literal suffixed per [`ViewStorage::BACKEND`], spelled to match the strategy
/// registry's names exactly so the two registries can never disagree on naming.
macro_rules! impl_view_engine {
    ($family:ident, $hash_name:literal, $ordered_name:literal) => {
        impl<S: ViewStorage + Send + 'static> ViewEngine for $family<S> {
            fn engine_name(&self) -> &'static str {
                match S::BACKEND {
                    StorageBackend::Hash => $hash_name,
                    StorageBackend::Ordered => $ordered_name,
                }
            }

            fn program(&self) -> &TriggerProgram {
                self.program()
            }

            fn apply(&mut self, update: &Update) -> Result<(), RuntimeError> {
                self.apply(update)
            }

            fn apply_batch(&mut self, batch: &DeltaBatch<'_>) -> Result<(), RuntimeError> {
                self.apply_batch(batch)
            }

            fn stage_batch(&mut self, batch: &DeltaBatch<'_>) -> Result<StagedBatch, RuntimeError> {
                self.stage_batch(batch)
            }

            fn stage_update(&mut self, update: &Update) -> Result<StagedBatch, RuntimeError> {
                self.stage_update(update)
            }

            fn commit_staged(&mut self, staged: StagedBatch) {
                self.commit_staged(staged)
            }

            fn abort_staged(&mut self, staged: StagedBatch) {
                self.abort_staged(staged)
            }

            fn apply_batch_direct(&mut self, batch: &DeltaBatch<'_>) -> Result<(), RuntimeError> {
                self.apply_batch_direct(batch)
            }

            fn initialize_from(&mut self, db: &Database) -> Result<(), EvalError> {
                self.initialize_from(db)
            }

            fn output_value(&self, key: &[Value]) -> Number {
                self.output_value(key)
            }

            fn output_table(&self) -> BTreeMap<Vec<Value>, Number> {
                self.output_table()
            }

            fn stats(&self) -> ExecStats {
                self.stats()
            }

            fn reset_stats(&mut self) {
                self.reset_stats()
            }

            fn set_parallelism(&mut self, threads: usize) {
                self.set_parallelism(threads)
            }

            fn total_entries(&self) -> usize {
                self.total_entries()
            }

            fn storage_footprint(&self) -> StorageFootprint {
                self.storage_footprint()
            }

            fn boxed_clone(&self) -> Box<dyn ViewEngine> {
                Box::new(self.clone())
            }

            fn as_any(&self) -> &dyn Any {
                self
            }

            fn as_any_mut(&mut self) -> &mut dyn Any {
                self
            }
        }
    };
}

impl_view_engine!(Executor, "recursive-ivm", "recursive-ivm@ordered");
impl_view_engine!(
    InterpretedExecutor,
    "recursive-ivm-interpreted",
    "recursive-ivm-interpreted@ordered"
);

/// Builds a boxed lowered-executor engine on the given storage backend — backend
/// chosen **by value**, no turbofish. This is the constructor engine hosts use.
///
/// # Panics
/// Panics if the program does not lower (impossible for programs produced by
/// [`dbring_compiler::compile`](dbring_compiler::compile()), which validates); use [`try_boxed_engine`] for
/// hand-built programs that may not.
pub fn boxed_engine(program: TriggerProgram, backend: StorageBackend) -> Box<dyn ViewEngine> {
    try_boxed_engine(program, backend).expect("compiled trigger programs always lower")
}

/// Fallible [`boxed_engine`]: surfaces lowering problems as a [`LowerError`].
pub fn try_boxed_engine(
    program: TriggerProgram,
    backend: StorageBackend,
) -> Result<Box<dyn ViewEngine>, LowerError> {
    Ok(match backend {
        StorageBackend::Hash => Box::new(Executor::<HashViewStorage>::try_with_backend(program)?),
        StorageBackend::Ordered => {
            Box::new(Executor::<OrderedViewStorage>::try_with_backend(program)?)
        }
    })
}

/// Resolves a boxed engine by its registry name — the same names as
/// [`strategy_by_name`](crate::strategy::strategy_by_name): a family
/// (`"recursive-ivm"`, `"recursive-ivm-interpreted"`), optionally suffixed with
/// `@<backend>`. `None` for unknown families/backends (including the
/// database-retaining baselines, which are not hostable engines).
pub fn boxed_engine_by_name(name: &str, program: TriggerProgram) -> Option<Box<dyn ViewEngine>> {
    let (family, backend) = match name.split_once('@') {
        Some((family, backend)) => (family, StorageBackend::parse(backend)?),
        None => (name, StorageBackend::Hash),
    };
    match family {
        "recursive-ivm" => Some(boxed_engine(program, backend)),
        "recursive-ivm-interpreted" => Some(match backend {
            StorageBackend::Hash => Box::new(InterpretedExecutor::<HashViewStorage>::with_backend(
                program,
            )),
            StorageBackend::Ordered => Box::new(
                InterpretedExecutor::<OrderedViewStorage>::with_backend(program),
            ),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;
    use dbring_compiler::compile;

    fn sum_program() -> TriggerProgram {
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        compile(&catalog, &parse_query("q := Sum(R(x))").unwrap()).unwrap()
    }

    #[test]
    fn boxed_engines_run_and_report_on_every_backend() {
        for backend in StorageBackend::ALL {
            let mut engine = boxed_engine(sum_program(), backend);
            engine
                .apply(&Update::insert("R", vec![Value::int(3)]))
                .unwrap();
            let updates = [
                Update::insert("R", vec![Value::int(4)]),
                Update::insert("R", vec![Value::int(4)]),
                Update::delete("R", vec![Value::int(3)]),
            ];
            engine
                .apply_batch(&DeltaBatch::from_updates(&updates))
                .unwrap();
            assert_eq!(engine.output_value(&[]), Number::Int(2), "{backend}");
            assert_eq!(engine.output_table().len(), 1);
            assert!(engine.stats().updates >= 3);
            assert!(engine.total_entries() > 0);
            assert!(engine.storage_footprint().entries > 0);
            assert!(engine.program().triggers.len() >= 2);
            engine.reset_stats();
            assert_eq!(engine.stats(), ExecStats::default());
        }
    }

    #[test]
    fn boxed_engines_clone_independently() {
        let mut engine = boxed_engine(sum_program(), StorageBackend::Hash);
        engine
            .apply(&Update::insert("R", vec![Value::int(1)]))
            .unwrap();
        let mut fork = engine.clone();
        fork.apply(&Update::insert("R", vec![Value::int(2)]))
            .unwrap();
        assert_eq!(engine.output_value(&[]), Number::Int(1));
        assert_eq!(fork.output_value(&[]), Number::Int(2));
    }

    #[test]
    fn engine_names_match_the_strategy_registry() {
        for (name, expect) in [
            ("recursive-ivm", true),
            ("recursive-ivm@hash", true),
            ("recursive-ivm@ordered", true),
            ("recursive-ivm-interpreted", true),
            ("recursive-ivm-interpreted@ordered", true),
            ("recursive-ivm@mmap", false),
            ("classical-ivm", false),
            ("naive", false),
        ] {
            let engine = boxed_engine_by_name(name, sum_program());
            assert_eq!(engine.is_some(), expect, "{name}");
            if let Some(engine) = engine {
                let strategy =
                    crate::strategy::strategy_by_name(name, sum_program()).expect("both resolve");
                assert_eq!(engine.engine_name(), strategy.strategy_name(), "{name}");
            }
        }
    }

    #[test]
    fn initialization_through_the_object_interface() {
        let mut db = Database::new();
        db.declare("R", &["A"]).unwrap();
        db.insert("R", vec![Value::int(1)]).unwrap();
        db.insert("R", vec![Value::int(2)]).unwrap();
        let mut engine = boxed_engine(sum_program(), StorageBackend::Ordered);
        engine.initialize_from(&db).unwrap();
        assert_eq!(engine.output_value(&[]), Number::Int(2));
    }

    #[test]
    fn concrete_executor_recoverable_through_as_any() {
        let mut engine = boxed_engine(sum_program(), StorageBackend::Hash);
        engine
            .apply(&Update::insert("R", vec![Value::int(7)]))
            .unwrap();
        let typed = engine
            .as_any()
            .downcast_ref::<Executor<HashViewStorage>>()
            .expect("boxed_engine hosts a lowered executor");
        assert_eq!(typed.output_value(&[]), Number::Int(1));
        assert!(engine
            .as_any_mut()
            .downcast_mut::<Executor<OrderedViewStorage>>()
            .is_none());
    }

    #[test]
    fn engines_audit_through_the_object_interface() {
        let engine = boxed_engine(sum_program(), StorageBackend::Hash);
        assert!(
            !dbring_compiler::analysis::has_errors(&engine.audit()),
            "compiled programs lint clean of errors: {:?}",
            engine.audit()
        );
        // An engine wrapping a corrupted program reports DB000 instead of silence.
        let mut corrupted = sum_program();
        corrupted.triggers[0].statements[0].target = 99;
        let bad = InterpretedExecutor::<HashViewStorage>::with_backend(corrupted);
        let diags = ViewEngine::audit(&bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, dbring_compiler::DiagCode::LoweringFailed);
    }

    #[test]
    fn try_boxed_engine_surfaces_lowering_errors() {
        let mut program = sum_program();
        program.triggers[0].statements[0].target = 99;
        assert!(try_boxed_engine(program, StorageBackend::Hash).is_err());
        assert!(try_boxed_engine(sum_program(), StorageBackend::Ordered).is_ok());
    }
}
