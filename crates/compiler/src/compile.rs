//! The recursive IVM compilation algorithm (Section 7).
//!
//! `compile` turns an AGCA query into a [`TriggerProgram`]:
//!
//! 1. the query itself becomes the *output map*, keyed by its group-by variables;
//! 2. for every relation the map's definition mentions and for both signs, the delta of
//!    the definition is taken symbolically and normalized into monomials;
//! 3. each monomial becomes one trigger statement: variable-to-variable assignments
//!    introduced by `∆R` are eliminated by renaming, the remaining factors are split into
//!    connected components (Example 1.3), database-dependent components are materialized
//!    as *new maps* — compiled recursively by the same procedure — and database-free
//!    factors become scalar terms and comparison guards of the statement;
//! 4. recursion bottoms out because every materialized component has strictly smaller
//!    degree than its parent (Theorem 6.4).
//!
//! Structurally identical auxiliary maps are deduplicated (after canonicalizing their key
//! variable names), and each trigger's statements are ordered by decreasing degree of the
//! target map so that every map is updated from the *pre-update* state of the maps it
//! reads, exactly as Equation (1) requires.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use dbring_relations::Database;

use dbring_agca::ast::{CmpOp, Expr, Query};
use dbring_agca::degree::degree;
use dbring_agca::factorize::{eliminate_assignments, eliminate_equalities, factor_groups};
use dbring_agca::normalize::Monomial;
use dbring_agca::safety::{check_query_safety, SafetyError};
use dbring_delta::{delta_normalized, Sign, UpdateEvent};

use crate::ir::{
    scalar_from_expr, IrError, MapDef, MapId, RhsFactor, ScalarExpr, Statement, Trigger,
    TriggerProgram,
};

/// Errors raised by the compiler.
#[derive(Clone, Debug)]
pub enum CompileError {
    /// The query contains an aggregate or relational atom inside a comparison; such
    /// conditions are not *simple* and fall outside the class covered by Theorem 6.4.
    NestedAggregateCondition,
    /// The query references a relation that the catalog does not declare.
    UnknownRelation(String),
    /// A relational atom's variable count does not match the relation's declared arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Number of variables in the offending atom.
        got: usize,
    },
    /// The query is not range-restricted.
    Unsafe(SafetyError),
    /// A construct the compiler does not handle (the reference evaluator still does).
    Unsupported(String),
    /// The generated program failed structural validation (an internal invariant
    /// violation; should not happen for accepted inputs).
    Internal(IrError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::NestedAggregateCondition => {
                write!(f, "conditions containing aggregates or relations are not supported by the compiler")
            }
            CompileError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            CompileError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "atom {relation} uses {got} variables but the relation has arity {expected}"
            ),
            CompileError::Unsafe(e) => write!(f, "query is not range-restricted: {e}"),
            CompileError::Unsupported(what) => write!(f, "unsupported construct: {what}"),
            CompileError::Internal(e) => {
                write!(f, "internal error: generated program is ill-formed: {e}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles a query against a catalog (a [`Database`] whose declared relations provide the
/// column names; contents are ignored) into a trigger program.
pub fn compile(catalog: &Database, query: &Query) -> Result<TriggerProgram, CompileError> {
    if query.expr.has_nested_aggregate_condition() {
        return Err(CompileError::NestedAggregateCondition);
    }
    check_atom_arities(&query.expr, catalog)?;
    check_query_safety(query).map_err(CompileError::Unsafe)?;

    let mut compiler = Compiler {
        catalog,
        maps: Vec::new(),
        triggers: BTreeMap::new(),
        cache: HashMap::new(),
    };
    let output = compiler.compile_map(
        query.name.clone(),
        query.expr.clone(),
        query.group_by.clone(),
    )?;

    let maps = compiler.maps;
    let mut triggers: Vec<Trigger> = compiler.triggers.into_values().collect();
    for trigger in &mut triggers {
        // Update higher-degree maps first: a ∆^j view is refreshed from the *old* value of
        // the ∆^(j+1) views it reads (Equation (1) processed in order of increasing j).
        trigger
            .statements
            .sort_by_key(|s| (std::cmp::Reverse(maps[s.target].degree), s.target));
    }
    let program = TriggerProgram {
        maps,
        triggers,
        output,
    };
    program.validate().map_err(CompileError::Internal)?;
    Ok(program)
}

fn check_atom_arities(expr: &Expr, catalog: &Database) -> Result<(), CompileError> {
    match expr {
        Expr::Rel(name, vars) => {
            let columns = catalog
                .columns(name)
                .ok_or_else(|| CompileError::UnknownRelation(name.clone()))?;
            if columns.len() != vars.len() {
                return Err(CompileError::ArityMismatch {
                    relation: name.clone(),
                    expected: columns.len(),
                    got: vars.len(),
                });
            }
            Ok(())
        }
        Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Cmp(_, a, b) => {
            check_atom_arities(a, catalog)?;
            check_atom_arities(b, catalog)
        }
        Expr::Neg(a) | Expr::Sum(a) | Expr::Assign(_, a) => check_atom_arities(a, catalog),
        Expr::Const(_) | Expr::Var(_) => Ok(()),
    }
}

struct Compiler<'a> {
    catalog: &'a Database,
    maps: Vec<MapDef>,
    /// Keyed by (relation, is-insert) so triggers merge across maps.
    triggers: BTreeMap<(String, bool), Trigger>,
    /// Structural deduplication of auxiliary maps: (canonical definition text, keys) → id.
    cache: HashMap<(String, Vec<String>), MapId>,
}

impl Compiler<'_> {
    /// The canonical trigger parameter names for a relation: `@<relation>_<column>`.
    /// The `@` prefix cannot be produced by the parsers, so parameters never collide with
    /// query variables.
    fn trigger_params(&self, relation: &str) -> Vec<String> {
        self.catalog
            .columns(relation)
            .expect("relation existence checked before")
            .iter()
            .map(|c| format!("@{relation}_{c}"))
            .collect()
    }

    fn compile_map(
        &mut self,
        name: String,
        definition: Expr,
        key_vars: Vec<String>,
    ) -> Result<MapId, CompileError> {
        let cache_key = (definition.to_string(), key_vars.clone());
        if let Some(id) = self.cache.get(&cache_key) {
            return Ok(*id);
        }
        let id = self.maps.len();
        self.maps.push(MapDef {
            id,
            name,
            key_vars: key_vars.clone(),
            degree: degree(&definition),
            definition: definition.clone(),
        });
        self.cache.insert(cache_key, id);

        for relation in definition.relations() {
            if self.catalog.columns(&relation).is_none() {
                return Err(CompileError::UnknownRelation(relation));
            }
            for sign in [Sign::Insert, Sign::Delete] {
                let params = self.trigger_params(&relation);
                let event = UpdateEvent {
                    relation: relation.clone(),
                    sign,
                    params: params.clone(),
                };
                let poly = delta_normalized(&definition, &event);
                let mut statements = Vec::new();
                for monomial in &poly.monomials {
                    if let Some(statement) =
                        self.compile_statement(id, &key_vars, &params, monomial)?
                    {
                        statements.push(statement);
                    }
                }
                if statements.is_empty() {
                    continue;
                }
                let entry = self
                    .triggers
                    .entry((relation.clone(), sign == Sign::Insert))
                    .or_insert_with(|| Trigger {
                        relation: relation.clone(),
                        sign,
                        params: params.clone(),
                        statements: Vec::new(),
                    });
                entry.statements.extend(statements);
            }
        }
        Ok(id)
    }

    /// Compiles one delta monomial into a trigger statement, or `None` when the statement
    /// can be proven dead (a guard that can never hold).
    fn compile_statement(
        &mut self,
        target: MapId,
        target_keys: &[String],
        params: &[String],
        monomial: &Monomial,
    ) -> Result<Option<Statement>, CompileError> {
        let outer_bound: BTreeSet<String> =
            params.iter().chain(target_keys.iter()).cloned().collect();
        // 1. Flatten the outer Sum wrapper(s): the statement semantics already sums over
        //    all loop-variable bindings, so `Sum(f₁ * … * f_k)` contributes its factors
        //    directly (provided its variables do not collide with other factors').
        let factors = flatten_sums(&monomial.factors, &outer_bound);
        // 2. Variable elimination (Section 5): first the variable-to-variable assignments
        //    introduced by ∆R, then equality conditions between variables — either may pin
        //    a target key or a join variable to a trigger parameter.
        let (factors, assign_renaming) = eliminate_assignments(&factors, &BTreeSet::new());
        let params_set: BTreeSet<String> = params.iter().cloned().collect();
        let (factors, eq_renaming) = eliminate_equalities(&factors, &params_set);
        let apply_renaming = |k: &String| -> String {
            let once = assign_renaming.get(k).cloned().unwrap_or_else(|| k.clone());
            eq_renaming.get(&once).cloned().unwrap_or(once)
        };
        let target_key_syms: Vec<String> = target_keys.iter().map(apply_renaming).collect();
        // 3. The externally-bound variables of this statement: trigger parameters plus the
        //    (possibly renamed) target keys.
        let mut bound: BTreeSet<String> = params.iter().cloned().collect();
        bound.extend(target_key_syms.iter().cloned());
        // 4. Split into connected components and translate each.
        let mut lookups: Vec<RhsFactor> = Vec::new();
        let mut scalars: Vec<RhsFactor> = Vec::new();
        for group in factor_groups(&factors, &bound) {
            let has_relations = group.iter().any(|f| !f.relations().is_empty());
            if has_relations {
                let (map, keys) = self.materialize_component(&group, &bound)?;
                lookups.push(RhsFactor::MapLookup { map, keys });
                continue;
            }
            for factor in group {
                match factor {
                    Expr::Cmp(op, lhs, rhs) => {
                        let l =
                            scalar_from_expr(&lhs).ok_or(CompileError::NestedAggregateCondition)?;
                        let r =
                            scalar_from_expr(&rhs).ok_or(CompileError::NestedAggregateCondition)?;
                        // Guards over syntactically identical operands are decided at
                        // compile time: reflexive comparisons are dropped (always 1) and
                        // irreflexive ones kill the whole statement (always 0).
                        if l == r {
                            match op {
                                CmpOp::Eq | CmpOp::Le | CmpOp::Ge => continue,
                                CmpOp::Ne | CmpOp::Lt | CmpOp::Gt => return Ok(None),
                            }
                        }
                        scalars.push(RhsFactor::Guard(op, l, r));
                    }
                    // A leftover assignment (to a constant or a complex term) acts as an
                    // equality guard on an already-bound variable.
                    Expr::Assign(x, term) => {
                        let t = scalar_from_expr(&term).ok_or_else(|| {
                            CompileError::Unsupported(format!(
                                "assignment to a non-scalar term: ({x} := {term})"
                            ))
                        })?;
                        scalars.push(RhsFactor::Guard(CmpOp::Eq, ScalarExpr::Var(x), t));
                    }
                    other => match scalar_from_expr(&other) {
                        Some(s) => scalars.push(RhsFactor::Scalar(s)),
                        None => {
                            return Err(CompileError::Unsupported(format!(
                                "database-free factor {other} cannot be turned into a scalar"
                            )))
                        }
                    },
                }
            }
        }
        let mut out_factors = lookups;
        out_factors.append(&mut scalars);
        // Range-restriction of the generated statement: every loop variable (a variable
        // that is not a trigger parameter) must be enumerable from a map lookup. A target
        // key constrained only by an inequality against the update (e.g. a view keyed by a
        // running threshold) would require initializing entries over the whole active
        // domain on first access — a refinement the compiler does not implement; such
        // queries are still supported by the reference evaluator and the classical-IVM
        // baseline.
        let lookup_bound: BTreeSet<String> = out_factors
            .iter()
            .filter_map(|f| match f {
                RhsFactor::MapLookup { keys, .. } => Some(keys.iter().cloned()),
                _ => None,
            })
            .flatten()
            .collect();
        let params_or_lookups = |v: &String| params.contains(v) || lookup_bound.contains(v);
        for var in target_key_syms.iter() {
            if !params_or_lookups(var) {
                return Err(CompileError::Unsupported(format!(
                    "view key {var} is not determined by the update parameters or by a \
                     materialized lookup (active-domain initialization would be required)"
                )));
            }
        }
        for factor in &out_factors {
            for var in factor.variables() {
                if !params_or_lookups(&var) {
                    return Err(CompileError::Unsupported(format!(
                        "variable {var} in a trigger statement is not bound by the update \
                         parameters or by a materialized lookup"
                    )));
                }
            }
        }
        Ok(Some(Statement {
            target,
            target_keys: target_key_syms,
            coefficient: monomial.coefficient,
            factors: out_factors,
        }))
    }

    /// Materializes one database-dependent component of a delta monomial as an auxiliary
    /// map (reusing an existing structurally-identical map if possible) and returns the
    /// map id plus the caller-side key variables.
    fn materialize_component(
        &mut self,
        group: &[Expr],
        bound: &BTreeSet<String>,
    ) -> Result<(MapId, Vec<String>), CompileError> {
        let vars: BTreeSet<String> = group.iter().flat_map(|f| f.variables()).collect();
        // The caller-side keys: the component's variables that are externally bound (trigger
        // parameters or target keys). Sorted order keeps map identities deterministic.
        let call_keys: Vec<String> = vars.intersection(bound).cloned().collect();
        // Canonicalize the key names inside the definition so that (a) structurally equal
        // views deduplicate regardless of which parameters they were reached through, and
        // (b) no trigger parameter name survives inside a map definition, which would
        // otherwise be captured by a later delta with respect to the same relation.
        let renaming: BTreeMap<String, String> = call_keys
            .iter()
            .enumerate()
            .map(|(i, v)| (v.clone(), format!("$k{i}")))
            .collect();
        let canonical_keys: Vec<String> = (0..call_keys.len()).map(|i| format!("$k{i}")).collect();
        let definition = Expr::product(group.iter().map(|f| f.rename_variables(&renaming)));
        let name = format!("m{}", self.maps.len());
        let id = self.compile_map(name, definition, canonical_keys)?;
        Ok((id, call_keys))
    }
}

/// Splits the `Mul` chain of an expression into its factors.
fn product_factors(expr: &Expr) -> Vec<Expr> {
    match expr {
        Expr::Mul(a, b) => {
            let mut out = product_factors(a);
            out.extend(product_factors(b));
            out
        }
        other => vec![other.clone()],
    }
}

/// Flattens top-level `Sum(…)` factors of a monomial into their inner factors whenever the
/// inner variables cannot collide with the other factors' free variables (the statement
/// semantics performs the summation anyway). Factors left un-flattened are kept atomic.
fn flatten_sums(factors: &[Expr], bound: &BTreeSet<String>) -> Vec<Expr> {
    let mut out = Vec::new();
    for (i, factor) in factors.iter().enumerate() {
        if let Expr::Sum(inner) = factor {
            let other_vars: BTreeSet<String> = factors
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .flat_map(|(_, f)| f.variables())
                .filter(|v| !bound.contains(v))
                .collect();
            let inner_vars = inner.variables();
            if inner_vars.is_disjoint(&other_vars) {
                out.extend(product_factors(inner));
                continue;
            }
        }
        out.push(factor.clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_query;
    use dbring_agca::sql::parse_sql;

    fn customer_catalog() -> Database {
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db
    }

    fn rst_catalog() -> Database {
        let mut db = Database::new();
        db.declare("R", &["A", "B"]).unwrap();
        db.declare("S", &["C", "D"]).unwrap();
        db.declare("T", &["E", "F"]).unwrap();
        db
    }

    #[test]
    fn compiles_example_6_2_customer_query() {
        let catalog = customer_catalog();
        let q = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        let program = compile(&catalog, &q).unwrap();
        program.validate().unwrap();
        // Output map plus the two auxiliary views: per-nation count and the (cid, nation)
        // multiplicity map.
        assert_eq!(program.maps.len(), 3);
        assert_eq!(program.output_map().key_vars, vec!["c"]);
        assert_eq!(program.output_map().degree, 2);
        // Two triggers (insert and delete on C).
        assert_eq!(program.triggers.len(), 2);
        let insert = program.trigger("C", Sign::Insert).unwrap();
        assert_eq!(insert.params, vec!["@C_cid", "@C_nation"]);
        // Three statements maintain q (one per product-rule term), plus one per auxiliary
        // view.
        let q_statements: Vec<_> = insert
            .statements
            .iter()
            .filter(|s| s.target == program.output)
            .collect();
        assert_eq!(q_statements.len(), 3);
        assert_eq!(insert.statements.len(), 5);
        // The statements for q come first (highest degree), so they read pre-update values.
        assert_eq!(insert.statements[0].target, program.output);
        assert_eq!(insert.statements[1].target, program.output);
        assert_eq!(insert.statements[2].target, program.output);
        // One of the q statements has a loop variable (the "for all customers of the
        // inserted nation" term).
        assert!(q_statements
            .iter()
            .any(|s| !s.loop_variables(&insert.params).is_empty()));
        // The other two q statements are constant-work: a single lookup keyed by the
        // parameters, or no factors at all (the "+1" term).
        assert!(q_statements.iter().any(|s| s.factors.is_empty()));
        assert!(q_statements.iter().any(|s| matches!(
            s.factors.as_slice(),
            [RhsFactor::MapLookup { keys, .. }] if keys == &vec!["@C_nation".to_string()]
        )));
    }

    #[test]
    fn compiles_example_1_3_with_factorized_deltas() {
        let catalog = rst_catalog();
        let q = parse_sql(
            "SELECT SUM(A * F) FROM R, S, T WHERE B = C AND D = E",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &q).unwrap();
        program.validate().unwrap();
        // The +S trigger must update the output with a product of two independent
        // single-key lookups — the paper's (∆Q)₁(c) * (∆Q)₂(d).
        let on_s = program.trigger("S", Sign::Insert).unwrap();
        let q_stmt = on_s
            .statements
            .iter()
            .find(|s| s.target == program.output)
            .unwrap();
        let lookups: Vec<_> = q_stmt
            .factors
            .iter()
            .filter(|f| matches!(f, RhsFactor::MapLookup { .. }))
            .collect();
        assert_eq!(
            lookups.len(),
            2,
            "delta wrt S must factorize into two views"
        );
        for lookup in &lookups {
            if let RhsFactor::MapLookup { map, keys } = lookup {
                assert_eq!(keys.len(), 1, "each factor view is keyed by one parameter");
                assert_eq!(program.maps[*map].key_vars.len(), 1);
            }
        }
        // Each factor view has degree 1 (a single relation), so its own maintenance is a
        // constant-time statement.
        let aux_degrees: Vec<usize> = program.maps.iter().map(|m| m.degree).collect();
        assert!(aux_degrees.iter().filter(|&&d| d == 1).count() >= 2);
    }

    #[test]
    fn insert_and_delete_triggers_share_auxiliary_maps() {
        let catalog = customer_catalog();
        let q = parse_query("q[c] := Sum(C(c, n) * C(c2, n))").unwrap();
        let program = compile(&catalog, &q).unwrap();
        let ins = program.trigger("C", Sign::Insert).unwrap();
        let del = program.trigger("C", Sign::Delete).unwrap();
        // Deletion uses the same auxiliary maps with flipped coefficients, not new maps.
        assert_eq!(program.maps.len(), 3);
        assert_eq!(ins.statements.len(), del.statements.len());
        // Per-view statements (degree-1 targets) flip sign exactly.
        for (i, d) in ins.statements.iter().zip(&del.statements) {
            if program.maps[i.target].degree == 1 {
                assert_eq!(d.target, i.target);
                assert_eq!(
                    d.coefficient.as_i64().unwrap(),
                    -i.coefficient.as_i64().unwrap()
                );
            }
        }
        // The output-map statements are the paper's ∆Q = ±(2·count) + 1: two lookup terms
        // that flip sign and the constant +1 term (from ∆C·∆C) that does not.
        let q_coeffs = |t: &Trigger| -> Vec<i64> {
            t.statements
                .iter()
                .filter(|s| s.target == program.output)
                .map(|s| s.coefficient.as_i64().unwrap())
                .collect()
        };
        assert_eq!(q_coeffs(ins).iter().sum::<i64>(), 3);
        assert_eq!(q_coeffs(del).iter().sum::<i64>(), -1);
    }

    #[test]
    fn scalar_self_join_count_compiles_to_the_paper_trigger() {
        // Example 1.2: q = SELECT count(*) FROM R r1, R r2 WHERE r1.A = r2.A.
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let q = parse_query("q := Sum(R(x) * R(y) * (x = y))").unwrap();
        let program = compile(&catalog, &q).unwrap();
        program.validate().unwrap();
        // Maps: q itself plus the per-value multiplicity view of R.
        assert_eq!(program.maps.len(), 2);
        let insert = program.trigger("R", Sign::Insert).unwrap();
        // ∆q = 1 + 2 * count(R where A = a): constant-work statements only, no loops.
        for stmt in &insert.statements {
            assert!(stmt.loop_variables(&insert.params).is_empty());
        }
        let q_stmts: Vec<_> = insert
            .statements
            .iter()
            .filter(|s| s.target == program.output)
            .collect();
        let coeff_sum: i64 = q_stmts
            .iter()
            .map(|s| s.coefficient.as_i64().unwrap())
            .sum();
        // +1 (the ∆R*∆R term) + 1 + 1 (the two cross terms) = 3 statements; their
        // coefficients are 1 each and two of them carry a lookup.
        assert_eq!(q_stmts.len(), 3);
        assert_eq!(coeff_sum, 3);
        let with_lookup = q_stmts
            .iter()
            .filter(|s| {
                s.factors
                    .iter()
                    .any(|f| matches!(f, RhsFactor::MapLookup { .. }))
            })
            .count();
        assert_eq!(with_lookup, 2);
    }

    #[test]
    fn group_by_sql_query_compiles_and_validates() {
        let catalog = customer_catalog();
        let q = parse_sql(
            "SELECT C1.cid, SUM(1) FROM C C1, C C2 WHERE C1.nation = C2.nation GROUP BY C1.cid",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &q).unwrap();
        program.validate().unwrap();
        assert_eq!(program.output_map().key_vars, vec!["C1.cid"]);
        assert_eq!(program.maps.len(), 3);
    }

    #[test]
    fn value_aggregation_keeps_scalar_terms() {
        let mut catalog = Database::new();
        catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
        let q = parse_sql(
            "SELECT cust, SUM(price * qty) FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &q).unwrap();
        program.validate().unwrap();
        // Degree-1 query: a single map, and the insert trigger multiplies the two
        // parameters together.
        assert_eq!(program.maps.len(), 1);
        let insert = program.trigger("Sales", Sign::Insert).unwrap();
        assert_eq!(insert.statements.len(), 1);
        let stmt = &insert.statements[0];
        assert_eq!(stmt.target_keys, vec!["@Sales_cust"]);
        assert!(stmt
            .factors
            .iter()
            .any(|f| matches!(f, RhsFactor::Scalar(_))));
        // Deletion negates.
        let delete = program.trigger("Sales", Sign::Delete).unwrap();
        assert_eq!(
            delete.statements[0].coefficient.as_i64().unwrap(),
            -stmt.coefficient.as_i64().unwrap()
        );
    }

    #[test]
    fn conditions_against_constants_become_guards() {
        let catalog = customer_catalog();
        let q = parse_query("q := Sum(C(c, n) * (n >= 10) * n)").unwrap();
        let program = compile(&catalog, &q).unwrap();
        program.validate().unwrap();
        let insert = program.trigger("C", Sign::Insert).unwrap();
        let stmt = &insert.statements[0];
        assert!(stmt
            .factors
            .iter()
            .any(|f| matches!(f, RhsFactor::Guard(CmpOp::Ge, _, _))));
        assert!(stmt
            .factors
            .iter()
            .any(|f| matches!(f, RhsFactor::Scalar(ScalarExpr::Var(v)) if v == "@C_nation")));
    }

    #[test]
    fn error_cases() {
        let catalog = customer_catalog();
        // Nested aggregate in a condition.
        let nested = parse_query("q := Sum(C(c, n) * (Sum(C(c2, n2) * n2) > 5))").unwrap();
        assert!(matches!(
            compile(&catalog, &nested),
            Err(CompileError::NestedAggregateCondition)
        ));
        // Unknown relation.
        let unknown = parse_query("q := Sum(Z(x))").unwrap();
        assert!(matches!(
            compile(&catalog, &unknown),
            Err(CompileError::UnknownRelation(_))
        ));
        // Arity mismatch.
        let arity = parse_query("q := Sum(C(x))").unwrap();
        assert!(matches!(
            compile(&catalog, &arity),
            Err(CompileError::ArityMismatch { .. })
        ));
        // Unsafe query (variable never bound).
        let unsafe_q = parse_query("q := Sum(C(c, n) * z)").unwrap();
        assert!(matches!(
            compile(&catalog, &unsafe_q),
            Err(CompileError::Unsafe(_))
        ));
        // Error messages render.
        assert!(CompileError::UnknownRelation("Z".into())
            .to_string()
            .contains("Z"));
        assert!(CompileError::NestedAggregateCondition
            .to_string()
            .contains("conditions"));
    }

    #[test]
    fn degree_one_queries_need_no_auxiliary_maps() {
        let catalog = customer_catalog();
        let q = parse_query("total[n] := Sum(C(c, n))").unwrap();
        let program = compile(&catalog, &q).unwrap();
        assert_eq!(program.maps.len(), 1);
        let insert = program.trigger("C", Sign::Insert).unwrap();
        assert_eq!(insert.statements.len(), 1);
        assert_eq!(insert.statements[0].target_keys, vec!["@C_nation"]);
        assert!(insert.statements[0].factors.is_empty());
        assert_eq!(insert.statements[0].coefficient.as_i64(), Some(1));
    }

    #[test]
    fn three_level_hierarchy_for_a_degree_three_query() {
        let catalog = rst_catalog();
        let q = parse_sql(
            "SELECT SUM(A * F) FROM R, S, T WHERE B = C AND D = E",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &q).unwrap();
        // Degrees present: 3 (the query), 2 (pair views), 1 (single-relation views).
        let mut degrees: Vec<usize> = program.maps.iter().map(|m| m.degree).collect();
        degrees.sort_unstable();
        assert_eq!(*degrees.first().unwrap(), 1);
        assert_eq!(*degrees.last().unwrap(), 3);
        assert!(degrees.contains(&2));
        // All six triggers exist.
        assert_eq!(program.triggers.len(), 6);
        // Every statement's lookups have strictly smaller degree than the target.
        for trigger in &program.triggers {
            for stmt in &trigger.statements {
                for factor in &stmt.factors {
                    if let RhsFactor::MapLookup { map, .. } = factor {
                        assert!(
                            program.maps[*map].degree < program.maps[stmt.target].degree,
                            "lookups must reference strictly lower-degree views"
                        );
                    }
                }
            }
        }
    }
}
