//! The NC0C trigger-program intermediate representation.
//!
//! A compiled program consists of *map definitions* (the materialized views: the query
//! itself plus the auxiliary views produced by recursive delta materialization) and
//! *triggers* (one per relation and update sign). A trigger's statements are single
//! monomials `m[k⃗] += c · f₁ · f₂ · …` whose factors are map lookups, scalar terms over
//! the trigger parameters and loop variables, and comparison guards. Statements never
//! mention base relations and never contain joins or aggregation operators — evaluating
//! one statement touches a constant number of maps per maintained value.

use std::collections::BTreeSet;
use std::fmt;

use dbring_algebra::Number;
use dbring_delta::Sign;
use dbring_relations::Value;
use serde::{Deserialize, Serialize};

use dbring_agca::ast::{CmpOp, Expr};

/// Identifier of a materialized map within a [`TriggerProgram`].
pub type MapId = usize;

/// One materialized view: the aggregate of `definition` grouped by `key_vars`.
///
/// Semantically, `map[v⃗] = Σ_{other vars} [[definition]]` — i.e. the map stores, for every
/// valuation of the key variables, the total multiplicity (or aggregate value) of the
/// definition's result restricted to that valuation. This is also exactly how maps are
/// initialized on a non-empty starting database.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MapDef {
    /// The map's identifier (its index in [`TriggerProgram::maps`]).
    pub id: MapId,
    /// Human-readable name (`q` for the output map, `m1`, `m2`, … for auxiliary views).
    pub name: String,
    /// The key variables, in key order.
    pub key_vars: Vec<String>,
    /// The AGCA expression this map materializes.
    pub definition: Expr,
    /// The polynomial degree of the definition (used to order trigger statements).
    pub degree: usize,
}

/// A scalar term over trigger parameters, loop variables and constants.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum ScalarExpr {
    /// A constant value.
    Const(Value),
    /// A trigger parameter or loop variable.
    Var(String),
    /// Addition.
    Add(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Multiplication.
    Mul(Box<ScalarExpr>, Box<ScalarExpr>),
    /// Negation.
    Neg(Box<ScalarExpr>),
}

impl ScalarExpr {
    /// The variables referenced by the term.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect(&mut out);
        out
    }

    fn collect(&self, out: &mut BTreeSet<String>) {
        match self {
            ScalarExpr::Const(_) => {}
            ScalarExpr::Var(v) => {
                out.insert(v.clone());
            }
            ScalarExpr::Add(a, b) | ScalarExpr::Mul(a, b) => {
                a.collect(out);
                b.collect(out);
            }
            ScalarExpr::Neg(a) => a.collect(out),
        }
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Const(v) => write!(f, "{v}"),
            ScalarExpr::Var(x) => write!(f, "{x}"),
            ScalarExpr::Add(a, b) => write!(f, "({a} + {b})"),
            ScalarExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            ScalarExpr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// One multiplicative factor of a trigger statement.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum RhsFactor {
    /// A lookup `m[k⃗]` into another materialized map. Keys are variable names (trigger
    /// parameters or loop variables), one per key of the target map.
    MapLookup {
        /// The looked-up map.
        map: MapId,
        /// The key variables, in the map's key order.
        keys: Vec<String>,
    },
    /// A numeric scalar term (multiplied into the delta).
    Scalar(ScalarExpr),
    /// A comparison guard contributing factor 1 (true) or 0 (false).
    Guard(CmpOp, ScalarExpr, ScalarExpr),
}

impl RhsFactor {
    /// The variables referenced by this factor.
    pub fn variables(&self) -> BTreeSet<String> {
        match self {
            RhsFactor::MapLookup { keys, .. } => keys.iter().cloned().collect(),
            RhsFactor::Scalar(s) => s.variables(),
            RhsFactor::Guard(_, a, b) => {
                let mut v = a.variables();
                v.extend(b.variables());
                v
            }
        }
    }
}

impl fmt::Display for RhsFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RhsFactor::MapLookup { map, keys } => write!(f, "m{map}[{}]", keys.join(", ")),
            RhsFactor::Scalar(s) => write!(f, "{s}"),
            RhsFactor::Guard(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

/// One trigger statement: `target[target_keys] += coefficient · Π factors`, summed over
/// all bindings of its loop variables.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Statement {
    /// The map being updated.
    pub target: MapId,
    /// The target key variables (trigger parameters or loop variables), one per key of the
    /// target map.
    pub target_keys: Vec<String>,
    /// The constant coefficient of the monomial.
    pub coefficient: Number,
    /// The multiplicative factors. Map lookups come first; scalar terms and guards follow.
    pub factors: Vec<RhsFactor>,
}

impl Statement {
    /// All variables referenced by the statement (target keys and factors).
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out: BTreeSet<String> = self.target_keys.iter().cloned().collect();
        for f in &self.factors {
            out.extend(f.variables());
        }
        out
    }

    /// The statement's loop variables given the trigger parameters: every referenced
    /// variable that is not a parameter.
    pub fn loop_variables(&self, params: &[String]) -> BTreeSet<String> {
        self.variables()
            .into_iter()
            .filter(|v| !params.contains(v))
            .collect()
    }
}

/// A trigger: the statements to run when a single-tuple update `±R(p⃗)` arrives.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Trigger {
    /// The updated relation.
    pub relation: String,
    /// Insertion or deletion.
    pub sign: Sign,
    /// The parameter variable names bound to the update's values, in column order.
    pub params: Vec<String>,
    /// The statements, ordered so that a map is updated before any map it reads
    /// (decreasing definition degree).
    pub statements: Vec<Statement>,
}

impl Trigger {
    /// Whether a batch of `k` identical updates may fire this trigger **once** with its
    /// writes scaled by `k`, instead of `k` unit firings.
    ///
    /// That is sound exactly when no statement of the trigger *reads* (via a map lookup)
    /// a map that any statement of the trigger *writes*: the candidate bindings and
    /// accumulated products of every firing are then independent of the firings before
    /// it, so `k` firings write `k ×` the writes of one. This is the map-level shadow of
    /// the delta being degree ≤ 1 in the updated relation — a self-join's trigger reads
    /// the views it maintains (`q += 2·cnt[x] + 1` reads `cnt`, which the same trigger
    /// bumps) and must replay unit by unit, while a degree-1 trigger's delta never
    /// consults its own targets.
    pub fn supports_weighted_firing(&self) -> bool {
        let writes: BTreeSet<MapId> = self.statements.iter().map(|s| s.target).collect();
        self.statements.iter().all(|stmt| {
            stmt.factors.iter().all(|factor| match factor {
                RhsFactor::MapLookup { map, .. } => !writes.contains(map),
                RhsFactor::Scalar(_) | RhsFactor::Guard(..) => true,
            })
        })
    }
}

/// A compiled trigger program: the materialized maps, the triggers that maintain them, and
/// which map holds the query result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TriggerProgram {
    /// All materialized maps (index = [`MapId`]).
    pub maps: Vec<MapDef>,
    /// One trigger per (relation, sign) pair that affects any map.
    pub triggers: Vec<Trigger>,
    /// The map holding the compiled query's result.
    pub output: MapId,
}

/// A structural problem detected by [`TriggerProgram::validate`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IrError {
    /// A statement references a map id that does not exist.
    DanglingMapReference(MapId),
    /// A lookup or target uses the wrong number of keys for its map.
    KeyArityMismatch {
        /// The map concerned.
        map: MapId,
        /// Its declared key count.
        expected: usize,
        /// The number of keys used.
        got: usize,
    },
    /// A loop variable is not bound by any map lookup in its statement, so the executor
    /// could not enumerate its values.
    UnboundLoopVariable {
        /// The offending variable.
        var: String,
        /// The target map of the offending statement.
        target: MapId,
    },
    /// A statement reads a map that an earlier statement of the same trigger already
    /// updated, violating the update-before-read statement order ([`Trigger::statements`])
    /// — the read would see post-update values and results would silently drift.
    /// Detected by the same ordering pass the static analyzer runs
    /// ([`crate::analysis::passes::statement_order_violations`]), so the IR-level
    /// entry point and the analyzer cannot disagree.
    StatementOrderViolation {
        /// The relation of the offending trigger.
        relation: String,
        /// Index of the earlier statement writing the map.
        writer: usize,
        /// Index of the later statement reading it.
        reader: usize,
        /// The map written then read.
        map: MapId,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::DanglingMapReference(id) => {
                write!(f, "statement references unknown map m{id}")
            }
            IrError::KeyArityMismatch { map, expected, got } => {
                write!(f, "map m{map} has {expected} keys but is used with {got}")
            }
            IrError::UnboundLoopVariable { var, target } => {
                write!(f, "loop variable {var} in a statement for m{target} is not bound by any map lookup")
            }
            IrError::StatementOrderViolation {
                relation,
                writer,
                reader,
                map,
            } => {
                write!(
                    f,
                    "trigger on {relation}: statement {reader} reads m{map} after statement \
                     {writer} updated it (statements must update a map before any map it reads)"
                )
            }
        }
    }
}

impl std::error::Error for IrError {}

impl TriggerProgram {
    /// The trigger matching a relation and sign, if any.
    pub fn trigger(&self, relation: &str, sign: Sign) -> Option<&Trigger> {
        self.triggers
            .iter()
            .find(|t| t.relation == relation && t.sign == sign)
    }

    /// The output map's definition.
    pub fn output_map(&self) -> &MapDef {
        &self.maps[self.output]
    }

    /// Total number of statements across all triggers.
    pub fn statement_count(&self) -> usize {
        self.triggers.iter().map(|t| t.statements.len()).sum()
    }

    /// Checks structural well-formedness: map references exist, key arities match,
    /// every loop variable is bound by at least one map lookup of its statement, and
    /// each trigger's statements respect the update-before-read order (the first
    /// violation found by the analyzer's ordering pass is returned as
    /// [`IrError::StatementOrderViolation`]).
    pub fn validate(&self) -> Result<(), IrError> {
        for trigger in &self.triggers {
            if let Some(v) = crate::analysis::passes::statement_order_violations(trigger)
                .into_iter()
                .next()
            {
                return Err(IrError::StatementOrderViolation {
                    relation: trigger.relation.clone(),
                    writer: v.writer,
                    reader: v.reader,
                    map: v.map,
                });
            }
            for stmt in &trigger.statements {
                let target = self
                    .maps
                    .get(stmt.target)
                    .ok_or(IrError::DanglingMapReference(stmt.target))?;
                if target.key_vars.len() != stmt.target_keys.len() {
                    return Err(IrError::KeyArityMismatch {
                        map: stmt.target,
                        expected: target.key_vars.len(),
                        got: stmt.target_keys.len(),
                    });
                }
                let mut lookup_bound: BTreeSet<String> = BTreeSet::new();
                for factor in &stmt.factors {
                    if let RhsFactor::MapLookup { map, keys } = factor {
                        let def = self
                            .maps
                            .get(*map)
                            .ok_or(IrError::DanglingMapReference(*map))?;
                        if def.key_vars.len() != keys.len() {
                            return Err(IrError::KeyArityMismatch {
                                map: *map,
                                expected: def.key_vars.len(),
                                got: keys.len(),
                            });
                        }
                        lookup_bound.extend(keys.iter().cloned());
                    }
                }
                for var in stmt.loop_variables(&trigger.params) {
                    if !lookup_bound.contains(&var) {
                        return Err(IrError::UnboundLoopVariable {
                            var,
                            target: stmt.target,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the program in a compact human-readable form (used by the experiment
    /// binaries and the documentation).
    pub fn describe(&self) -> String {
        let mut out = String::new();
        out.push_str("maps:\n");
        for m in &self.maps {
            out.push_str(&format!(
                "  m{} {}[{}] := {}   (degree {})\n",
                m.id,
                m.name,
                m.key_vars.join(", "),
                m.definition,
                m.degree
            ));
        }
        out.push_str("triggers:\n");
        for t in &self.triggers {
            out.push_str(&format!(
                "  on {}{}({}):\n",
                t.sign,
                t.relation,
                t.params.join(", ")
            ));
            for s in &t.statements {
                let factors: Vec<String> = s.factors.iter().map(|f| f.to_string()).collect();
                let rhs = if factors.is_empty() {
                    format!("{}", s.coefficient)
                } else if s.coefficient == Number::Int(1) {
                    factors.join(" * ")
                } else {
                    format!("{} * {}", s.coefficient, factors.join(" * "))
                };
                out.push_str(&format!(
                    "    m{}[{}] += {}\n",
                    s.target,
                    s.target_keys.join(", "),
                    rhs
                ));
            }
        }
        out
    }
}

/// Converts a *database-free* AGCA value term into a [`ScalarExpr`].
///
/// Returns `None` if the expression contains relational atoms, aggregates, comparisons or
/// assignments (those are handled by other [`RhsFactor`] variants or are not simple).
pub fn scalar_from_expr(expr: &Expr) -> Option<ScalarExpr> {
    match expr {
        Expr::Const(v) => Some(ScalarExpr::Const(v.clone())),
        Expr::Var(x) => Some(ScalarExpr::Var(x.clone())),
        Expr::Add(a, b) => Some(ScalarExpr::Add(
            Box::new(scalar_from_expr(a)?),
            Box::new(scalar_from_expr(b)?),
        )),
        Expr::Mul(a, b) => Some(ScalarExpr::Mul(
            Box::new(scalar_from_expr(a)?),
            Box::new(scalar_from_expr(b)?),
        )),
        Expr::Neg(a) => Some(ScalarExpr::Neg(Box::new(scalar_from_expr(a)?))),
        Expr::Sum(_) | Expr::Rel(_, _) | Expr::Cmp(_, _, _) | Expr::Assign(_, _) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_program() -> TriggerProgram {
        // q[] maintained from m1[x]; on +R(p): q[] += m1[p], m1[p] += 1.
        let q = MapDef {
            id: 0,
            name: "q".to_string(),
            key_vars: vec![],
            definition: Expr::sum(Expr::mul(Expr::rel("R", &["x"]), Expr::rel("R", &["y"]))),
            degree: 2,
        };
        let m1 = MapDef {
            id: 1,
            name: "m1".to_string(),
            key_vars: vec!["$k0".to_string()],
            definition: Expr::rel("R", &["$k0"]),
            degree: 1,
        };
        let trigger = Trigger {
            relation: "R".to_string(),
            sign: Sign::Insert,
            params: vec!["@R_A".to_string()],
            statements: vec![
                Statement {
                    target: 0,
                    target_keys: vec![],
                    coefficient: Number::Int(2),
                    factors: vec![RhsFactor::MapLookup {
                        map: 1,
                        keys: vec!["@R_A".to_string()],
                    }],
                },
                Statement {
                    target: 0,
                    target_keys: vec![],
                    coefficient: Number::Int(1),
                    factors: vec![],
                },
                Statement {
                    target: 1,
                    target_keys: vec!["@R_A".to_string()],
                    coefficient: Number::Int(1),
                    factors: vec![],
                },
            ],
        };
        TriggerProgram {
            maps: vec![q, m1],
            triggers: vec![trigger],
            output: 0,
        }
    }

    #[test]
    fn accessors_and_describe() {
        let p = tiny_program();
        assert_eq!(p.output_map().name, "q");
        assert_eq!(p.statement_count(), 3);
        assert!(p.trigger("R", Sign::Insert).is_some());
        assert!(p.trigger("R", Sign::Delete).is_none());
        assert!(p.trigger("S", Sign::Insert).is_none());
        let text = p.describe();
        assert!(text.contains("m0 q[]"));
        assert!(text.contains("on +R(@R_A)"));
        assert!(text.contains("m0[] += 2 * m1[@R_A]"));
        assert!(text.contains("m1[@R_A] += 1"));
    }

    #[test]
    fn validation_accepts_the_tiny_program() {
        assert!(tiny_program().validate().is_ok());
    }

    #[test]
    fn validation_rejects_dangling_references() {
        let mut p = tiny_program();
        p.triggers[0].statements[0].factors = vec![RhsFactor::MapLookup {
            map: 99,
            keys: vec!["@R_A".to_string()],
        }];
        assert_eq!(p.validate(), Err(IrError::DanglingMapReference(99)));
    }

    #[test]
    fn validation_rejects_key_arity_mismatches() {
        let mut p = tiny_program();
        p.triggers[0].statements[2].target_keys = vec![];
        assert!(matches!(
            p.validate(),
            Err(IrError::KeyArityMismatch {
                map: 1,
                expected: 1,
                got: 0
            })
        ));
    }

    #[test]
    fn validation_rejects_unbound_loop_variables() {
        let mut p = tiny_program();
        // A target key that is neither a parameter nor bound by a lookup.
        p.triggers[0].statements[2].target_keys = vec!["mystery".to_string()];
        assert!(matches!(
            p.validate(),
            Err(IrError::UnboundLoopVariable { .. })
        ));
    }

    #[test]
    fn statement_variable_sets() {
        let p = tiny_program();
        let s = &p.triggers[0].statements[0];
        assert!(s.variables().contains("@R_A"));
        assert!(s.loop_variables(&p.triggers[0].params).is_empty());
        let loopy = Statement {
            target: 0,
            target_keys: vec!["c".to_string()],
            coefficient: Number::Int(1),
            factors: vec![RhsFactor::MapLookup {
                map: 1,
                keys: vec!["c".to_string()],
            }],
        };
        assert_eq!(
            loopy.loop_variables(&p.triggers[0].params),
            ["c".to_string()].into_iter().collect()
        );
    }

    #[test]
    fn scalar_conversion() {
        let e = Expr::mul(
            Expr::var("x"),
            Expr::add(Expr::int(2), Expr::neg(Expr::var("y"))),
        );
        let s = scalar_from_expr(&e).unwrap();
        assert_eq!(s.variables().len(), 2);
        assert_eq!(s.to_string(), "(x * (2 + (-y)))");
        assert!(scalar_from_expr(&Expr::rel("R", &["x"])).is_none());
        assert!(scalar_from_expr(&Expr::sum(Expr::int(1))).is_none());
        assert_eq!(
            scalar_from_expr(&Expr::constant("FR")).unwrap(),
            ScalarExpr::Const(Value::str("FR"))
        );
    }

    #[test]
    fn ir_error_display() {
        assert!(IrError::DanglingMapReference(3).to_string().contains("m3"));
        assert!(IrError::KeyArityMismatch {
            map: 1,
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("2 keys"));
        assert!(IrError::UnboundLoopVariable {
            var: "x".to_string(),
            target: 0
        }
        .to_string()
        .contains("loop variable x"));
    }
}
