//! The recursive IVM compiler: AGCA queries → NC0C trigger programs (Section 7 of
//! *Incremental Query Evaluation in a Ring of Databases*, Koch, PODS 2010).
//!
//! Instead of evaluating delta queries at update time (classical IVM), the compiler
//! applies delta processing *recursively*: the query's delta is materialized as a set of
//! auxiliary views, those views' deltas as further views, and so on until the expressions
//! depend only on the update parameters (degree 0, guaranteed to be reached by
//! Theorem 6.4). Each monomial of each delta is factorized along variable connectivity
//! (Example 1.3), so the auxiliary views stay small — one view per independent join
//! component rather than one per delta.
//!
//! The output is a [`TriggerProgram`] in the paper's low-level
//! language **NC0C**: for every relation and sign there is a trigger whose statements are
//! of the form
//!
//! ```text
//! m[k⃗]  +=  coefficient * lookup₁ * lookup₂ * … * guard * value-term
//! ```
//!
//! — no joins, no aggregation operators, only map lookups, arithmetic and comparisons.
//! Free ("loop") variables in a statement range over slices of the looked-up maps, and
//! each maintained value receives a constant number of arithmetic operations per update,
//! which is the sequential shadow of the paper's NC⁰ claim (Theorem 7.1).
//!
//! Modules: [`ir`] defines the trigger-program IR and its validator; [`compile`](mod@compile)
//! implements the recursive compilation algorithm; [`lower`](mod@lower) resolves a compiled program
//! into a slot-indexed [`ExecPlan`] — the name-free representation the
//! runtime's hot path executes (compile once, lower once, execute per update); and
//! [`analysis`] is the plan auditor — effect sets, def-use dataflow and a lint pass
//! pipeline with stable diagnostic codes that [`lower`](lower::lower) runs over every
//! plan it produces (Errors deny the plan; Warnings/Infos attach to it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codegen;
pub mod compile;
pub mod ir;
pub mod lower;

pub use analysis::{
    analyze, analyze_plan, analyze_program, audit_program, derived_weighted_firing, has_errors,
    DiagCode, Diagnostic, Severity,
};
pub use codegen::generate as generate_nc0c;
pub use compile::{compile, CompileError};
pub use ir::{MapDef, MapId, RhsFactor, ScalarExpr, Statement, Trigger, TriggerProgram};
pub use lower::{
    lower, ExecPlan, LowerError, PlanOp, PlanStatement, PlanTrigger, Slot, SlotExpr, UnboundKey,
};
