//! The plan auditor: static analysis over trigger programs and lowered plans.
//!
//! The paper's pitch is that compiled trigger programs make view maintenance
//! *statically analyzable* — every statement is a flat monomial over map lookups, so
//! what a trigger reads and writes, and in what order, is decidable by inspection.
//! This module cashes that claim in: it computes per-statement and per-trigger
//! **effect sets** (maps read / maps written, slots defined / slots used — see
//! [`effects`]) and runs a pass pipeline (see [`passes`]) over both the
//! [`TriggerProgram`] IR and the lowered [`ExecPlan`], emitting structured
//! [`Diagnostic`] values with stable codes.
//!
//! # Diagnostic codes
//!
//! | Code  | Name                      | Severity | Meaning | Example |
//! |-------|---------------------------|----------|---------|---------|
//! | DB000 | `LoweringFailed`          | Error    | The program does not lower at all (structural invalidity, read-before-bind); only [`audit_program`] emits it. | a statement targeting a map id that does not exist |
//! | DB001 | `StatementOrderViolation` | Error    | A statement reads a map an **earlier** statement of the same trigger wrote — the read sees post-update values and results silently drift. | `m1[p] += 1; q[] += m1[p]` (must be the other way around) |
//! | DB002 | `DeadSlotBind`            | Warning  | An `Enumerate` binds a key component into a frame slot no later op or target key reads — wasted work, candidate for projecting the view's key down. | `q[] += Sum_x m1[x]` where `x` is never used again |
//! | DB003 | `UnusedIndexRegistration` | Warning  | A registered slice-index pattern matches no `Enumerate` in the plan — every update pays to maintain an index nothing reads. | a plan edited to register `(m1, [0])` with no such enumeration |
//! | DB004 | `RedundantProbe`          | Warning  | A statement probes the same map twice with identical key slots — the value could be read once and squared. | `q[] += m1[p] * m1[p]` |
//! | DB005 | `SelfReadWrite`           | Error    | A statement reads the map it writes; whether the lookup sees pre- or post-update state depends on executor buffering, so the IR's semantics are ill-defined. | `q[] += q[] * 2` |
//! | DB006 | `MissingIndexRegistration`| Error    | An `Enumerate` uses a partially-bound pattern with no registered slice index — the latent wrong-results/scan bug class the runtime used to catch dynamically. | a plan edited to drop a registration its enumerations need |
//! | DB007 | `WeightedFiringBlocked`   | Info     | The statement-level read/write conflict graph blocks weighted batch firing; names the first blocking statement pair, the groundwork for finer-grained batch replay. | the self-join trigger `q[] += 2 * m1[p] + 1; m1[p] += 1` |
//! | DB008 | `RedundantCheck`          | Warning  | An `Enumerate` repeats an identical consistency check (`position`, `slot`) — the second can never fail if the first held. | a plan edited to duplicate a `Check` entry |
//!
//! # Pipeline wiring
//!
//! [`lower`](crate::lower::lower) runs [`analyze`] on every plan it produces: any
//! Error-severity diagnostic **denies lowering**
//! ([`LowerError::Rejected`](crate::lower::LowerError::Rejected)), and the surviving
//! warnings/infos are attached to the plan
//! ([`ExecPlan::diagnostics`](crate::lower::ExecPlan::diagnostics), exposed as
//! [`ExecPlan::audit`](crate::lower::ExecPlan::audit)). The runtime's `ViewEngine`
//! trait and the `Ring` engine re-expose them per view (`Ring::audit_view` /
//! `Ring::audit`), and the `dbring-lint` binary runs the analyzer over every shipped
//! workload and example query in CI, failing on any Error.
//!
//! Analysis cost is paid once at lowering time; nothing here runs per update.

pub mod effects;
pub mod passes;

use std::fmt;

use crate::ir::{Trigger, TriggerProgram};
use crate::lower::ExecPlan;

pub use passes::derived_weighted_firing;

/// How serious a [`Diagnostic`] is. Ordered: `Info < Warning < Error`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// A property worth knowing (e.g. why weighted firing is blocked); never gates.
    Info,
    /// Wasted work or memory; the plan is correct but leaves performance behind.
    Warning,
    /// The plan would compute wrong results (or crash); lowering refuses to emit it.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The stable identity of an analyzer finding. See the [module table](self) for the
/// full code/severity/meaning listing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum DiagCode {
    /// DB000: the program does not lower at all.
    LoweringFailed,
    /// DB001: a statement reads a map an earlier statement wrote.
    StatementOrderViolation,
    /// DB002: an `Enumerate` bind nothing ever reads.
    DeadSlotBind,
    /// DB003: a registered slice index no `Enumerate` uses.
    UnusedIndexRegistration,
    /// DB004: a statement probes the same map twice with identical key slots.
    RedundantProbe,
    /// DB005: a statement reads the map it writes.
    SelfReadWrite,
    /// DB006: an `Enumerate` pattern with no registered slice index.
    MissingIndexRegistration,
    /// DB007: the read/write conflict graph blocks weighted batch firing.
    WeightedFiringBlocked,
    /// DB008: an `Enumerate` repeats an identical consistency check.
    RedundantCheck,
}

impl DiagCode {
    /// The stable `DBnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::LoweringFailed => "DB000",
            DiagCode::StatementOrderViolation => "DB001",
            DiagCode::DeadSlotBind => "DB002",
            DiagCode::UnusedIndexRegistration => "DB003",
            DiagCode::RedundantProbe => "DB004",
            DiagCode::SelfReadWrite => "DB005",
            DiagCode::MissingIndexRegistration => "DB006",
            DiagCode::WeightedFiringBlocked => "DB007",
            DiagCode::RedundantCheck => "DB008",
        }
    }

    /// The code's short name (`StatementOrderViolation`, …).
    pub fn name(self) -> &'static str {
        match self {
            DiagCode::LoweringFailed => "LoweringFailed",
            DiagCode::StatementOrderViolation => "StatementOrderViolation",
            DiagCode::DeadSlotBind => "DeadSlotBind",
            DiagCode::UnusedIndexRegistration => "UnusedIndexRegistration",
            DiagCode::RedundantProbe => "RedundantProbe",
            DiagCode::SelfReadWrite => "SelfReadWrite",
            DiagCode::MissingIndexRegistration => "MissingIndexRegistration",
            DiagCode::WeightedFiringBlocked => "WeightedFiringBlocked",
            DiagCode::RedundantCheck => "RedundantCheck",
        }
    }

    /// The severity this code is always emitted at.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::LoweringFailed
            | DiagCode::StatementOrderViolation
            | DiagCode::SelfReadWrite
            | DiagCode::MissingIndexRegistration => Severity::Error,
            DiagCode::DeadSlotBind
            | DiagCode::UnusedIndexRegistration
            | DiagCode::RedundantProbe
            | DiagCode::RedundantCheck => Severity::Warning,
            DiagCode::WeightedFiringBlocked => Severity::Info,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// One structured analyzer finding.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Diagnostic {
    /// The stable code identifying the finding class.
    pub code: DiagCode,
    /// The severity ([`DiagCode::severity`] of `code`).
    pub severity: Severity,
    /// The trigger the finding is about, rendered as `+R` / `-R` (`None` for
    /// plan-wide findings such as index-registration mismatches).
    pub trigger: Option<String>,
    /// The statement index within the trigger, where the finding is that precise.
    pub statement: Option<usize>,
    /// The human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code, self.severity)?;
        if let Some(t) = &self.trigger {
            write!(f, " [on {t}")?;
            if let Some(s) = self.statement {
                write!(f, " stmt {s}")?;
            }
            write!(f, "]")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Diagnostic {
    fn new(code: DiagCode, message: String) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            trigger: None,
            statement: None,
            message,
        }
    }

    fn on(mut self, trigger: &Trigger, statement: Option<usize>) -> Self {
        self.trigger = Some(format!("{}{}", trigger.sign, trigger.relation));
        self.statement = statement;
        self
    }
}

/// Whether any diagnostic in a batch is Error-severity (the lint gate's predicate).
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Runs the IR-level passes over a trigger program: statement ordering (DB001),
/// self-read/write (DB005), and the weighted-firing conflict graph (DB007).
pub fn analyze_program(program: &TriggerProgram) -> Vec<Diagnostic> {
    let mut keyed = Vec::new();
    for (ti, trigger) in program.triggers.iter().enumerate() {
        for v in passes::statement_order_violations(trigger) {
            keyed.push((
                (ti, v.reader),
                Diagnostic::new(
                    DiagCode::StatementOrderViolation,
                    format!(
                        "statement {} reads m{} after statement {} updated it; \
                         reads must see pre-update values (update-before-read, \
                         decreasing degree)",
                        v.reader, v.map, v.writer
                    ),
                )
                .on(trigger, Some(v.reader)),
            ));
        }
        for (si, map) in passes::self_read_writes(trigger) {
            keyed.push((
                (ti, si),
                Diagnostic::new(
                    DiagCode::SelfReadWrite,
                    format!(
                        "statement {si} reads m{map}, the map it writes — its \
                         semantics depend on executor write buffering"
                    ),
                )
                .on(trigger, Some(si)),
            ));
        }
        if let Some(c) = passes::weighted_firing_conflict(trigger) {
            keyed.push((
                (ti, c.reader),
                Diagnostic::new(
                    DiagCode::WeightedFiringBlocked,
                    format!(
                        "weighted batch firing is blocked: statement {} reads m{} \
                         which statement {} writes; batched updates of this trigger \
                         replay unit-by-unit",
                        c.reader, c.map, c.writer
                    ),
                )
                .on(trigger, Some(c.reader)),
            ));
        }
    }
    finish(keyed)
}

/// Runs the plan-level passes over a lowered plan: slot def-use dataflow for dead
/// binds (DB002), redundant probes (DB004) and redundant checks (DB008), plus the
/// index-registration cross-check (DB003 / DB006).
pub fn analyze_plan(plan: &ExecPlan) -> Vec<Diagnostic> {
    let mut keyed = Vec::new();
    for (ti, trigger) in plan.triggers.iter().enumerate() {
        let on = |mut d: Diagnostic, si: usize| {
            d.trigger = Some(format!("{}{}", trigger.sign, trigger.relation));
            d.statement = Some(si);
            d
        };
        for (si, stmt) in trigger.statements.iter().enumerate() {
            for d in passes::dead_binds(stmt) {
                keyed.push((
                    (ti, si),
                    on(
                        Diagnostic::new(
                            DiagCode::DeadSlotBind,
                            format!(
                                "op {} enumerates m{} and binds slot ${} that no later \
                                 op or target key reads — dead bind, candidate for \
                                 projection",
                                d.op, d.map, d.slot
                            ),
                        ),
                        si,
                    ),
                ));
            }
            for p in passes::redundant_probes(stmt) {
                keyed.push((
                    (ti, si),
                    on(
                        Diagnostic::new(
                            DiagCode::RedundantProbe,
                            format!(
                                "op {} probes m{} with the same key slots {:?} as op {} \
                                 — the value could be read once and reused",
                                p.op, p.map, p.key_slots, p.first
                            ),
                        ),
                        si,
                    ),
                ));
            }
            for c in passes::redundant_checks(stmt) {
                keyed.push((
                    (ti, si),
                    on(
                        Diagnostic::new(
                            DiagCode::RedundantCheck,
                            format!(
                                "op {} repeats the consistency check of position {} \
                                 against slot ${} — it can never fail if the first held",
                                c.op, c.position, c.slot
                            ),
                        ),
                        si,
                    ),
                ));
            }
        }
    }
    let audit = passes::index_audit(plan);
    let plan_wide = (usize::MAX, usize::MAX);
    for (map, positions) in audit.unused {
        keyed.push((
            plan_wide,
            Diagnostic::new(
                DiagCode::UnusedIndexRegistration,
                format!(
                    "registered slice index (m{map}, positions {positions:?}) matches \
                     no Enumerate pattern — every update pays to maintain an index \
                     nothing reads"
                ),
            ),
        ));
    }
    for (map, positions) in audit.missing {
        keyed.push((
            plan_wide,
            Diagnostic::new(
                DiagCode::MissingIndexRegistration,
                format!(
                    "an Enumerate uses pattern (m{map}, positions {positions:?}) but \
                     no slice index is registered for it"
                ),
            ),
        ));
    }
    finish(keyed)
}

/// The full pass pipeline: [`analyze_program`] plus [`analyze_plan`], in one
/// deterministically ordered batch. This is what [`lower`](crate::lower::lower) runs
/// on every plan it produces.
pub fn analyze(program: &TriggerProgram, plan: &ExecPlan) -> Vec<Diagnostic> {
    let mut out = analyze_program(program);
    out.extend(analyze_plan(plan));
    out
}

/// Audits a program end-to-end without requiring it to lower first: lowers it (which
/// runs the full pipeline) and returns the plan's diagnostics; if lowering is denied
/// or fails structurally, returns the IR-level findings plus — when the failure is
/// not already explained by one of them — a DB000 `LoweringFailed` Error carrying the
/// lowering error text. This is the entry point hosts use to audit an arbitrary
/// (possibly hand-built) program.
pub fn audit_program(program: &TriggerProgram) -> Vec<Diagnostic> {
    match crate::lower::lower(program) {
        Ok(plan) => plan.diagnostics,
        Err(err) => {
            let mut diags = analyze_program(program);
            if !has_errors(&diags) {
                diags.push(Diagnostic::new(
                    DiagCode::LoweringFailed,
                    format!("the program does not lower: {err}"),
                ));
            }
            diags
        }
    }
}

/// Orders keyed findings by (trigger, statement, code, message) and strips the keys —
/// the determinism contract: the same program yields the same diagnostic sequence.
fn finish(mut keyed: Vec<((usize, usize), Diagnostic)>) -> Vec<Diagnostic> {
    keyed.sort_by(|(ka, a), (kb, b)| {
        ka.cmp(kb)
            .then_with(|| a.code.cmp(&b.code))
            .then_with(|| a.message.cmp(&b.message))
    });
    keyed.into_iter().map(|(_, d)| d).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{IrError, MapDef, RhsFactor, ScalarExpr, Statement, Trigger};
    use crate::lower::{lower, LowerError, PlanOp, UnboundKey};
    use dbring_agca::ast::Expr;
    use dbring_algebra::Number;
    use dbring_delta::Sign;

    /// A program skeleton: `q[]` (m0) and `m1[k]`, one insert trigger on `R` whose
    /// statements the individual tests swap out.
    fn program(statements: Vec<Statement>) -> TriggerProgram {
        TriggerProgram {
            maps: vec![
                MapDef {
                    id: 0,
                    name: "q".into(),
                    key_vars: vec![],
                    definition: Expr::int(0),
                    degree: 2,
                },
                MapDef {
                    id: 1,
                    name: "m1".into(),
                    key_vars: vec!["k".into()],
                    definition: Expr::int(0),
                    degree: 1,
                },
            ],
            triggers: vec![Trigger {
                relation: "R".into(),
                sign: Sign::Insert,
                params: vec!["@p".into()],
                statements,
            }],
            output: 0,
        }
    }

    fn stmt(target: crate::ir::MapId, keys: &[&str], factors: Vec<RhsFactor>) -> Statement {
        Statement {
            target,
            target_keys: keys.iter().map(|k| k.to_string()).collect(),
            coefficient: Number::Int(1),
            factors,
        }
    }

    fn lookup(map: crate::ir::MapId, keys: &[&str]) -> RhsFactor {
        RhsFactor::MapLookup {
            map,
            keys: keys.iter().map(|k| k.to_string()).collect(),
        }
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    /// DB001: write m1, then read it — the ordering pass must flag it as an Error,
    /// `validate` must reject it with the same (writer, reader, map) facts, and
    /// lowering must deny the plan.
    #[test]
    fn db001_statement_order_violation() {
        let p = program(vec![
            stmt(1, &["@p"], vec![]),
            stmt(0, &[], vec![lookup(1, &["@p"])]),
        ]);
        let diags = analyze_program(&p);
        assert_eq!(codes(&diags), vec!["DB001", "DB007"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert_eq!(diags[0].trigger.as_deref(), Some("+R"));
        assert_eq!(diags[0].statement, Some(1));
        assert!(diags[0].message.contains("reads m1 after statement 0"));
        assert!(matches!(
            p.validate(),
            Err(IrError::StatementOrderViolation {
                writer: 0,
                reader: 1,
                map: 1,
                ..
            })
        ));
        assert!(matches!(
            lower(&p),
            Err(LowerError::Invalid(IrError::StatementOrderViolation { .. }))
        ));
        // The same statements in update-before-read order are clean (modulo the
        // blocked-weighted-firing info, which reading a written map always implies).
        let ok = program(vec![
            stmt(0, &[], vec![lookup(1, &["@p"])]),
            stmt(1, &["@p"], vec![]),
        ]);
        assert!(ok.validate().is_ok());
        let diags = analyze_program(&ok);
        assert_eq!(codes(&diags), vec!["DB007"]);
        assert!(lower(&ok).is_ok());
    }

    /// DB005: a statement reading the map it writes is an Error regardless of
    /// statement order — no reordering can fix it.
    #[test]
    fn db005_self_read_write() {
        let p = program(vec![stmt(1, &["@p"], vec![lookup(1, &["@p"])])]);
        let diags = analyze_program(&p);
        assert_eq!(codes(&diags), vec!["DB005", "DB007"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("reads m1, the map it writes"));
        // validate's ordering pass only sees cross-statement order, so the denial
        // comes from the analyzer gate inside lower().
        assert!(p.validate().is_ok());
        match lower(&p) {
            Err(LowerError::Rejected(d)) => assert_eq!(d.code, DiagCode::SelfReadWrite),
            other => panic!("expected Rejected(SelfReadWrite), got {other:?}"),
        }
    }

    /// DB007: read-then-write of the same map is legal (pre-update read) but blocks
    /// weighted firing; the info names the blocking statement pair.
    #[test]
    fn db007_weighted_firing_blocked_names_the_pair() {
        let p = program(vec![
            stmt(0, &[], vec![lookup(1, &["@p"])]),
            stmt(1, &["@p"], vec![]),
        ]);
        let trigger = &p.triggers[0];
        assert!(!trigger.supports_weighted_firing());
        assert!(!derived_weighted_firing(trigger));
        let diags = analyze_program(&p);
        assert_eq!(codes(&diags), vec!["DB007"]);
        assert_eq!(diags[0].severity, Severity::Info);
        assert!(diags[0].message.contains("statement 0 reads m1"));
        assert!(diags[0].message.contains("statement 1 writes"));
        // A conflict-free trigger emits nothing.
        let free = program(vec![stmt(1, &["@p"], vec![])]);
        assert!(derived_weighted_firing(&free.triggers[0]));
        assert!(analyze_program(&free).is_empty());
    }

    /// DB002: an enumeration whose bind nothing reads — `q[] += Σ_x m1[x]` — lowers
    /// with a DeadSlotBind warning attached to the plan.
    #[test]
    fn db002_dead_slot_bind() {
        let p = program(vec![stmt(0, &[], vec![lookup(1, &["x"])])]);
        let plan = lower(&p).unwrap();
        let diags = plan.audit();
        assert_eq!(codes(diags), vec!["DB002"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("dead bind"));
        // The same enumeration with the bind used as a target key is clean.
        let used = TriggerProgram {
            maps: vec![
                MapDef {
                    id: 0,
                    name: "q".into(),
                    key_vars: vec!["g".into()],
                    definition: Expr::int(0),
                    degree: 2,
                },
                MapDef {
                    id: 1,
                    name: "m1".into(),
                    key_vars: vec!["k".into()],
                    definition: Expr::int(0),
                    degree: 1,
                },
            ],
            triggers: vec![Trigger {
                relation: "R".into(),
                sign: Sign::Insert,
                params: vec!["@p".into()],
                statements: vec![stmt(0, &["x"], vec![lookup(1, &["x"])])],
            }],
            output: 0,
        };
        assert!(lower(&used).unwrap().audit().is_empty());
    }

    /// DB004: probing the same map twice with identical key slots.
    #[test]
    fn db004_redundant_probe() {
        let p = program(vec![stmt(
            0,
            &[],
            vec![lookup(1, &["@p"]), lookup(1, &["@p"])],
        )]);
        let plan = lower(&p).unwrap();
        let diags = plan.audit();
        assert_eq!(codes(diags), vec!["DB004"]);
        assert!(diags[0].message.contains("read once and reused"));
        // Different key slots probe different entries: clean.
        let two_params = TriggerProgram {
            maps: p.maps.clone(),
            triggers: vec![Trigger {
                relation: "R".into(),
                sign: Sign::Insert,
                params: vec!["@a".into(), "@b".into()],
                statements: vec![stmt(0, &[], vec![lookup(1, &["@a"]), lookup(1, &["@b"])])],
            }],
            output: 0,
        };
        assert!(lower(&two_params).unwrap().audit().is_empty());
    }

    /// DB003 / DB006: the index-registration cross-check, exercised by corrupting a
    /// lowered plan the way a lowering bug would.
    #[test]
    fn db003_db006_index_registration_cross_check() {
        // `q[g] += Σ_x m1[x, @p]`-shaped: a two-key map enumerated with position 1
        // bound, so the plan needs exactly one registration: (m1, [1]).
        let p = TriggerProgram {
            maps: vec![
                MapDef {
                    id: 0,
                    name: "q".into(),
                    key_vars: vec!["g".into()],
                    definition: Expr::int(0),
                    degree: 2,
                },
                MapDef {
                    id: 1,
                    name: "m1".into(),
                    key_vars: vec!["a".into(), "b".into()],
                    definition: Expr::int(0),
                    degree: 1,
                },
            ],
            triggers: vec![Trigger {
                relation: "R".into(),
                sign: Sign::Insert,
                params: vec!["@p".into()],
                statements: vec![stmt(0, &["x"], vec![lookup(1, &["x", "@p"])])],
            }],
            output: 0,
        };
        let plan = lower(&p).unwrap();
        assert_eq!(plan.index_registrations, vec![(1, vec![1])]);
        assert!(plan.audit().is_empty());

        // An extra registration nothing enumerates: DB003 warning.
        let mut padded = plan.clone();
        padded.index_registrations.push((1, vec![0]));
        let diags = analyze_plan(&padded);
        assert_eq!(codes(&diags), vec!["DB003"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].trigger.is_none());

        // The needed registration dropped: DB006 error.
        let mut stripped = plan.clone();
        stripped.index_registrations.clear();
        let diags = analyze_plan(&stripped);
        assert_eq!(codes(&diags), vec!["DB006"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    /// DB008: a duplicated consistency check within one enumeration, exercised by
    /// corrupting a lowered plan (lowering never emits duplicates).
    #[test]
    fn db008_redundant_check() {
        // `q[] += Σ_x m1[x, x]`: Bind at position 0, Check at position 1.
        let p = TriggerProgram {
            maps: vec![
                MapDef {
                    id: 0,
                    name: "q".into(),
                    key_vars: vec![],
                    definition: Expr::int(0),
                    degree: 2,
                },
                MapDef {
                    id: 1,
                    name: "m1".into(),
                    key_vars: vec!["a".into(), "b".into()],
                    definition: Expr::int(0),
                    degree: 1,
                },
            ],
            triggers: vec![Trigger {
                relation: "R".into(),
                sign: Sign::Insert,
                params: vec!["@p".into()],
                statements: vec![stmt(0, &[], vec![lookup(1, &["x", "x"])])],
            }],
            output: 0,
        };
        let mut plan = lower(&p).unwrap();
        assert!(plan.audit().is_empty(), "Bind+Check is the legit shape");
        let PlanOp::Enumerate { unbound, .. } = &mut plan.triggers[0].statements[0].ops[0] else {
            panic!("expected an enumerate");
        };
        let UnboundKey::Check { position, slot } = unbound[1] else {
            panic!("expected a check at entry 1");
        };
        unbound.push(UnboundKey::Check { position, slot });
        let diags = analyze_plan(&plan);
        assert_eq!(codes(&diags), vec!["DB008"]);
        assert!(diags[0].message.contains("can never fail"));
    }

    /// DB000: a structurally invalid program audits to a LoweringFailed error
    /// instead of an empty (silently "clean") report.
    #[test]
    fn db000_lowering_failed() {
        let p = program(vec![stmt(7, &[], vec![])]); // dangling map id
        let diags = audit_program(&p);
        assert_eq!(codes(&diags), vec!["DB000"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].message.contains("unknown map m7"));
        // When the failure *is* an analyzer finding, DB000 is not added on top.
        let ordered_wrong = program(vec![
            stmt(1, &["@p"], vec![]),
            stmt(0, &[], vec![lookup(1, &["@p"])]),
        ]);
        let diags = audit_program(&ordered_wrong);
        assert_eq!(codes(&diags), vec!["DB001", "DB007"]);
    }

    /// The full pipeline on a clean compiled-style program: no diagnostics, and
    /// `audit_program` equals the plan's attached set.
    #[test]
    fn clean_program_audits_clean() {
        let p = program(vec![
            stmt(
                0,
                &[],
                vec![
                    lookup(1, &["@p"]),
                    RhsFactor::Scalar(ScalarExpr::Var("@p".into())),
                ],
            ),
            stmt(1, &["@p"], vec![]),
        ]);
        let plan = lower(&p).unwrap();
        let attached = plan.audit().to_vec();
        assert_eq!(attached, audit_program(&p));
        assert_eq!(codes(&attached), vec!["DB007"]); // blocked firing info only
        assert!(!has_errors(&attached));
    }

    /// Rendering: every code renders its stable string, severities order, and the
    /// Display form carries code, severity, trigger and statement.
    #[test]
    fn display_and_ordering() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        for (code, s) in [
            (DiagCode::LoweringFailed, "DB000"),
            (DiagCode::StatementOrderViolation, "DB001"),
            (DiagCode::DeadSlotBind, "DB002"),
            (DiagCode::UnusedIndexRegistration, "DB003"),
            (DiagCode::RedundantProbe, "DB004"),
            (DiagCode::SelfReadWrite, "DB005"),
            (DiagCode::MissingIndexRegistration, "DB006"),
            (DiagCode::WeightedFiringBlocked, "DB007"),
            (DiagCode::RedundantCheck, "DB008"),
        ] {
            assert_eq!(code.code(), s);
            assert_eq!(code.to_string(), s);
            assert!(!code.name().is_empty());
        }
        let p = program(vec![
            stmt(1, &["@p"], vec![]),
            stmt(0, &[], vec![lookup(1, &["@p"])]),
        ]);
        let rendered = analyze_program(&p)[0].to_string();
        assert!(
            rendered.starts_with("DB001 error [on +R stmt 1]:"),
            "{rendered}"
        );
    }
}
