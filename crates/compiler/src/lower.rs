//! Lowering: [`TriggerProgram`] → [`ExecPlan`], the slot-resolved execution plan.
//!
//! The trigger IR names variables by string; executing it directly means hashing variable
//! names on every factor of every statement of every update, and re-deriving which key
//! positions of a lookup are bound each time. Both are decided *once* here, at lowering
//! time:
//!
//! * every variable of a trigger is assigned a fixed **slot** (a `u16` index into a flat
//!   frame of values shared by all of the trigger's statements), and
//! * every map lookup is classified as a [`PlanOp::Probe`] (all key positions bound — a
//!   single hash-map read) or a [`PlanOp::Enumerate`] (some positions unbound — iterate
//!   the matching slice, writing the enumerated key components into their slots), with the
//!   bound/unbound position split and the slice-index pattern fixed in the plan.
//!
//! Which positions are bound at a factor is a *static* property: the bound set at any
//! point is exactly the trigger parameters plus the variables bound by earlier lookups of
//! the same statement, identical for every candidate binding the executor is extending.
//! The interpreter re-derived this per candidate per update; the plan records it once.
//!
//! Lowering also collects the slice-index patterns each map needs
//! ([`ExecPlan::index_registrations`]), replacing the quadratic bound-list scans the
//! executor used to perform at construction time, and rejects statements that would read
//! a variable before any lookup binds it — turning what used to be a runtime
//! `UnboundVariable` error into a lowering-time [`LowerError`].

use std::collections::{HashMap, HashSet};
use std::fmt;

use dbring_agca::ast::CmpOp;
use dbring_algebra::Number;
use dbring_delta::Sign;
use dbring_relations::Value;

use crate::analysis::{self, Diagnostic};
use crate::ir::{IrError, MapId, RhsFactor, ScalarExpr, TriggerProgram};

/// Index of a variable's cell within a trigger's flat frame.
pub type Slot = u16;

/// A scalar expression with every variable resolved to a frame slot.
#[derive(Clone, PartialEq, Debug)]
pub enum SlotExpr {
    /// A constant value.
    Const(Value),
    /// The value currently held by a frame slot.
    Slot(Slot),
    /// Addition.
    Add(Box<SlotExpr>, Box<SlotExpr>),
    /// Multiplication.
    Mul(Box<SlotExpr>, Box<SlotExpr>),
    /// Negation.
    Neg(Box<SlotExpr>),
}

impl fmt::Display for SlotExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotExpr::Const(v) => write!(f, "{v}"),
            SlotExpr::Slot(s) => write!(f, "${s}"),
            SlotExpr::Add(a, b) => write!(f, "({a} + {b})"),
            SlotExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            SlotExpr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

/// What to do with one *unbound* key position while enumerating a map slice.
///
/// The first occurrence of a variable binds its slot; a repeated occurrence of the same
/// variable within the same lookup (e.g. `m[x, x]` with `x` free) checks consistency
/// instead, mirroring the interpreter's per-binding equality check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnboundKey {
    /// Write the key component at `position` into `slot`.
    Bind {
        /// The key position within the enumerated map's key tuple.
        position: usize,
        /// The destination frame slot.
        slot: Slot,
    },
    /// Require the key component at `position` to equal the value already in `slot`
    /// (bound earlier in this same lookup); drop the candidate otherwise.
    Check {
        /// The key position within the enumerated map's key tuple.
        position: usize,
        /// The frame slot to compare against.
        slot: Slot,
    },
}

/// One resolved operation of a statement's factor sequence.
#[derive(Clone, PartialEq, Debug)]
pub enum PlanOp {
    /// A fully-bound map lookup: one hash read, multiply the value into the accumulator
    /// (dropping the candidate if the value is zero).
    Probe {
        /// The looked-up map.
        map: MapId,
        /// Frame slots holding the key components, in the map's key order.
        key_slots: Vec<Slot>,
    },
    /// A partially-bound map lookup: enumerate the entries matching the bound positions
    /// (via the slice index registered for exactly this pattern), fan each candidate out
    /// per matching entry, and bind/check the unbound positions.
    Enumerate {
        /// The enumerated map.
        map: MapId,
        /// The bound key positions, ascending (the slice-index pattern).
        bound_positions: Vec<usize>,
        /// Frame slots holding the bound key components, parallel to `bound_positions`.
        bound_slots: Vec<Slot>,
        /// Actions for the unbound positions, in ascending position order.
        unbound: Vec<UnboundKey>,
    },
    /// A numeric factor: evaluate, multiply into the accumulator (dropping the candidate
    /// if zero).
    Scalar(SlotExpr),
    /// A comparison guard: keep the candidate iff it holds.
    Guard(CmpOp, SlotExpr, SlotExpr),
}

/// One lowered statement: run `ops` over the candidate frames, then add
/// `coefficient · acc` to `target[target_slots]` for every surviving candidate.
#[derive(Clone, Debug)]
pub struct PlanStatement {
    /// The map being updated.
    pub target: MapId,
    /// Frame slots holding the target key components, in the target's key order.
    pub target_slots: Vec<Slot>,
    /// The constant coefficient of the monomial.
    pub coefficient: Number,
    /// The resolved factor sequence, in evaluation order.
    pub ops: Vec<PlanOp>,
}

/// One lowered trigger: the slot layout shared by its statements, and the statements.
#[derive(Clone, Debug)]
pub struct PlanTrigger {
    /// The updated relation.
    pub relation: String,
    /// Insertion or deletion.
    pub sign: Sign,
    /// The frame slot of each trigger parameter, in column order (an update's values are
    /// written to these slots before any statement runs).
    pub param_slots: Vec<Slot>,
    /// Total frame length: parameters plus every loop variable of every statement.
    pub frame_len: usize,
    /// Whether a batch of `k` identical updates may fire this trigger once with its
    /// writes scaled by `k` (true iff no statement reads a map any statement writes —
    /// the delta is degree ≤ 1 in the updated relation; see
    /// [`Trigger::supports_weighted_firing`](crate::ir::Trigger::supports_weighted_firing)).
    /// When false, batch execution must replay unit updates to preserve self-join
    /// semantics.
    pub weighted_firing: bool,
    /// The lowered statements, in the IR's (degree-ordered) statement order.
    pub statements: Vec<PlanStatement>,
}

/// A slot-resolved execution plan for one [`TriggerProgram`].
///
/// Plan triggers are index-aligned with the program's triggers. The plan carries
/// everything the hot path needs that is derivable from the program alone, so the
/// executor can run name-free and derive nothing per update.
#[derive(Clone, Debug)]
pub struct ExecPlan {
    /// The lowered triggers, aligned with [`TriggerProgram::triggers`].
    pub triggers: Vec<PlanTrigger>,
    /// Key arity of each map, aligned with [`TriggerProgram::maps`].
    pub map_arities: Vec<usize>,
    /// The slice-index patterns the plan's `Enumerate` ops rely on, deduplicated:
    /// `(map, ascending bound positions)`. Register each on the map's storage before
    /// applying updates.
    pub index_registrations: Vec<(MapId, Vec<usize>)>,
    /// The static-analysis findings attached by [`lower`]: Warning/Info only —
    /// Error-severity findings deny lowering with [`LowerError::Rejected`] instead.
    /// Read through [`ExecPlan::audit`].
    pub diagnostics: Vec<Diagnostic>,
}

/// A problem found while lowering (all are compiler-invariant violations: programs
/// produced by [`crate::compile`](crate::compile()) always lower).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LowerError {
    /// The program failed structural validation.
    Invalid(IrError),
    /// A scalar, guard or target key reads a variable before any lookup binds it.
    UnboundVariable {
        /// The offending variable.
        var: String,
        /// The relation of the trigger containing the offending statement.
        relation: String,
    },
    /// A trigger uses more than `u16::MAX` distinct variables.
    TooManyVariables {
        /// The relation of the oversized trigger.
        relation: String,
    },
    /// A plan op reads a frame slot before any parameter or enumeration binds it, or
    /// names a slot beyond the trigger's frame — a lowering-invariant violation caught
    /// by [`ExecPlan::verify_slot_liveness`]. Without this audit the executor would
    /// read the placeholder value the frame is initialized with and silently compute
    /// with garbage.
    UnboundSlot {
        /// The offending slot.
        slot: Slot,
        /// The relation of the trigger containing the offending op.
        relation: String,
    },
    /// The static analyzer found an Error-severity problem
    /// ([`analysis::analyze`]): executing the plan would silently compute wrong
    /// results, so lowering refuses to emit it. Warnings and infos do not deny —
    /// they are attached to the plan ([`ExecPlan::diagnostics`]).
    Rejected(Box<Diagnostic>),
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::Invalid(e) => write!(f, "invalid trigger program: {e}"),
            LowerError::UnboundVariable { var, relation } => {
                write!(
                    f,
                    "variable {var} read before bound in a trigger on {relation}"
                )
            }
            LowerError::TooManyVariables { relation } => {
                write!(f, "trigger on {relation} exceeds the u16 slot space")
            }
            LowerError::UnboundSlot { slot, relation } => {
                write!(
                    f,
                    "plan reads slot ${slot} before it is bound in a trigger on {relation} \
                     (lowering bug)"
                )
            }
            LowerError::Rejected(diag) => {
                write!(f, "static analysis rejected the plan: {diag}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

impl From<IrError> for LowerError {
    fn from(e: IrError) -> Self {
        LowerError::Invalid(e)
    }
}

impl ExecPlan {
    /// The plan trigger matching a relation and sign, if any.
    pub fn trigger(&self, relation: &str, sign: Sign) -> Option<&PlanTrigger> {
        self.triggers
            .iter()
            .find(|t| t.relation == relation && t.sign == sign)
    }

    /// The static-analysis findings [`lower`] attached to this plan. Always free of
    /// Error severity — an Error denies lowering with [`LowerError::Rejected`] — so
    /// what remains is Warnings (wasted work or memory) and Infos (e.g. why weighted
    /// firing is blocked). See [`analysis`] for the code table.
    pub fn audit(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Total number of ops across all statements of all triggers (a size measure used by
    /// diagnostics and tests).
    pub fn op_count(&self) -> usize {
        self.triggers
            .iter()
            .flat_map(|t| &t.statements)
            .map(|s| s.ops.len())
            .sum()
    }

    /// Audits the plan's slot dataflow: every slot a probe key, enumeration binding,
    /// scalar, guard or target key *reads* must have been *written* first (by a trigger
    /// parameter or an earlier `Enumerate` bind of the same statement), and every slot
    /// must fit within the trigger's frame.
    ///
    /// The executor initializes unbound frame slots with a placeholder value, so a plan
    /// that violates this invariant would not crash — it would silently compute with
    /// garbage. [`lower`] runs this audit on every plan it produces (it is O(plan) and
    /// paid once per program, not per update), turning any such lowering bug into a loud
    /// [`LowerError::UnboundSlot`] at construction time.
    pub fn verify_slot_liveness(&self) -> Result<(), LowerError> {
        for trigger in &self.triggers {
            let err = |slot: Slot| LowerError::UnboundSlot {
                slot,
                relation: trigger.relation.clone(),
            };
            let in_frame = |slot: Slot| (slot as usize) < trigger.frame_len;
            for &p in &trigger.param_slots {
                if !in_frame(p) {
                    return Err(err(p));
                }
            }
            for stmt in &trigger.statements {
                // The bound set is per statement: parameters plus earlier binds.
                let mut bound: HashSet<Slot> = trigger.param_slots.iter().copied().collect();
                let read = |slot: Slot, bound: &HashSet<Slot>| {
                    if in_frame(slot) && bound.contains(&slot) {
                        Ok(())
                    } else {
                        Err(err(slot))
                    }
                };
                for op in &stmt.ops {
                    match op {
                        PlanOp::Probe { key_slots, .. } => {
                            for &s in key_slots {
                                read(s, &bound)?;
                            }
                        }
                        PlanOp::Enumerate {
                            bound_slots,
                            unbound,
                            ..
                        } => {
                            for &s in bound_slots {
                                read(s, &bound)?;
                            }
                            for u in unbound {
                                match *u {
                                    UnboundKey::Bind { slot, .. } => {
                                        if !in_frame(slot) {
                                            return Err(err(slot));
                                        }
                                        bound.insert(slot);
                                    }
                                    // A Check compares against a slot bound earlier —
                                    // by a parameter, a previous lookup, or a Bind
                                    // earlier in this same enumeration.
                                    UnboundKey::Check { slot, .. } => read(slot, &bound)?,
                                }
                            }
                        }
                        PlanOp::Scalar(expr) => check_expr_slots(expr, &bound, &read)?,
                        PlanOp::Guard(_, lhs, rhs) => {
                            check_expr_slots(lhs, &bound, &read)?;
                            check_expr_slots(rhs, &bound, &read)?;
                        }
                    }
                }
                for &s in &stmt.target_slots {
                    read(s, &bound)?;
                }
            }
        }
        Ok(())
    }
}

/// Walks a slot expression and applies the liveness check to every slot it reads.
fn check_expr_slots(
    expr: &SlotExpr,
    bound: &HashSet<Slot>,
    read: &impl Fn(Slot, &HashSet<Slot>) -> Result<(), LowerError>,
) -> Result<(), LowerError> {
    match expr {
        SlotExpr::Const(_) => Ok(()),
        SlotExpr::Slot(s) => read(*s, bound),
        SlotExpr::Add(a, b) | SlotExpr::Mul(a, b) => {
            check_expr_slots(a, bound, read)?;
            check_expr_slots(b, bound, read)
        }
        SlotExpr::Neg(a) => check_expr_slots(a, bound, read),
    }
}

/// Lowers a validated trigger program to its slot-resolved execution plan.
pub fn lower(program: &TriggerProgram) -> Result<ExecPlan, LowerError> {
    program.validate()?;
    let mut registrations: Vec<(MapId, Vec<usize>)> = Vec::new();
    let mut seen_patterns: HashSet<(MapId, Vec<usize>)> = HashSet::new();
    let mut triggers = Vec::with_capacity(program.triggers.len());
    for trigger in &program.triggers {
        triggers.push(lower_trigger(
            trigger,
            &mut registrations,
            &mut seen_patterns,
        )?);
    }
    let mut plan = ExecPlan {
        triggers,
        map_arities: program.maps.iter().map(|m| m.key_vars.len()).collect(),
        index_registrations: registrations,
        diagnostics: Vec::new(),
    };
    // Belt-and-braces: lowering tracks bound-ness while it builds the plan, but a bug
    // there would make the executor read placeholder frame slots and return wrong
    // numbers silently. Audit the finished plan so that failure mode is impossible.
    plan.verify_slot_liveness()?;
    // Run the full analyzer pipeline: Error-severity findings (ordering violations,
    // self-read/writes, missing index registrations) deny the plan outright — today
    // they would silently corrupt results at runtime; Warnings and Infos ride along
    // on the plan for `ExecPlan::audit` / `Ring::audit` / `dbring-lint`.
    let diagnostics = analysis::analyze(program, &plan);
    if let Some(error) = diagnostics
        .iter()
        .find(|d| d.severity == analysis::Severity::Error)
    {
        return Err(LowerError::Rejected(Box::new(error.clone())));
    }
    plan.diagnostics = diagnostics;
    Ok(plan)
}

/// Assigns `name` a slot, reusing an existing assignment.
fn intern<'a>(
    slots: &mut HashMap<&'a str, Slot>,
    name: &'a str,
    relation: &str,
) -> Result<Slot, LowerError> {
    if let Some(&s) = slots.get(name) {
        return Ok(s);
    }
    let s = Slot::try_from(slots.len()).map_err(|_| LowerError::TooManyVariables {
        relation: relation.to_string(),
    })?;
    slots.insert(name, s);
    Ok(s)
}

fn lower_trigger(
    trigger: &crate::ir::Trigger,
    registrations: &mut Vec<(MapId, Vec<usize>)>,
    seen_patterns: &mut HashSet<(MapId, Vec<usize>)>,
) -> Result<PlanTrigger, LowerError> {
    let relation = trigger.relation.as_str();
    let mut slots: HashMap<&str, Slot> = HashMap::new();
    let mut param_slots = Vec::with_capacity(trigger.params.len());
    for p in &trigger.params {
        param_slots.push(intern(&mut slots, p, relation)?);
    }

    let mut statements = Vec::with_capacity(trigger.statements.len());
    for stmt in &trigger.statements {
        // The bound set is static per statement: parameters, then whatever earlier
        // lookups of this statement have bound.
        let mut bound: HashSet<Slot> = param_slots.iter().copied().collect();
        let mut ops = Vec::with_capacity(stmt.factors.len());
        for factor in &stmt.factors {
            match factor {
                RhsFactor::MapLookup { map, keys } => {
                    let mut key_slots = Vec::with_capacity(keys.len());
                    let mut all_bound = true;
                    for k in keys {
                        let s = intern(&mut slots, k, relation)?;
                        all_bound &= bound.contains(&s);
                        key_slots.push(s);
                    }
                    if all_bound {
                        ops.push(PlanOp::Probe {
                            map: *map,
                            key_slots,
                        });
                        continue;
                    }
                    let mut bound_positions = Vec::new();
                    let mut bound_slots = Vec::new();
                    let mut unbound = Vec::new();
                    for (position, &slot) in key_slots.iter().enumerate() {
                        if bound.contains(&slot) {
                            bound_positions.push(position);
                            bound_slots.push(slot);
                        } else if unbound
                            .iter()
                            .any(|u| matches!(u, UnboundKey::Bind { slot: s, .. } if *s == slot))
                        {
                            // Repeated free variable within this lookup: consistency
                            // check against its first occurrence.
                            unbound.push(UnboundKey::Check { position, slot });
                        } else {
                            unbound.push(UnboundKey::Bind { position, slot });
                        }
                    }
                    if !bound_positions.is_empty() && bound_positions.len() < keys.len() {
                        let pattern = (*map, bound_positions.clone());
                        if seen_patterns.insert(pattern.clone()) {
                            registrations.push(pattern);
                        }
                    }
                    for u in &unbound {
                        if let UnboundKey::Bind { slot, .. } = u {
                            bound.insert(*slot);
                        }
                    }
                    ops.push(PlanOp::Enumerate {
                        map: *map,
                        bound_positions,
                        bound_slots,
                        unbound,
                    });
                }
                RhsFactor::Scalar(term) => {
                    ops.push(PlanOp::Scalar(lower_scalar(
                        term, &mut slots, &bound, relation,
                    )?));
                }
                RhsFactor::Guard(op, lhs, rhs) => {
                    let l = lower_scalar(lhs, &mut slots, &bound, relation)?;
                    let r = lower_scalar(rhs, &mut slots, &bound, relation)?;
                    ops.push(PlanOp::Guard(*op, l, r));
                }
            }
        }
        let mut target_slots = Vec::with_capacity(stmt.target_keys.len());
        for var in &stmt.target_keys {
            let s = intern(&mut slots, var, relation)?;
            if !bound.contains(&s) {
                return Err(LowerError::UnboundVariable {
                    var: var.clone(),
                    relation: relation.to_string(),
                });
            }
            target_slots.push(s);
        }
        statements.push(PlanStatement {
            target: stmt.target,
            target_slots,
            coefficient: stmt.coefficient,
            ops,
        });
    }

    let weighted_firing = trigger.supports_weighted_firing();
    // The analyzer re-derives this from the statement-level conflict graph; the two
    // must agree exactly (also property-tested in tests/analysis_properties.rs).
    debug_assert_eq!(
        weighted_firing,
        crate::analysis::derived_weighted_firing(trigger),
        "conflict-graph weighted firing drifted from Trigger::supports_weighted_firing"
    );
    Ok(PlanTrigger {
        relation: trigger.relation.clone(),
        sign: trigger.sign,
        param_slots,
        frame_len: slots.len(),
        weighted_firing,
        statements,
    })
}

fn lower_scalar<'a>(
    term: &'a ScalarExpr,
    slots: &mut HashMap<&'a str, Slot>,
    bound: &HashSet<Slot>,
    relation: &str,
) -> Result<SlotExpr, LowerError> {
    match term {
        ScalarExpr::Const(v) => Ok(SlotExpr::Const(v.clone())),
        ScalarExpr::Var(x) => {
            let s = intern(slots, x, relation)?;
            if !bound.contains(&s) {
                return Err(LowerError::UnboundVariable {
                    var: x.clone(),
                    relation: relation.to_string(),
                });
            }
            Ok(SlotExpr::Slot(s))
        }
        ScalarExpr::Add(a, b) => Ok(SlotExpr::Add(
            Box::new(lower_scalar(a, slots, bound, relation)?),
            Box::new(lower_scalar(b, slots, bound, relation)?),
        )),
        ScalarExpr::Mul(a, b) => Ok(SlotExpr::Mul(
            Box::new(lower_scalar(a, slots, bound, relation)?),
            Box::new(lower_scalar(b, slots, bound, relation)?),
        )),
        ScalarExpr::Neg(a) => Ok(SlotExpr::Neg(Box::new(lower_scalar(
            a, slots, bound, relation,
        )?))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use dbring_agca::parser::parse_query;
    use dbring_relations::Database;

    fn lowered(catalog: &Database, q: &str) -> (TriggerProgram, ExecPlan) {
        let query = parse_query(q).unwrap();
        let program = compile(catalog, &query).unwrap();
        let plan = lower(&program).unwrap();
        (program, plan)
    }

    #[test]
    fn self_join_count_lowers_to_probes_only() {
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        let (program, plan) = lowered(&catalog, "q := Sum(R(x) * R(y) * (x = y))");
        assert_eq!(plan.triggers.len(), program.triggers.len());
        assert_eq!(plan.map_arities.len(), program.maps.len());
        // Every lookup in this program is fully bound by the trigger parameter — the plan
        // must contain no Enumerate ops and need no slice indexes.
        for t in &plan.triggers {
            assert_eq!(t.param_slots, vec![0]);
            for s in &t.statements {
                for op in &s.ops {
                    assert!(
                        !matches!(op, PlanOp::Enumerate { .. }),
                        "unexpected enumerate in {op:?}"
                    );
                }
            }
        }
        assert!(plan.index_registrations.is_empty());
        assert!(plan.op_count() > 0);
    }

    #[test]
    fn customers_query_gets_an_enumerate_with_a_registered_index() {
        let mut catalog = Database::new();
        catalog.declare("C", &["cid", "nation"]).unwrap();
        let (_, plan) = lowered(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))");
        let enumerates: Vec<_> = plan
            .triggers
            .iter()
            .flat_map(|t| &t.statements)
            .flat_map(|s| &s.ops)
            .filter_map(|op| match op {
                PlanOp::Enumerate {
                    map,
                    bound_positions,
                    bound_slots,
                    unbound,
                } => Some((map, bound_positions, bound_slots, unbound)),
                _ => None,
            })
            .collect();
        assert!(!enumerates.is_empty(), "group-by self-join must enumerate");
        for (map, bound_positions, bound_slots, unbound) in &enumerates {
            assert_eq!(bound_positions.len(), bound_slots.len());
            assert!(!unbound.is_empty());
            // Partially-bound patterns must be registered for slice indexing.
            if !bound_positions.is_empty() {
                assert!(plan
                    .index_registrations
                    .iter()
                    .any(|(m, p)| m == *map && p == *bound_positions));
            }
        }
        // Registrations are deduplicated.
        let mut regs = plan.index_registrations.clone();
        regs.sort();
        regs.dedup();
        assert_eq!(regs.len(), plan.index_registrations.len());
    }

    #[test]
    fn params_occupy_the_first_slots_and_frames_cover_loop_vars() {
        let mut catalog = Database::new();
        catalog.declare("C", &["cid", "nation"]).unwrap();
        let (program, plan) = lowered(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))");
        for (t, pt) in program.triggers.iter().zip(&plan.triggers) {
            assert_eq!(t.relation, pt.relation);
            assert_eq!(t.sign, pt.sign);
            assert_eq!(pt.param_slots, vec![0, 1]);
            assert!(pt.frame_len >= t.params.len());
            for s in &pt.statements {
                for &slot in &s.target_slots {
                    assert!((slot as usize) < pt.frame_len);
                }
            }
        }
        assert!(plan.trigger("C", Sign::Insert).is_some());
        assert!(plan.trigger("Z", Sign::Insert).is_none());
    }

    #[test]
    fn repeated_free_variable_in_one_lookup_checks_consistency() {
        use crate::ir::{MapDef, Statement, Trigger};
        use dbring_agca::ast::Expr;
        // Hand-built: on +R(p): q[] += m1[x, x] — `x` is free, so the lookup enumerates
        // the whole of m1 and must keep only diagonal entries.
        let program = TriggerProgram {
            maps: vec![
                MapDef {
                    id: 0,
                    name: "q".into(),
                    key_vars: vec![],
                    definition: Expr::int(0),
                    degree: 0,
                },
                MapDef {
                    id: 1,
                    name: "m1".into(),
                    key_vars: vec!["a".into(), "b".into()],
                    definition: Expr::int(0),
                    degree: 1,
                },
            ],
            triggers: vec![Trigger {
                relation: "R".into(),
                sign: Sign::Insert,
                params: vec!["@R_A".into()],
                statements: vec![Statement {
                    target: 0,
                    target_keys: vec![],
                    coefficient: Number::Int(1),
                    factors: vec![RhsFactor::MapLookup {
                        map: 1,
                        keys: vec!["x".into(), "x".into()],
                    }],
                }],
            }],
            output: 0,
        };
        let plan = lower(&program).unwrap();
        let ops = &plan.triggers[0].statements[0].ops;
        match &ops[0] {
            PlanOp::Enumerate {
                bound_positions,
                unbound,
                ..
            } => {
                assert!(bound_positions.is_empty());
                assert_eq!(unbound.len(), 2);
                assert!(matches!(unbound[0], UnboundKey::Bind { position: 0, .. }));
                assert!(matches!(unbound[1], UnboundKey::Check { position: 1, .. }));
            }
            other => panic!("expected enumerate, got {other:?}"),
        }
        // A fully-unbound pattern needs no slice index.
        assert!(plan.index_registrations.is_empty());
    }

    #[test]
    fn lowering_rejects_invalid_programs() {
        use crate::ir::{MapDef, Statement, Trigger};
        use dbring_agca::ast::Expr;
        let mut program = TriggerProgram {
            maps: vec![MapDef {
                id: 0,
                name: "q".into(),
                key_vars: vec![],
                definition: Expr::int(0),
                degree: 0,
            }],
            triggers: vec![Trigger {
                relation: "R".into(),
                sign: Sign::Insert,
                params: vec!["@R_A".into()],
                statements: vec![Statement {
                    target: 99,
                    target_keys: vec![],
                    coefficient: Number::Int(1),
                    factors: vec![],
                }],
            }],
            output: 0,
        };
        assert!(matches!(
            lower(&program),
            Err(LowerError::Invalid(IrError::DanglingMapReference(99)))
        ));
        program.triggers[0].statements[0].target = 0;
        // A scalar that reads `x` *before* the lookup that binds it: `validate` accepts
        // this (the variable is bound by *some* lookup) but lowering must reject the
        // out-of-order read — the compiler always emits lookups first.
        program.maps.push(MapDef {
            id: 1,
            name: "m1".into(),
            key_vars: vec!["k".into()],
            definition: Expr::int(0),
            degree: 1,
        });
        program.triggers[0].statements[0].factors = vec![
            RhsFactor::Scalar(ScalarExpr::Var("x".into())),
            RhsFactor::MapLookup {
                map: 1,
                keys: vec!["x".into()],
            },
        ];
        let err = lower(&program).unwrap_err();
        assert!(matches!(err, LowerError::UnboundVariable { ref var, .. } if var == "x"));
        assert!(err.to_string().contains("read before bound"));
    }

    /// Regression (silent-failure edge): a plan op reading a frame slot nothing bound
    /// would make the executor compute with the placeholder value the frame is
    /// initialized with. The liveness audit must reject such a plan loudly.
    #[test]
    fn slot_liveness_audit_rejects_read_before_bind_plans() {
        let mut catalog = Database::new();
        catalog.declare("C", &["cid", "nation"]).unwrap();
        let (_, plan) = lowered(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))");
        // Every plan lower() produces passes its own audit.
        plan.verify_slot_liveness().unwrap();

        // Corrupt the plan the way a lowering bug would: make a probe read a slot no
        // parameter and no enumeration ever writes.
        let mut broken = plan.clone();
        let bogus = broken.triggers[0].frame_len as Slot; // one past the frame
        let stmt = &mut broken.triggers[0].statements[0];
        match stmt
            .ops
            .iter_mut()
            .find(|op| matches!(op, PlanOp::Probe { .. }))
        {
            Some(PlanOp::Probe { key_slots, .. }) => key_slots.push(bogus),
            _ => {
                // No probe in the first statement: corrupt a target slot instead.
                stmt.target_slots.push(bogus);
            }
        }
        let err = broken.verify_slot_liveness().unwrap_err();
        assert!(
            matches!(err, LowerError::UnboundSlot { slot, .. } if slot == bogus),
            "expected UnboundSlot, got {err:?}"
        );
        assert!(err.to_string().contains("before it is bound"));

        // An in-frame slot that is simply never bound is equally rejected: an Enumerate
        // bound_slot pointing at a loop variable's slot before its Bind runs.
        let mut unbound_read = plan;
        for trigger in &mut unbound_read.triggers {
            for stmt in &mut trigger.statements {
                if let Some(PlanOp::Enumerate {
                    unbound,
                    bound_positions,
                    bound_slots,
                    ..
                }) = stmt
                    .ops
                    .iter_mut()
                    .find(|op| matches!(op, PlanOp::Enumerate { .. }))
                {
                    if let Some(UnboundKey::Bind { position, slot }) = unbound.first().copied() {
                        // Pretend the position was already bound: reads the slot early.
                        unbound.remove(0);
                        bound_positions.insert(0, position);
                        bound_slots.insert(0, slot);
                        let err = unbound_read.verify_slot_liveness().unwrap_err();
                        assert!(matches!(err, LowerError::UnboundSlot { .. }));
                        return;
                    }
                }
            }
        }
        panic!("corpus query must contain an enumerate with a Bind");
    }

    #[test]
    fn weighted_firing_marks_degree_one_triggers_only() {
        let mut catalog = Database::new();
        catalog.declare("R", &["A"]).unwrap();
        catalog.declare("C", &["cid", "nation"]).unwrap();
        catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();

        // Self-join: the trigger reads the count view it maintains — unit replay only.
        let (program, plan) = lowered(&catalog, "q := Sum(R(x) * R(y) * (x = y))");
        for (t, pt) in program.triggers.iter().zip(&plan.triggers) {
            assert!(!pt.weighted_firing, "self-join trigger on {}", pt.relation);
            assert_eq!(pt.weighted_firing, t.supports_weighted_firing());
        }

        // Group-by self-join: same story.
        let (_, plan) = lowered(&catalog, "q[c] := Sum(C(c, n) * C(c2, n))");
        assert!(plan.triggers.iter().all(|t| !t.weighted_firing));

        // A pure per-group aggregation reads no maps at all — weighted firing is sound.
        let query = dbring_agca::sql::parse_sql(
            "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
            &catalog,
        )
        .unwrap();
        let program = compile(&catalog, &query).unwrap();
        let plan = lower(&program).unwrap();
        assert!(
            plan.triggers.iter().all(|t| t.weighted_firing),
            "degree-1 aggregation triggers must allow weighted firing"
        );
    }

    #[test]
    fn slot_expr_display_and_error_display() {
        let e = SlotExpr::Mul(
            Box::new(SlotExpr::Slot(3)),
            Box::new(SlotExpr::Add(
                Box::new(SlotExpr::Const(Value::int(2))),
                Box::new(SlotExpr::Neg(Box::new(SlotExpr::Slot(0)))),
            )),
        );
        assert_eq!(e.to_string(), "($3 * (2 + (-$0)))");
        assert!(LowerError::TooManyVariables {
            relation: "R".into()
        }
        .to_string()
        .contains("u16"));
    }
}
