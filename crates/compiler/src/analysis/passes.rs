//! The individual analysis passes. Each pass is a pure function from a trigger (or a
//! plan) to the raw facts it finds; [`crate::analysis::analyze`] turns those facts
//! into [`Diagnostic`](crate::analysis::Diagnostic) values with stable codes.
//!
//! The pass functions are public so callers that want the *facts* — not rendered
//! diagnostics — can reuse them: [`TriggerProgram::validate`](crate::ir::TriggerProgram::validate)
//! calls [`statement_order_violations`] directly (so the IR-level entry point and the
//! analyzer cannot drift), and the weighted-firing property tests compare
//! [`derived_weighted_firing`] against
//! [`Trigger::supports_weighted_firing`](crate::ir::Trigger::supports_weighted_firing).

use std::collections::{BTreeMap, BTreeSet};

use crate::analysis::effects::{op_uses, trigger_effects};
use crate::ir::{MapId, Trigger};
use crate::lower::{ExecPlan, PlanOp, PlanStatement, Slot, UnboundKey};

/// One violation of the statement-ordering invariant: a statement reads a map that an
/// *earlier* statement of the same trigger already updated, so the read sees
/// post-update values and the maintained results silently drift.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OrderViolation {
    /// Index of the earlier statement that writes the map.
    pub writer: usize,
    /// Index of the later statement that reads it.
    pub reader: usize,
    /// The map written-then-read.
    pub map: MapId,
}

/// Finds every write-then-read pair among a trigger's statements: statement `i`
/// targets map `m` and some statement `j > i` looks `m` up. The compiler's
/// decreasing-degree statement order makes this impossible for compiled programs
/// (a statement only reads maps of strictly lower degree than its target), so any
/// hit is a hand-built or corrupted program that would corrupt results at runtime.
///
/// A statement reading its *own* target is reported by [`self_read_writes`], not
/// here: no ordering of statements can fix it.
pub fn statement_order_violations(trigger: &Trigger) -> Vec<OrderViolation> {
    let effects = trigger_effects(trigger);
    // First writer index of each map, so each (reader, map) pair is reported once
    // against the earliest offending writer.
    let mut first_writer: BTreeMap<MapId, usize> = BTreeMap::new();
    let mut out = Vec::new();
    for (j, stmt) in effects.statements.iter().enumerate() {
        for &map in &stmt.reads {
            if let Some(&i) = first_writer.get(&map) {
                out.push(OrderViolation {
                    writer: i,
                    reader: j,
                    map,
                });
            }
        }
        first_writer.entry(stmt.writes).or_insert(j);
    }
    out
}

/// Finds every statement that reads the map it writes (target appears among its own
/// lookups). Such a statement violates update-before-read within itself — whether the
/// lookup sees the pre- or post-update value depends on executor write buffering, so
/// its semantics are not well-defined by the IR alone.
pub fn self_read_writes(trigger: &Trigger) -> Vec<(usize, MapId)> {
    trigger_effects(trigger)
        .statements
        .iter()
        .enumerate()
        .filter(|(_, e)| e.reads.contains(&e.writes))
        .map(|(i, e)| (i, e.writes))
        .collect()
}

/// One read/write conflict between two statements of a trigger (possibly the same
/// statement): `reader` looks up a map that `writer` targets. Any such conflict
/// makes weighted batch firing unsound — firing once with writes scaled by `k`
/// assumes every firing reads state independent of the firings before it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FiringConflict {
    /// Index of the statement reading the conflicted map.
    pub reader: usize,
    /// Index of the statement writing it.
    pub writer: usize,
    /// The conflicted map.
    pub map: MapId,
}

/// The first read/write conflict of a trigger's statement-level conflict graph, in
/// (reader, lookup) order — `None` exactly when weighted firing is sound.
pub fn weighted_firing_conflict(trigger: &Trigger) -> Option<FiringConflict> {
    let effects = trigger_effects(trigger);
    // First writer of each map (any order — unlike the ordering pass, a read *before*
    // the write conflicts too: the next firing of the batch re-reads the updated map).
    let mut first_writer: BTreeMap<MapId, usize> = BTreeMap::new();
    for (i, stmt) in effects.statements.iter().enumerate() {
        first_writer.entry(stmt.writes).or_insert(i);
    }
    for (j, stmt) in effects.statements.iter().enumerate() {
        for &map in &stmt.reads {
            if let Some(&i) = first_writer.get(&map) {
                return Some(FiringConflict {
                    reader: j,
                    writer: i,
                    map,
                });
            }
        }
    }
    None
}

/// Whether weighted batch firing is sound for this trigger, derived from the
/// statement-level read/write conflict graph. Agrees exactly with
/// [`Trigger::supports_weighted_firing`](crate::ir::Trigger::supports_weighted_firing)
/// (property-tested in `tests/analysis_properties.rs`): both are `true` iff no
/// statement reads a map any statement writes.
pub fn derived_weighted_firing(trigger: &Trigger) -> bool {
    weighted_firing_conflict(trigger).is_none()
}

/// A dead `Enumerate` bind: op `op` of a lowered statement binds `slot`, and no later
/// op of the statement (including later `Check`s of the same enumeration) and no
/// target key ever reads it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeadBind {
    /// Index of the `Enumerate` op containing the dead bind.
    pub op: usize,
    /// Index of the bind within the op's `unbound` list.
    pub unbound_index: usize,
    /// The enumerated map.
    pub map: MapId,
    /// The slot bound but never read.
    pub slot: Slot,
}

/// Finds every dead bind of a lowered statement. The enumeration itself stays
/// meaningful (each matching entry still multiplies its value into the accumulator);
/// only materializing the key component into the frame is wasted — the classic
/// candidate for projecting the enumerated view's key down.
pub fn dead_binds(stmt: &PlanStatement) -> Vec<DeadBind> {
    let mut out = Vec::new();
    for (k, op) in stmt.ops.iter().enumerate() {
        let PlanOp::Enumerate { map, unbound, .. } = op else {
            continue;
        };
        for (u, entry) in unbound.iter().enumerate() {
            let UnboundKey::Bind { slot, .. } = *entry else {
                continue;
            };
            // Used by a later Check of this same enumeration?
            let mut used = unbound[u + 1..]
                .iter()
                .any(|e| matches!(*e, UnboundKey::Check { slot: s, .. } if s == slot));
            // Used by any later op? (A later *re-bind* of the same slot is a
            // redefinition, not a use — op_uses already excludes Binds.)
            let mut later_uses = BTreeSet::new();
            for later in &stmt.ops[k + 1..] {
                op_uses(later, &mut later_uses);
            }
            used = used || later_uses.contains(&slot) || stmt.target_slots.contains(&slot);
            if !used {
                out.push(DeadBind {
                    op: k,
                    unbound_index: u,
                    map: *map,
                    slot,
                });
            }
        }
    }
    out
}

/// A probe duplicating an earlier probe of the same statement: same map, identical
/// key slots. Semantically it squares the looked-up value — but the *read* is
/// redundant: the value could be fetched once and reused.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RedundantProbe {
    /// Index of the duplicated (later) probe op.
    pub op: usize,
    /// Index of the earlier identical probe.
    pub first: usize,
    /// The probed map.
    pub map: MapId,
    /// The shared key slots.
    pub key_slots: Vec<Slot>,
}

/// Finds every probe of a statement that duplicates an earlier probe exactly.
pub fn redundant_probes(stmt: &PlanStatement) -> Vec<RedundantProbe> {
    let mut seen: BTreeMap<(MapId, Vec<Slot>), usize> = BTreeMap::new();
    let mut out = Vec::new();
    for (k, op) in stmt.ops.iter().enumerate() {
        let PlanOp::Probe { map, key_slots } = op else {
            continue;
        };
        match seen.get(&(*map, key_slots.clone())) {
            Some(&first) => out.push(RedundantProbe {
                op: k,
                first,
                map: *map,
                key_slots: key_slots.clone(),
            }),
            None => {
                seen.insert((*map, key_slots.clone()), k);
            }
        }
    }
    out
}

/// A consistency `Check` duplicating an earlier entry of the same enumeration:
/// identical `(position, slot)` pair checked twice. The second comparison can never
/// fail if the first held.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RedundantCheck {
    /// Index of the `Enumerate` op containing the duplicate.
    pub op: usize,
    /// Index of the duplicated entry within the op's `unbound` list.
    pub unbound_index: usize,
    /// The enumerated map.
    pub map: MapId,
    /// The checked key position.
    pub position: usize,
    /// The frame slot compared against.
    pub slot: Slot,
}

/// Finds duplicated consistency checks within each `Enumerate` of a statement.
pub fn redundant_checks(stmt: &PlanStatement) -> Vec<RedundantCheck> {
    let mut out = Vec::new();
    for (k, op) in stmt.ops.iter().enumerate() {
        let PlanOp::Enumerate { map, unbound, .. } = op else {
            continue;
        };
        let mut seen: BTreeSet<(usize, Slot)> = BTreeSet::new();
        for (u, entry) in unbound.iter().enumerate() {
            if let UnboundKey::Check { position, slot } = *entry {
                if !seen.insert((position, slot)) {
                    out.push(RedundantCheck {
                        op: k,
                        unbound_index: u,
                        map: *map,
                        position,
                        slot,
                    });
                }
            }
        }
    }
    out
}

/// The two directions of the index-registration cross-check: patterns registered but
/// used by no `Enumerate` (pure memory waste — every update pays to maintain a slice
/// index nothing reads), and patterns an `Enumerate` relies on with no registration
/// (the latent wrong-results/scan bug class the runtime used to hit dynamically).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct IndexAudit {
    /// Registered `(map, bound positions)` patterns no `Enumerate` uses.
    pub unused: Vec<(MapId, Vec<usize>)>,
    /// `(map, bound positions)` patterns used by an `Enumerate` but never registered.
    pub missing: Vec<(MapId, Vec<usize>)>,
}

/// Cross-checks [`ExecPlan::index_registrations`] against the partially-bound
/// `Enumerate` patterns the plan's ops actually use. Fully-unbound enumerations scan
/// the whole map and need no slice index, so they are exempt on both sides.
pub fn index_audit(plan: &ExecPlan) -> IndexAudit {
    let mut used: BTreeSet<(MapId, Vec<usize>)> = BTreeSet::new();
    for trigger in &plan.triggers {
        for stmt in &trigger.statements {
            for op in &stmt.ops {
                if let PlanOp::Enumerate {
                    map,
                    bound_positions,
                    ..
                } = op
                {
                    if !bound_positions.is_empty() {
                        used.insert((*map, bound_positions.clone()));
                    }
                }
            }
        }
    }
    let registered: BTreeSet<(MapId, Vec<usize>)> =
        plan.index_registrations.iter().cloned().collect();
    IndexAudit {
        unused: registered.difference(&used).cloned().collect(),
        missing: used.difference(&registered).cloned().collect(),
    }
}
