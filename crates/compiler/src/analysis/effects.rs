//! Effect sets: what each statement reads and writes.
//!
//! Two granularities, matching the two program representations:
//!
//! * **Map-level** effects over the trigger IR ([`StatementEffects`],
//!   [`TriggerEffects`]): which maps a statement reads via lookups and which map it
//!   writes (its target). These drive the ordering pass, the self-read/write pass and
//!   the weighted-firing conflict derivation.
//! * **Slot-level** def/use over the lowered plan ([`SlotEffects`], [`op_defs`],
//!   [`op_uses`]): which frame slots each [`PlanOp`] defines (an `Enumerate` bind) and
//!   which it uses (probe keys, bound keys, consistency checks, scalars, guards).
//!   These drive the dead-bind dataflow pass.
//!
//! Everything here is pure and allocation-light; the analyzer runs at lowering time
//! only, never on the per-update hot path.

use std::collections::BTreeSet;

use crate::ir::{MapId, RhsFactor, Statement, Trigger};
use crate::lower::{PlanOp, PlanStatement, Slot, SlotExpr, UnboundKey};

/// The map-level effects of one trigger statement.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatementEffects {
    /// The map the statement writes (its target).
    pub writes: MapId,
    /// The maps the statement reads via `MapLookup` factors, deduplicated.
    pub reads: BTreeSet<MapId>,
}

/// The map-level effects of a whole trigger: per statement, plus the unions the
/// trigger-level passes (weighted firing) work on.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TriggerEffects {
    /// Effects of each statement, in statement order.
    pub statements: Vec<StatementEffects>,
    /// Every map written by any statement.
    pub writes: BTreeSet<MapId>,
    /// Every map read by any statement.
    pub reads: BTreeSet<MapId>,
}

/// Computes the map-level effect set of one statement.
pub fn statement_effects(stmt: &Statement) -> StatementEffects {
    let reads = stmt
        .factors
        .iter()
        .filter_map(|f| match f {
            RhsFactor::MapLookup { map, .. } => Some(*map),
            RhsFactor::Scalar(_) | RhsFactor::Guard(..) => None,
        })
        .collect();
    StatementEffects {
        writes: stmt.target,
        reads,
    }
}

/// Computes the map-level effect sets of a whole trigger.
pub fn trigger_effects(trigger: &Trigger) -> TriggerEffects {
    let statements: Vec<StatementEffects> =
        trigger.statements.iter().map(statement_effects).collect();
    let writes = statements.iter().map(|e| e.writes).collect();
    let reads = statements
        .iter()
        .flat_map(|e| e.reads.iter().copied())
        .collect();
    TriggerEffects {
        statements,
        writes,
        reads,
    }
}

/// The slot-level def/use summary of one lowered statement.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SlotEffects {
    /// Slots defined by `Enumerate` binds of this statement (trigger parameters are
    /// defined at the trigger level, before any statement runs, and are not included).
    pub defs: BTreeSet<Slot>,
    /// Slots read anywhere in the statement: probe keys, bound enumeration keys,
    /// consistency checks, scalar and guard operands, and the target keys.
    pub uses: BTreeSet<Slot>,
}

/// Computes the slot-level def/use summary of one lowered statement.
pub fn slot_effects(stmt: &PlanStatement) -> SlotEffects {
    let mut effects = SlotEffects::default();
    for op in &stmt.ops {
        effects.defs.extend(op_defs(op));
        op_uses(op, &mut effects.uses);
    }
    effects.uses.extend(stmt.target_slots.iter().copied());
    effects
}

/// The slots a plan op *defines* (writes into the frame): the `Bind` slots of an
/// `Enumerate`. All other ops define nothing.
pub fn op_defs(op: &PlanOp) -> Vec<Slot> {
    match op {
        PlanOp::Enumerate { unbound, .. } => unbound
            .iter()
            .filter_map(|u| match *u {
                UnboundKey::Bind { slot, .. } => Some(slot),
                UnboundKey::Check { .. } => None,
            })
            .collect(),
        PlanOp::Probe { .. } | PlanOp::Scalar(_) | PlanOp::Guard(..) => Vec::new(),
    }
}

/// Accumulates the slots a plan op *uses* (reads from the frame) into `out`: probe
/// key slots, an enumeration's bound slots and `Check` slots, and every slot of a
/// scalar or guard expression.
pub fn op_uses(op: &PlanOp, out: &mut BTreeSet<Slot>) {
    match op {
        PlanOp::Probe { key_slots, .. } => out.extend(key_slots.iter().copied()),
        PlanOp::Enumerate {
            bound_slots,
            unbound,
            ..
        } => {
            out.extend(bound_slots.iter().copied());
            out.extend(unbound.iter().filter_map(|u| match *u {
                UnboundKey::Check { slot, .. } => Some(slot),
                UnboundKey::Bind { .. } => None,
            }));
        }
        PlanOp::Scalar(expr) => expr_uses(expr, out),
        PlanOp::Guard(_, lhs, rhs) => {
            expr_uses(lhs, out);
            expr_uses(rhs, out);
        }
    }
}

/// Accumulates every slot a slot expression reads into `out`.
pub fn expr_uses(expr: &SlotExpr, out: &mut BTreeSet<Slot>) {
    match expr {
        SlotExpr::Const(_) => {}
        SlotExpr::Slot(s) => {
            out.insert(*s);
        }
        SlotExpr::Add(a, b) | SlotExpr::Mul(a, b) => {
            expr_uses(a, out);
            expr_uses(b, out);
        }
        SlotExpr::Neg(a) => expr_uses(a, out),
    }
}
