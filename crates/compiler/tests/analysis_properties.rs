//! Property tests for the plan auditor (`dbring_compiler::analysis`).
//!
//! The load-bearing property: the analyzer's statement-level read/write conflict
//! graph must re-derive [`Trigger::supports_weighted_firing`] *exactly* — the
//! runtime's batch path trusts that predicate, so the analyzer reporting a blocked
//! trigger as clean (or vice versa) would make `DB007` diagnostics lie about what
//! the executor actually does. Programs here are arbitrary hand-built IR, far
//! outside what the compiler emits, so the agreement is structural, not an artifact
//! of compiled shapes.

use dbring_agca::ast::Expr;
use dbring_agca::parser::parse_query;
use dbring_algebra::Number;
use dbring_compiler::analysis::{analyze_program, derived_weighted_firing};
use dbring_compiler::{
    audit_program, compile, MapDef, RhsFactor, ScalarExpr, Statement, Trigger, TriggerProgram,
};
use dbring_delta::Sign;
use dbring_relations::Database;
use proptest::prelude::*;

const MAPS: usize = 4;

/// An arbitrary RHS factor over maps `m0..m3`: a lookup keyed by the trigger
/// parameter, a scalar, or a guard — shapes the map-level effect analysis must see
/// through (only lookups read maps).
fn arb_factor() -> impl Strategy<Value = RhsFactor> {
    prop_oneof![
        (0..MAPS).prop_map(|m| RhsFactor::MapLookup {
            map: m,
            keys: vec!["@p".to_string()],
        }),
        Just(RhsFactor::Scalar(ScalarExpr::Var("@p".to_string()))),
    ]
}

fn arb_statement() -> impl Strategy<Value = Statement> {
    (0..MAPS, prop::collection::vec(arb_factor(), 0..4)).prop_map(|(target, factors)| Statement {
        target,
        target_keys: vec!["@p".to_string()],
        coefficient: Number::Int(1),
        factors,
    })
}

fn arb_trigger() -> impl Strategy<Value = Trigger> {
    prop::collection::vec(arb_statement(), 1..6).prop_map(|statements| Trigger {
        relation: "R".to_string(),
        sign: Sign::Insert,
        params: vec!["@p".to_string()],
        statements,
    })
}

/// Wraps arbitrary triggers in a program whose map table names every `m0..m3` (the
/// program-level passes index into it for messages).
fn program_of(triggers: Vec<Trigger>) -> TriggerProgram {
    TriggerProgram {
        maps: (0..MAPS)
            .map(|id| MapDef {
                id,
                name: format!("m{id}"),
                key_vars: vec!["k".to_string()],
                definition: Expr::int(0),
                degree: 1,
            })
            .collect(),
        triggers,
        output: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analyzer's conflict-graph derivation and the IR's own predicate must
    /// agree on every trigger, however adversarial.
    #[test]
    fn derived_weighted_firing_matches_the_ir_predicate(trigger in arb_trigger()) {
        prop_assert_eq!(
            derived_weighted_firing(&trigger),
            trigger.supports_weighted_firing(),
            "analyzer and IR disagree on {:?}",
            trigger
        );
    }

    /// Diagnostics are a pure, deterministic function of the program: two runs give
    /// the same findings in the same order (the codes are stable identifiers CI and
    /// tests match on, so ordering jitter would be a contract break).
    #[test]
    fn program_diagnostics_are_deterministic(triggers in prop::collection::vec(arb_trigger(), 1..4)) {
        let program = program_of(triggers);
        let first = analyze_program(&program);
        let second = analyze_program(&program);
        prop_assert_eq!(first, second);
    }
}

/// On *compiled* programs the same agreement holds, the full audit is deterministic,
/// and — the gate `lower()` relies on — no Error-severity diagnostic ever appears.
#[test]
fn compiled_corpus_agrees_and_audits_without_errors() {
    let mut catalog = Database::new();
    catalog.declare("C", &["cid", "nation"]).unwrap();
    catalog.declare("R", &["A"]).unwrap();
    catalog.declare("S", &["A"]).unwrap();
    for text in [
        "q1[n] := Sum(C(c, n))",
        "q2[c] := Sum(C(c, n) * C(c2, n))",
        "q3 := Sum(C(c, n) * C(c2, n2) * (n = n2))",
        "q4 := Sum(R(x) * R(y) * (x = y))",
        "q5 := Sum(R(x) * S(x) * x)",
        "q6[c] := Sum(C(c, n) * R(n))",
        "q7 := Sum(C(c, n) * (n >= 2) * n)",
        "q8 := Sum(C(c, n) * C(c2, n) * n)",
    ] {
        let program = compile(&catalog, &parse_query(text).unwrap()).unwrap();
        for trigger in &program.triggers {
            assert_eq!(
                derived_weighted_firing(trigger),
                trigger.supports_weighted_firing(),
                "{text}: trigger on {}{}",
                trigger.sign,
                trigger.relation
            );
        }
        let audit = audit_program(&program);
        assert_eq!(audit, audit_program(&program), "{text}: nondeterministic");
        assert!(
            !dbring_compiler::analysis::has_errors(&audit),
            "{text}: compiled program carries an Error diagnostic: {audit:?}"
        );
    }
}
