//! Seeded synthetic workloads for the `dbring` experiments and benchmarks.
//!
//! The paper itself is a theory paper; its practical successor systems were evaluated on
//! proprietary financial and TPC-H-derived streams that cannot be redistributed. These
//! generators produce the closest controllable equivalents over the *paper's own example
//! schemas*: what matters for the reproduced claims (constant work per update for
//! recursive IVM, growing work for the baselines, factorized views staying linear in the
//! active domain) is the schema shape, the join structure, the update mix and the active
//! domain size — all of which are parameters here. Everything is deterministic given the
//! seed.
//!
//! Provided workloads:
//!
//! * [`self_join_count`] — Example 1.2: `SELECT count(*) FROM R r1, R r2 WHERE r1.A = r2.A`
//!   over a unary relation under inserts and deletes.
//! * [`customers_by_nation`] — Examples 5.2 / 6.2: customers per nation, grouped by
//!   customer id.
//! * [`rst_sum_join`] — Example 1.3: `SELECT sum(A*F) FROM R, S, T WHERE B = C AND D = E`.
//! * [`sales_revenue`] — a per-customer revenue aggregation over a sales stream (the kind
//!   of standing aggregate the paper's introduction motivates).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dbring_agca::ast::Query;
use dbring_agca::parser::parse_query;
use dbring_agca::sql::parse_sql;
use dbring_relations::{Database, Update, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generation parameters shared by all workloads.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// RNG seed; equal seeds give byte-identical workloads.
    pub seed: u64,
    /// Number of updates used to bulk-load the initial database.
    pub initial_size: usize,
    /// Number of updates in the measured stream.
    pub stream_length: usize,
    /// Size of the active domain each generated key/value is drawn from.
    pub domain_size: usize,
    /// Fraction of stream updates that are deletions of previously inserted tuples
    /// (0.0 … 0.5 is sensible).
    pub delete_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 42,
            initial_size: 1_000,
            stream_length: 1_000,
            domain_size: 100,
            delete_fraction: 0.2,
        }
    }
}

impl WorkloadConfig {
    /// A small configuration suitable for unit tests.
    pub fn small(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            initial_size: 50,
            stream_length: 100,
            domain_size: 10,
            delete_fraction: 0.25,
        }
    }

    /// Scales the initial database size, keeping everything else fixed (used by the
    /// complexity-separation sweeps).
    pub fn with_initial_size(mut self, n: usize) -> Self {
        self.initial_size = n;
        self
    }

    /// Sets the measured stream length.
    pub fn with_stream_length(mut self, n: usize) -> Self {
        self.stream_length = n;
        self
    }

    /// Sets the active-domain size.
    pub fn with_domain_size(mut self, n: usize) -> Self {
        self.domain_size = n;
        self
    }
}

/// A fully specified experiment input: schema, query, bulk load, and measured stream.
#[derive(Clone, Debug)]
pub struct Workload {
    /// A short identifier ("self-join-count", "customers-by-nation", …).
    pub name: &'static str,
    /// The declared schema (relation names and column lists, no contents).
    pub catalog: Database,
    /// The standing query to maintain.
    pub query: Query,
    /// Updates that build the initial database.
    pub initial: Vec<Update>,
    /// The measured update stream (applied after the initial load).
    pub stream: Vec<Update>,
}

impl Workload {
    /// The initial database obtained by applying the bulk-load updates to the catalog.
    pub fn initial_database(&self) -> Database {
        let mut db = self.catalog.clone();
        db.apply_all(&self.initial)
            .expect("generated updates are well-formed");
        db
    }

    /// Total number of updates (bulk load + stream).
    pub fn total_updates(&self) -> usize {
        self.initial.len() + self.stream.len()
    }
}

/// A generator of inserts/deletes that deletes only previously inserted tuples, so
/// deletions never push multiplicities negative.
struct StreamBuilder {
    rng: StdRng,
    delete_fraction: f64,
    live: Vec<Update>,
    out: Vec<Update>,
}

impl StreamBuilder {
    fn new(seed: u64, delete_fraction: f64) -> Self {
        StreamBuilder {
            rng: StdRng::seed_from_u64(seed),
            delete_fraction,
            live: Vec::new(),
            out: Vec::new(),
        }
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Emits an insert (or, with probability `delete_fraction`, the deletion of a random
    /// previously inserted tuple instead).
    fn push(&mut self, insert: Update) {
        let delete_now =
            !self.live.is_empty() && self.rng.gen_bool(self.delete_fraction.clamp(0.0, 0.9));
        if delete_now {
            let idx = self.rng.gen_range(0..self.live.len());
            let victim = self.live.swap_remove(idx);
            self.out.push(victim.inverse());
        } else {
            self.live.push(insert.clone());
            self.out.push(insert);
        }
    }

    fn finish(self) -> Vec<Update> {
        self.out
    }
}

/// Example 1.2: the self-join tuple count over a unary relation `R(A)`.
pub fn self_join_count(config: WorkloadConfig) -> Workload {
    let mut catalog = Database::new();
    catalog.declare("R", &["A"]).unwrap();
    let query = parse_query("self_join_count := Sum(R(x) * R(y) * (x = y))").unwrap();
    let make = |seed: u64, count: usize, cfg: &WorkloadConfig| {
        let mut b = StreamBuilder::new(seed, cfg.delete_fraction);
        for _ in 0..count {
            let v = b.rng().gen_range(0..cfg.domain_size as i64);
            b.push(Update::insert("R", vec![Value::int(v)]));
        }
        b.finish()
    };
    Workload {
        name: "self-join-count",
        catalog,
        query,
        initial: make(config.seed, config.initial_size, &config),
        stream: make(config.seed.wrapping_add(1), config.stream_length, &config),
    }
}

/// Examples 5.2 / 6.2: per-customer count of same-nation customers over `C(cid, nation)`.
pub fn customers_by_nation(config: WorkloadConfig) -> Workload {
    const NATIONS: [&str; 12] = [
        "FR", "DE", "IT", "ES", "PT", "NL", "BE", "AT", "PL", "SE", "FI", "DK",
    ];
    let mut catalog = Database::new();
    catalog.declare("C", &["cid", "nation"]).unwrap();
    let query = parse_sql(
        "SELECT C1.cid, SUM(1) AS same_nation FROM C C1, C C2 \
         WHERE C1.nation = C2.nation GROUP BY C1.cid",
        &catalog,
    )
    .unwrap();
    let nation_count = NATIONS.len().min(config.domain_size.max(1));
    let make = |seed: u64, count: usize, cfg: &WorkloadConfig, offset: i64| {
        let mut b = StreamBuilder::new(seed, cfg.delete_fraction);
        for i in 0..count {
            let cid = offset + i as i64;
            let nation = NATIONS[b.rng().gen_range(0..nation_count)];
            b.push(Update::insert(
                "C",
                vec![Value::int(cid), Value::str(nation)],
            ));
        }
        b.finish()
    };
    Workload {
        name: "customers-by-nation",
        catalog,
        query,
        initial: make(config.seed, config.initial_size, &config, 0),
        stream: make(
            config.seed.wrapping_add(1),
            config.stream_length,
            &config,
            config.initial_size as i64,
        ),
    }
}

/// Example 1.3: `SELECT sum(A*F) FROM R, S, T WHERE B = C AND D = E` over
/// `R(A,B)`, `S(C,D)`, `T(E,F)`.
pub fn rst_sum_join(config: WorkloadConfig) -> Workload {
    let mut catalog = Database::new();
    catalog.declare("R", &["A", "B"]).unwrap();
    catalog.declare("S", &["C", "D"]).unwrap();
    catalog.declare("T", &["E", "F"]).unwrap();
    let query = parse_sql(
        "SELECT SUM(A * F) AS weighted_paths FROM R, S, T WHERE B = C AND D = E",
        &catalog,
    )
    .unwrap();
    let make = |seed: u64, count: usize, cfg: &WorkloadConfig| {
        let mut b = StreamBuilder::new(seed, cfg.delete_fraction);
        let join_domain = cfg.domain_size.max(2) as i64;
        for i in 0..count {
            // Round-robin over the three relations so all of them keep growing.
            let value_a = b.rng().gen_range(1..100);
            let key1 = b.rng().gen_range(0..join_domain);
            let key2 = b.rng().gen_range(0..join_domain);
            let update = match i % 3 {
                0 => Update::insert("R", vec![Value::int(value_a), Value::int(key1)]),
                1 => Update::insert("S", vec![Value::int(key1), Value::int(key2)]),
                _ => Update::insert("T", vec![Value::int(key2), Value::int(value_a)]),
            };
            b.push(update);
        }
        b.finish()
    };
    Workload {
        name: "rst-sum-join",
        catalog,
        query,
        initial: make(config.seed, config.initial_size, &config),
        stream: make(config.seed.wrapping_add(1), config.stream_length, &config),
    }
}

/// A per-customer revenue aggregation over a sales stream:
/// `SELECT cust, SUM(price * qty) FROM Sales GROUP BY cust`.
pub fn sales_revenue(config: WorkloadConfig) -> Workload {
    let mut catalog = Database::new();
    catalog.declare("Sales", &["cust", "price", "qty"]).unwrap();
    let query = parse_sql(
        "SELECT cust, SUM(price * qty) AS revenue FROM Sales GROUP BY cust",
        &catalog,
    )
    .unwrap();
    let make = |seed: u64, count: usize, cfg: &WorkloadConfig| {
        let mut b = StreamBuilder::new(seed, cfg.delete_fraction);
        let customers = cfg.domain_size.max(1) as i64;
        for _ in 0..count {
            let cust = b.rng().gen_range(0..customers);
            let price = f64::from(b.rng().gen_range(1..10_000u32)) / 100.0;
            let qty = b.rng().gen_range(1..10i64);
            b.push(Update::insert(
                "Sales",
                vec![Value::int(cust), Value::float(price), Value::int(qty)],
            ));
        }
        b.finish()
    };
    Workload {
        name: "sales-revenue",
        catalog,
        query,
        initial: make(config.seed, config.initial_size, &config),
        stream: make(config.seed.wrapping_add(1), config.stream_length, &config),
    }
}

/// The integer-cent variant of [`sales_revenue`]: the same degree-1 per-customer
/// aggregation with prices in whole cents, so every aggregate stays in `ℤ` and results
/// are *bit*-comparable across execution paths that accumulate in different orders
/// (per-tuple vs batch — float addition is order-sensitive, integer addition is not).
/// The small customer domain makes tuple repeats common, which is exactly what the
/// batch path's consolidation and weighted firing collapse.
pub fn sales_revenue_int(config: WorkloadConfig) -> Workload {
    let mut catalog = Database::new();
    catalog.declare("Sales", &["cust", "cents", "qty"]).unwrap();
    let query = parse_sql(
        "SELECT cust, SUM(cents * qty) AS revenue_cents FROM Sales GROUP BY cust",
        &catalog,
    )
    .unwrap();
    let make = |seed: u64, count: usize, cfg: &WorkloadConfig| {
        let mut b = StreamBuilder::new(seed, cfg.delete_fraction);
        let customers = cfg.domain_size.max(1) as i64;
        for _ in 0..count {
            let cust = b.rng().gen_range(0..customers);
            // A narrow price/qty menu: repeated (cust, cents, qty) tuples consolidate.
            let cents = 100 * b.rng().gen_range(1..25i64);
            let qty = b.rng().gen_range(1..5i64);
            b.push(Update::insert(
                "Sales",
                vec![Value::int(cust), Value::int(cents), Value::int(qty)],
            ));
        }
        b.finish()
    };
    Workload {
        name: "sales-revenue-int",
        catalog,
        query,
        initial: make(config.seed, config.initial_size, &config),
        stream: make(config.seed.wrapping_add(1), config.stream_length, &config),
    }
}

/// An order/line-item foreign-key join in the style of the TPC-H schema fragment that
/// motivates standing revenue aggregates:
/// `SELECT cust, SUM(price * qty) FROM Orders, Lineitem WHERE Orders.okey = Lineitem.okey
///  GROUP BY cust`.
///
/// Unlike [`sales_revenue`] (a single-relation aggregate), this query has degree 2 and its
/// compiled triggers contain loop statements: an order insertion must credit the customer
/// with all line items already queued under that order key, and vice versa.
pub fn orders_lineitems(config: WorkloadConfig) -> Workload {
    let mut catalog = Database::new();
    catalog.declare("Orders", &["okey", "cust"]).unwrap();
    catalog
        .declare("Lineitem", &["okey", "price", "qty"])
        .unwrap();
    let query = parse_sql(
        "SELECT cust, SUM(price * qty) AS revenue FROM Orders, Lineitem \
         WHERE Orders.okey = Lineitem.okey GROUP BY cust",
        &catalog,
    )
    .unwrap();
    let make = |seed: u64, count: usize, cfg: &WorkloadConfig| {
        let mut b = StreamBuilder::new(seed, cfg.delete_fraction);
        let order_keys = (2 * cfg.domain_size).max(2) as i64;
        let customers = cfg.domain_size.max(1) as i64;
        for i in 0..count {
            if i % 4 == 0 {
                // One order for every three line items, on average.
                let okey = b.rng().gen_range(0..order_keys);
                let cust = b.rng().gen_range(0..customers);
                b.push(Update::insert(
                    "Orders",
                    vec![Value::int(okey), Value::int(cust)],
                ));
            } else {
                let okey = b.rng().gen_range(0..order_keys);
                let price = f64::from(b.rng().gen_range(100..50_000u32)) / 100.0;
                let qty = b.rng().gen_range(1..20i64);
                b.push(Update::insert(
                    "Lineitem",
                    vec![Value::int(okey), Value::float(price), Value::int(qty)],
                ));
            }
        }
        b.finish()
    };
    Workload {
        name: "orders-lineitems",
        catalog,
        query,
        initial: make(config.seed, config.initial_size, &config),
        stream: make(config.seed.wrapping_add(1), config.stream_length, &config),
    }
}

/// A multi-view experiment input: one schema and one update stream shared by several
/// standing queries — the operating regime of a `Ring` engine (and of the `exp_ring`
/// amortization experiment: one ingest path maintaining `k` views vs `k` independent
/// single-view loops).
#[derive(Clone, Debug)]
pub struct MultiViewWorkload {
    /// A short identifier ("sales-dashboard").
    pub name: &'static str,
    /// The shared schema (relation names and column lists, no contents).
    pub catalog: Database,
    /// The standing queries, as `(view name, query)` pairs. Experiments that sweep
    /// the view count take prefixes of this list, so it is ordered from the most to
    /// the least central view.
    pub views: Vec<(&'static str, Query)>,
    /// Updates that build the initial database.
    pub initial: Vec<Update>,
    /// The measured update stream (applied after the initial load).
    pub stream: Vec<Update>,
}

impl MultiViewWorkload {
    /// The initial database obtained by applying the bulk-load updates to the catalog.
    pub fn initial_database(&self) -> Database {
        let mut db = self.catalog.clone();
        db.apply_all(&self.initial)
            .expect("generated updates are well-formed");
        db
    }

    /// Total number of updates (bulk load + stream).
    pub fn total_updates(&self) -> usize {
        self.initial.len() + self.stream.len()
    }
}

/// A retail dashboard: six integer-valued standing aggregates over a sales stream with
/// occasional returns — the canonical many-views-one-stream workload.
///
/// Schema: `Sales(cust, cents, qty)` and `Returns(cust, cents, qty)`; roughly one
/// update in eight is a return. Four views read `Sales`, two read `Returns`, so routed
/// dispatch has real work to skip in both directions. All aggregates stay in `ℤ`
/// (prices in whole cents), so results are *bit*-comparable across execution paths
/// that accumulate in different orders — exactly like [`sales_revenue_int`]. The
/// narrow price/qty menu makes tuple repeats common, which is what batch
/// consolidation and weighted firing collapse.
pub fn sales_dashboard(config: WorkloadConfig) -> MultiViewWorkload {
    let mut catalog = Database::new();
    catalog.declare("Sales", &["cust", "cents", "qty"]).unwrap();
    catalog
        .declare("Returns", &["cust", "cents", "qty"])
        .unwrap();
    let views = vec![
        (
            "revenue_by_cust",
            parse_sql(
                "SELECT cust, SUM(cents * qty) AS revenue FROM Sales GROUP BY cust",
                &catalog,
            )
            .unwrap(),
        ),
        (
            "orders_by_cust",
            parse_sql(
                "SELECT cust, SUM(1) AS orders FROM Sales GROUP BY cust",
                &catalog,
            )
            .unwrap(),
        ),
        (
            "units_by_cust",
            parse_sql(
                "SELECT cust, SUM(qty) AS units FROM Sales GROUP BY cust",
                &catalog,
            )
            .unwrap(),
        ),
        (
            "total_revenue",
            parse_sql("SELECT SUM(cents * qty) AS total FROM Sales", &catalog).unwrap(),
        ),
        (
            "refunds_by_cust",
            parse_sql(
                "SELECT cust, SUM(cents * qty) AS refunded FROM Returns GROUP BY cust",
                &catalog,
            )
            .unwrap(),
        ),
        (
            "return_count",
            parse_sql("SELECT SUM(1) AS returns FROM Returns", &catalog).unwrap(),
        ),
    ];
    let make = |seed: u64, count: usize, cfg: &WorkloadConfig| {
        let mut b = StreamBuilder::new(seed, cfg.delete_fraction);
        let customers = cfg.domain_size.max(1) as i64;
        for i in 0..count {
            let cust = b.rng().gen_range(0..customers);
            let cents = 100 * b.rng().gen_range(1..25i64);
            let qty = b.rng().gen_range(1..5i64);
            let relation = if i % 8 == 7 { "Returns" } else { "Sales" };
            b.push(Update::insert(
                relation,
                vec![Value::int(cust), Value::int(cents), Value::int(qty)],
            ));
        }
        b.finish()
    };
    MultiViewWorkload {
        name: "sales-dashboard",
        catalog,
        views,
        initial: make(config.seed, config.initial_size, &config),
        stream: make(config.seed.wrapping_add(1), config.stream_length, &config),
    }
}

/// All workloads at a given configuration (used by sweeping experiments).
pub fn all_workloads(config: WorkloadConfig) -> Vec<Workload> {
    vec![
        self_join_count(config),
        customers_by_nation(config),
        rst_sum_join(config),
        sales_revenue(config),
        sales_revenue_int(config),
        orders_lineitems(config),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = customers_by_nation(WorkloadConfig::small(7));
        let b = customers_by_nation(WorkloadConfig::small(7));
        let c = customers_by_nation(WorkloadConfig::small(8));
        assert_eq!(a.stream, b.stream);
        assert_eq!(a.initial, b.initial);
        assert_ne!(a.stream, c.stream);
    }

    #[test]
    fn sizes_match_the_configuration() {
        let cfg = WorkloadConfig::default()
            .with_initial_size(123)
            .with_stream_length(45);
        let workloads = all_workloads(cfg);
        assert_eq!(workloads.len(), 6);
        for w in workloads {
            assert_eq!(w.initial.len(), 123, "{}", w.name);
            assert_eq!(w.stream.len(), 45, "{}", w.name);
            assert_eq!(w.total_updates(), 168);
        }
    }

    #[test]
    fn orders_lineitems_mixes_both_relations() {
        let w = orders_lineitems(WorkloadConfig::small(17));
        assert!(w.stream.iter().any(|u| u.relation == "Orders"));
        assert!(w.stream.iter().any(|u| u.relation == "Lineitem"));
        assert_eq!(w.query.group_by, vec!["Orders.cust"]);
        assert_eq!(w.query.relations().len(), 2);
    }

    #[test]
    fn deletions_only_remove_live_tuples() {
        // Applying the whole workload never drives a multiplicity negative.
        for w in all_workloads(WorkloadConfig::small(3)) {
            let mut db = w.catalog.clone();
            db.apply_all(w.initial.iter().chain(w.stream.iter()))
                .unwrap();
            for rel in db.relation_names().map(str::to_string).collect::<Vec<_>>() {
                for (_, m) in db.relation(&rel).unwrap().iter() {
                    assert!(
                        *m > 0,
                        "negative or zero multiplicity in {} of {}",
                        rel,
                        w.name
                    );
                }
            }
        }
    }

    #[test]
    fn queries_reference_only_declared_relations() {
        for w in all_workloads(WorkloadConfig::small(1)) {
            let declared: BTreeSet<String> =
                w.catalog.relation_names().map(str::to_string).collect();
            for r in w.query.relations() {
                assert!(declared.contains(&r), "{} not declared in {}", r, w.name);
            }
            // Streams only touch declared relations too.
            for u in w.initial.iter().chain(w.stream.iter()) {
                assert!(declared.contains(&u.relation));
            }
        }
    }

    #[test]
    fn sales_dashboard_views_compile_against_its_catalog() {
        let w = sales_dashboard(WorkloadConfig::small(11));
        assert_eq!(w.views.len(), 6);
        let declared: BTreeSet<String> = w.catalog.relation_names().map(str::to_string).collect();
        for (name, query) in &w.views {
            for r in query.relations() {
                assert!(declared.contains(&r), "{r} undeclared (view {name})");
            }
        }
        // Both relations appear in the stream, Sales dominating.
        let returns = w.stream.iter().filter(|u| u.relation == "Returns").count();
        assert!(returns > 0);
        assert!(returns < w.stream.len() / 4);
        assert!(w.initial_database().total_support() > 0);
        assert_eq!(w.total_updates(), w.initial.len() + w.stream.len());
        // Determinism per seed.
        assert_eq!(sales_dashboard(WorkloadConfig::small(11)).stream, w.stream);
    }

    #[test]
    fn initial_database_loads() {
        let w = rst_sum_join(WorkloadConfig::small(5));
        let db = w.initial_database();
        assert!(db.total_support() > 0);
        let w2 = sales_revenue(WorkloadConfig::small(5));
        assert!(w2.initial_database().total_support() > 0);
    }

    #[test]
    fn delete_fraction_zero_means_insert_only() {
        let cfg = WorkloadConfig {
            delete_fraction: 0.0,
            ..WorkloadConfig::small(9)
        };
        let w = self_join_count(cfg);
        assert!(w
            .initial
            .iter()
            .chain(w.stream.iter())
            .all(Update::is_insert));
        let cfg_del = WorkloadConfig {
            delete_fraction: 0.5,
            ..WorkloadConfig::small(9)
        };
        let w2 = self_join_count(cfg_del);
        assert!(w2.stream.iter().any(|u| !u.is_insert()));
    }
}
