//! The delta transform `∆_{±R(t⃗)}` (Section 6).
//!
//! Updates are *symbolic*: an [`UpdateEvent`] names the relation, the sign, and one fresh
//! parameter variable per column. The delta of a query is again an AGCA expression whose
//! free variables include those parameters; binding the parameters to the concrete values
//! of a runtime update (via [`UpdateEvent::binding`]) and evaluating yields the change to
//! the query result. Keeping the update symbolic is what allows the compiler to generate
//! *triggers*: code parameterized by the inserted/deleted tuple.

use dbring_relations::{Tuple, Update, Value};
use serde::{Deserialize, Serialize};

use dbring_agca::ast::{CmpOp, Expr};
use dbring_agca::normalize::{normalize, Polynomial};

/// The sign of an update event: insertion or deletion.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Sign {
    /// `+R(t⃗)` — insertion of one tuple.
    Insert,
    /// `−R(t⃗)` — deletion of one tuple.
    Delete,
}

impl Sign {
    /// The opposite sign.
    pub fn flip(&self) -> Sign {
        match self {
            Sign::Insert => Sign::Delete,
            Sign::Delete => Sign::Insert,
        }
    }

    /// `+1` or `−1`.
    pub fn multiplier(&self) -> i64 {
        match self {
            Sign::Insert => 1,
            Sign::Delete => -1,
        }
    }
}

impl std::fmt::Display for Sign {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sign::Insert => write!(f, "+"),
            Sign::Delete => write!(f, "-"),
        }
    }
}

/// A symbolic single-tuple update `±R(t₁, …, t_k)`: the `tᵢ` are *parameter variables*
/// that stand for the concrete values of the affected tuple.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// The updated relation.
    pub relation: String,
    /// Insertion or deletion.
    pub sign: Sign,
    /// The parameter variable names, one per column of the relation.
    pub params: Vec<String>,
}

impl UpdateEvent {
    /// A symbolic insertion event.
    pub fn insert(relation: impl Into<String>, params: &[&str]) -> Self {
        UpdateEvent {
            relation: relation.into(),
            sign: Sign::Insert,
            params: params.iter().map(|p| p.to_string()).collect(),
        }
    }

    /// A symbolic deletion event.
    pub fn delete(relation: impl Into<String>, params: &[&str]) -> Self {
        UpdateEvent {
            relation: relation.into(),
            sign: Sign::Delete,
            params: params.iter().map(|p| p.to_string()).collect(),
        }
    }

    /// An event for `relation` with auto-generated parameter names
    /// `@<relation>_<level>_<i>` (the `@` prefix keeps them disjoint from query variables).
    pub fn with_fresh_params(
        relation: impl Into<String>,
        sign: Sign,
        arity: usize,
        level: usize,
    ) -> Self {
        let relation = relation.into();
        let params = (0..arity)
            .map(|i| format!("@{relation}_{level}_{i}"))
            .collect();
        UpdateEvent {
            relation,
            sign,
            params,
        }
    }

    /// The event with the opposite sign (same parameters).
    pub fn flipped(&self) -> Self {
        UpdateEvent {
            relation: self.relation.clone(),
            sign: self.sign.flip(),
            params: self.params.clone(),
        }
    }

    /// The binding tuple `{t₁ ↦ v₁, …}` that instantiates the event's parameters with the
    /// concrete values of a runtime update.
    ///
    /// # Panics
    /// Panics if the number of values differs from the number of parameters.
    pub fn binding(&self, values: &[Value]) -> Tuple {
        assert_eq!(
            values.len(),
            self.params.len(),
            "update arity mismatch for {}",
            self.relation
        );
        Tuple::from_pairs(self.params.iter().cloned().zip(values.iter().cloned()))
    }

    /// Whether a concrete [`Update`] matches this symbolic event (same relation, same
    /// sign).
    pub fn matches(&self, update: &Update) -> bool {
        self.relation == update.relation
            && ((self.sign == Sign::Insert) == (update.multiplicity > 0))
    }
}

impl std::fmt::Display for UpdateEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}({})",
            self.sign,
            self.relation,
            self.params.join(", ")
        )
    }
}

/// The delta transform `∆_u(α)` (Section 6). The result is a plain AGCA expression; use
/// [`delta_normalized`] to additionally bring it into polynomial normal form (which folds
/// the cancellations that make Theorem 6.4 visible).
pub fn delta(expr: &Expr, event: &UpdateEvent) -> Expr {
    match expr {
        // ∆(α + β) = ∆α + ∆β
        Expr::Add(a, b) => Expr::add(delta(a, event), delta(b, event)),
        // ∆(−α) = −∆α
        Expr::Neg(a) => Expr::neg(delta(a, event)),
        // ∆(Sum α) = Sum(∆α)
        Expr::Sum(a) => Expr::sum(delta(a, event)),
        // ∆(α * β) = ∆α * β + α * ∆β + ∆α * ∆β
        Expr::Mul(a, b) => {
            let da = delta(a, event);
            let db = delta(b, event);
            let mut terms = Vec::new();
            if !da.is_zero() {
                terms.push(Expr::mul(da.clone(), (**b).clone()));
            }
            if !db.is_zero() {
                terms.push(Expr::mul((**a).clone(), db.clone()));
            }
            if !da.is_zero() && !db.is_zero() {
                terms.push(Expr::mul(da, db));
            }
            Expr::sum_of(terms)
        }
        // Constants and variables do not depend on the database.
        Expr::Const(_) | Expr::Var(_) => Expr::int(0),
        // ∆(±R(x⃗)): the explicit construction of the change to R.
        Expr::Rel(name, vars) => {
            if *name != event.relation {
                return Expr::int(0);
            }
            assert_eq!(
                vars.len(),
                event.params.len(),
                "update event for {name} has arity {} but the atom has arity {}",
                event.params.len(),
                vars.len()
            );
            let assignments = Expr::product(
                vars.iter()
                    .zip(event.params.iter())
                    .map(|(x, t)| Expr::assign(x.clone(), Expr::var(t.clone()))),
            );
            match event.sign {
                Sign::Insert => assignments,
                Sign::Delete => Expr::neg(assignments),
            }
        }
        // Conditions: zero for simple conditions (∆t = 0); otherwise the truth-table rule
        // ∆(t θ 0) = ((t+∆t) θ 0)(t θ̄ 0) − ((t+∆t) θ̄ 0)(t θ 0).
        Expr::Cmp(op, lhs, rhs) => {
            let dl = delta(lhs, event);
            let dr = delta(rhs, event);
            if dl.is_zero() && dr.is_zero() {
                return Expr::int(0);
            }
            let new_lhs = if dl.is_zero() {
                (**lhs).clone()
            } else {
                Expr::add((**lhs).clone(), dl)
            };
            let new_rhs = if dr.is_zero() {
                (**rhs).clone()
            } else {
                Expr::add((**rhs).clone(), dr)
            };
            let old = Expr::cmp(*op, (**lhs).clone(), (**rhs).clone());
            let old_bar = Expr::cmp(op.complement(), (**lhs).clone(), (**rhs).clone());
            let new = Expr::cmp(*op, new_lhs.clone(), new_rhs.clone());
            let new_bar = Expr::cmp(op.complement(), new_lhs, new_rhs);
            Expr::add(Expr::mul(new, old_bar), Expr::neg(Expr::mul(new_bar, old)))
        }
        // Assignments are treated like the equality condition x = t (Section 6); their
        // delta is governed by the term's delta.
        Expr::Assign(x, term) => {
            let dt = delta(term, event);
            if dt.is_zero() {
                return Expr::int(0);
            }
            delta(
                &Expr::cmp(CmpOp::Eq, Expr::Var(x.clone()), (**term).clone()),
                event,
            )
        }
    }
}

/// The delta transform followed by normalization into polynomial form.
pub fn delta_normalized(expr: &Expr, event: &UpdateEvent) -> Polynomial {
    normalize(&delta(expr, event))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::degree::degree;
    use dbring_agca::parser::parse_expr;

    #[test]
    fn update_event_basics() {
        let e = UpdateEvent::insert("R", &["t1", "t2"]);
        assert_eq!(e.to_string(), "+R(t1, t2)");
        assert_eq!(e.flipped().to_string(), "-R(t1, t2)");
        assert_eq!(e.sign.multiplier(), 1);
        assert_eq!(e.flipped().sign.multiplier(), -1);
        assert_eq!(Sign::Insert.flip().flip(), Sign::Insert);
        let fresh = UpdateEvent::with_fresh_params("S", Sign::Delete, 2, 1);
        assert_eq!(fresh.params, vec!["@S_1_0", "@S_1_1"]);
        let b = e.binding(&[Value::int(1), Value::str("x")]);
        assert_eq!(b.get("t1"), Some(&Value::int(1)));
        assert_eq!(b.get("t2"), Some(&Value::str("x")));
        let upd = Update::insert("R", vec![Value::int(1), Value::str("x")]);
        assert!(e.matches(&upd));
        assert!(!e.flipped().matches(&upd));
        assert!(!UpdateEvent::insert("S", &["a", "b"]).matches(&upd));
    }

    #[test]
    #[should_panic]
    fn binding_arity_mismatch_panics() {
        UpdateEvent::insert("R", &["t1", "t2"]).binding(&[Value::int(1)]);
    }

    #[test]
    fn delta_of_an_atom_is_a_product_of_assignments() {
        let atom = Expr::rel("C", &["c", "n"]);
        let plus = UpdateEvent::insert("C", &["c1", "n1"]);
        let d = delta(&atom, &plus);
        assert_eq!(
            d,
            Expr::mul(
                Expr::assign("c", Expr::var("c1")),
                Expr::assign("n", Expr::var("n1"))
            )
        );
        let minus = UpdateEvent::delete("C", &["c1", "n1"]);
        assert_eq!(delta(&atom, &minus), Expr::neg(d));
        // Deltas with respect to other relations vanish.
        assert!(delta(&atom, &UpdateEvent::insert("S", &["x"])).is_zero());
    }

    #[test]
    fn delta_of_constants_variables_and_simple_conditions_is_zero() {
        let e = UpdateEvent::insert("R", &["t"]);
        assert!(delta(&Expr::int(7), &e).is_zero());
        assert!(delta(&Expr::var("x"), &e).is_zero());
        assert!(delta(&parse_expr("(x < y)").unwrap(), &e).is_zero());
        assert!(delta(&parse_expr("(x := 3)").unwrap(), &e).is_zero());
    }

    #[test]
    fn example_6_2_delta_of_the_customer_query() {
        // q = Sum(C(c, n) * C(c2, n)); ∆ wrt +C(c1, n1) has three product terms.
        let q = parse_expr("Sum(C(c, n) * C(c2, n))").unwrap();
        let event = UpdateEvent::insert("C", &["c1", "n1"]);
        let d = delta(&q, &event);
        assert_eq!(degree(&q), 2);
        assert_eq!(degree(&d), 1);
        let p = delta_normalized(&q, &event);
        // Three monomials: ∆C * C, C * ∆C, ∆C * ∆C.
        assert_eq!(p.monomials.len(), 3);
        let degrees: Vec<usize> = p.monomials.iter().map(|m| m.degree()).collect();
        assert_eq!(degrees.iter().filter(|&&d| d == 1).count(), 2);
        assert_eq!(degrees.iter().filter(|&&d| d == 0).count(), 1);
    }

    #[test]
    fn example_6_5_second_delta_has_degree_zero() {
        let q = parse_expr("Sum(C(c, n) * C(c2, n))").unwrap();
        let e1 = UpdateEvent::insert("C", &["c1", "n1"]);
        let e2 = UpdateEvent::insert("C", &["c2p", "n2p"]);
        let d1 = delta(&q, &e1);
        let d2 = delta(&d1, &e2);
        assert_eq!(degree(&d2), 0);
        // The second delta of a degree-2 query no longer references the database.
        assert!(dbring_agca::normalize::normalize(&d2)
            .monomials
            .iter()
            .all(|m| m.factors.iter().all(|f| f.relations().is_empty())));
        // A third delta is identically zero after normalization.
        let d3 = delta_normalized(&d2, &UpdateEvent::insert("C", &["c3", "n3"]));
        assert!(d3.is_zero());
    }

    #[test]
    fn deletion_deltas_flip_sign() {
        let q = parse_expr("Sum(R(x) * x)").unwrap();
        let plus = delta_normalized(&q, &UpdateEvent::insert("R", &["t"]));
        let minus = delta_normalized(&q, &UpdateEvent::delete("R", &["t"]));
        assert_eq!(plus.negate(), minus);
    }

    #[test]
    fn product_rule_produces_three_terms() {
        let q = parse_expr("R(x) * S(x)").unwrap();
        // Update touches only R: two of the three product-rule terms survive... actually
        // only ∆R * S survives (∆S = 0 kills the other two).
        let d = delta_normalized(&q, &UpdateEvent::insert("R", &["t"]));
        assert_eq!(d.monomials.len(), 1);
        assert_eq!(d.degree(), 1);
        // A self-join on R gets all three terms.
        let qq = parse_expr("R(x) * R(y)").unwrap();
        let dd = delta_normalized(&qq, &UpdateEvent::insert("R", &["t"]));
        assert_eq!(dd.monomials.len(), 3);
    }

    #[test]
    fn non_simple_condition_uses_the_truth_table_rule() {
        // (Sum(R(x) * x) > 10) is not a simple condition: its delta is the ±1 change of
        // the truth value.
        let cond = parse_expr("(Sum(R(x) * x) > 10)").unwrap();
        let d = delta(&cond, &UpdateEvent::insert("R", &["t"]));
        assert!(!d.is_zero());
        let text = d.to_string();
        assert!(text.contains('>'));
        assert!(
            text.contains("<="),
            "complement operator must appear: {text}"
        );
    }

    #[test]
    fn delta_is_still_within_agca() {
        // Closure property: the delta of any of these parses back (round-trips through the
        // text syntax), i.e. it is a plain AGCA expression.
        for text in [
            "Sum(C(c, n) * C(c2, n))",
            "Sum(R(a, b) * S(b, c) * c)",
            "Sum(R(a, b) * (a < b) * a)",
        ] {
            let q = parse_expr(text).unwrap();
            let d = delta(&q, &UpdateEvent::insert("R", &["p1", "p2"]));
            let reparsed = parse_expr(&d.to_string()).unwrap();
            assert_eq!(reparsed, d);
        }
    }
}
