//! Recursive delta hierarchies ("delta towers").
//!
//! Taking deltas repeatedly — `∆Q`, `∆²Q`, … — terminates for queries with simple
//! conditions because the degree strictly decreases (Theorem 6.4); after `deg(Q)` steps
//! the expressions depend only on the update parameters. The tower built here enumerates
//! *all* delta sequences over the relations a query mentions, which is exactly the set of
//! auxiliary views the recursive IVM scheme of Section 1.1 materializes (before the
//! factorization refinements applied by the compiler). The tower is used by the
//! experiments that regenerate Examples 6.2/6.5 and by the property tests of Theorem 6.4.

use dbring_relations::Database;
use serde::{Deserialize, Serialize};

use dbring_agca::ast::Expr;
use dbring_agca::degree::degree;
use dbring_agca::normalize::normalize;

use crate::transform::{delta, Sign, UpdateEvent};

/// All insertion/deletion events (with fresh parameter names for nesting level `level`)
/// for the relations referenced by `expr`, using the database catalog for arities.
///
/// Relations not declared in the database are skipped (their deltas would never fire).
pub fn update_events(db: &Database, expr: &Expr, level: usize) -> Vec<UpdateEvent> {
    let mut events = Vec::new();
    for relation in expr.relations() {
        let Some(columns) = db.columns(&relation) else {
            continue;
        };
        let arity = columns.len();
        for sign in [Sign::Insert, Sign::Delete] {
            events.push(UpdateEvent::with_fresh_params(
                relation.clone(),
                sign,
                arity,
                level,
            ));
        }
    }
    events
}

/// Applies the delta transform once per event, left to right:
/// `∆_{u_k}(… ∆_{u_1}(expr) …)`.
pub fn iterated_delta(expr: &Expr, events: &[UpdateEvent]) -> Expr {
    let mut out = expr.clone();
    for event in events {
        out = delta(&out, event);
    }
    out
}

/// One entry of a delta tower: the event sequence and the (simplified) delta expression it
/// leads to.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TowerEntry {
    /// The sequence of update events `u₁, …, u_j` this delta is taken with respect to.
    pub events: Vec<UpdateEvent>,
    /// The simplified `∆^j` expression.
    pub expr: Expr,
    /// Its polynomial degree.
    pub degree: usize,
}

/// The full hierarchy of recursive deltas of a query: level `j` holds `∆^j Q` for every
/// length-`j` sequence of update events over the query's relations.
///
/// The tower stops at the first level where every entry is the zero expression (which, by
/// Theorem 6.4, happens after at most `deg(Q) + 1` levels for simple-condition queries).
/// The size of level `j` is `(2·#relations)^j`, so towers are only built for the small,
/// fixed queries of the experiments and tests.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeltaTower {
    /// `levels[j]` holds all `j`-th deltas; `levels[0]` is the query itself.
    pub levels: Vec<Vec<TowerEntry>>,
}

impl DeltaTower {
    /// The number of levels that contain a non-zero expression.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total number of non-zero delta expressions across all levels (the number of views
    /// the unfactorized recursive IVM scheme would materialize).
    pub fn view_count(&self) -> usize {
        self.levels.iter().map(Vec::len).sum()
    }

    /// The maximum degree found at each level (for exhibiting Theorem 6.4).
    pub fn degrees_per_level(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|entries| entries.iter().map(|e| e.degree).max().unwrap_or(0))
            .collect()
    }
}

/// Builds the delta tower of `expr` over the relations it references, using `db` as the
/// catalog for arities. `max_levels` bounds the construction defensively (useful for
/// expressions with non-simple conditions, where termination is not guaranteed).
pub fn build_tower(db: &Database, expr: &Expr, max_levels: usize) -> DeltaTower {
    let mut levels: Vec<Vec<TowerEntry>> = vec![vec![TowerEntry {
        events: Vec::new(),
        expr: expr.clone(),
        degree: degree(expr),
    }]];
    for level in 1..=max_levels {
        let events = update_events(db, expr, level);
        let mut next = Vec::new();
        for entry in &levels[level - 1] {
            for event in &events {
                let d = delta(&entry.expr, event);
                let simplified = normalize(&d).to_expr();
                if simplified.is_zero() {
                    continue;
                }
                let mut chain = entry.events.clone();
                chain.push(event.clone());
                next.push(TowerEntry {
                    degree: degree(&simplified),
                    events: chain,
                    expr: simplified,
                });
            }
        }
        if next.is_empty() {
            break;
        }
        levels.push(next);
    }
    DeltaTower { levels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbring_agca::parser::parse_expr;

    fn customer_catalog() -> Database {
        let mut db = Database::new();
        db.declare("C", &["cid", "nation"]).unwrap();
        db
    }

    #[test]
    fn update_events_cover_both_signs_per_relation() {
        let db = customer_catalog();
        let q = parse_expr("Sum(C(c, n) * C(c2, n))").unwrap();
        let events = update_events(&db, &q, 1);
        assert_eq!(events.len(), 2);
        assert!(events.iter().any(|e| e.sign == Sign::Insert));
        assert!(events.iter().any(|e| e.sign == Sign::Delete));
        assert!(events
            .iter()
            .all(|e| e.relation == "C" && e.params.len() == 2));
        // Undeclared relations are skipped.
        let q2 = parse_expr("Sum(C(c, n) * Unknown(x))").unwrap();
        assert_eq!(update_events(&db, &q2, 1).len(), 2);
    }

    #[test]
    fn tower_of_the_customer_query_has_three_levels() {
        let db = customer_catalog();
        let q = parse_expr("Sum(C(c, n) * C(c2, n))").unwrap();
        let tower = build_tower(&db, &q, 10);
        // Level 0: the query (degree 2); level 1: first deltas (degree 1); level 2: second
        // deltas (degree 0); level 3 would be all-zero, so it is absent.
        assert_eq!(tower.depth(), 3);
        assert_eq!(tower.degrees_per_level(), vec![2, 1, 0]);
        assert_eq!(tower.levels[1].len(), 2);
        assert_eq!(tower.levels[2].len(), 4);
        assert_eq!(tower.view_count(), 1 + 2 + 4);
        // Every second delta is database-free (references no relation).
        for entry in &tower.levels[2] {
            assert!(entry.expr.relations().is_empty());
            assert_eq!(entry.events.len(), 2);
        }
    }

    #[test]
    fn iterated_delta_matches_the_tower() {
        let db = customer_catalog();
        let q = parse_expr("Sum(C(c, n) * C(c2, n))").unwrap();
        let tower = build_tower(&db, &q, 10);
        let entry = &tower.levels[1][0];
        let direct = iterated_delta(&q, &entry.events);
        assert_eq!(normalize(&direct), normalize(&entry.expr));
    }

    #[test]
    fn degree_zero_queries_have_a_single_level() {
        let db = customer_catalog();
        let q = parse_expr("Sum((x := 1) * x)").unwrap();
        let tower = build_tower(&db, &q, 10);
        assert_eq!(tower.depth(), 1);
        assert_eq!(tower.view_count(), 1);
    }

    #[test]
    fn max_levels_bounds_the_construction() {
        let db = customer_catalog();
        let q = parse_expr("Sum(C(c, n) * C(c2, n))").unwrap();
        let tower = build_tower(&db, &q, 1);
        assert_eq!(tower.depth(), 2);
    }

    #[test]
    fn three_way_join_tower_degrees_decrease() {
        let mut db = Database::new();
        db.declare("R", &["A", "B"]).unwrap();
        db.declare("S", &["C", "D"]).unwrap();
        db.declare("T", &["E", "F"]).unwrap();
        let q = parse_expr("Sum(R(a, b) * S(c, d) * T(e, f) * (b = c) * (d = e) * a * f)").unwrap();
        let tower = build_tower(&db, &q, 10);
        assert_eq!(tower.degrees_per_level(), vec![3, 2, 1, 0]);
        // Level 1 has one entry per (relation, sign) pair = 6.
        assert_eq!(tower.levels[1].len(), 6);
    }
}
