//! Delta processing for AGCA queries (Section 6 of *Incremental Query Evaluation in a Ring
//! of Databases*, Koch, PODS 2010).
//!
//! The central object is the *delta transform* `∆_u(α)`: given a symbolic single-tuple
//! update `u = ±R(t⃗)`, it produces an AGCA expression over the same database such that
//!
//! ```text
//! [[α]](D + u)  =  [[α]](D)  +  [[∆_u α]](D)        (Proposition 6.1)
//! ```
//!
//! Because AGCA is closed under `∆` and the degree strictly decreases for queries with
//! simple conditions (Theorem 6.4), deltas can be taken *recursively* until a degree-0
//! expression — one that depends only on the update, not on the database — is reached.
//! That recursion is what the compiler (`dbring-compiler`) materializes as a hierarchy of
//! views; this crate provides the symbolic machinery:
//!
//! * [`transform`] — [`UpdateEvent`]s (symbolic `±R(t⃗)` with named parameters) and the
//!   delta rules for every AGCA construct;
//! * [`hierarchy`] — iterated deltas, enumeration of update events for a query, and the
//!   full *delta tower* used by experiments and tests to exhibit Examples 6.2/6.5 and the
//!   degree-reduction theorem.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod transform;

pub use hierarchy::{build_tower, iterated_delta, update_events, DeltaTower};
pub use transform::{delta, delta_normalized, Sign, UpdateEvent};
