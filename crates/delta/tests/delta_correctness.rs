//! Property-based verification of the two central facts of Section 6:
//!
//! * **Proposition 6.1**: `[[α]](D + u) = [[α]](D) + [[∆_u α]](D)` — checked by evaluating
//!   both sides with the reference evaluator on randomly generated databases and updates.
//! * **Theorem 6.4**: `deg(∆α) = max(0, deg(α) − 1)` for simple-condition queries, and the
//!   `deg(α)`-th delta is database-independent.

use dbring_agca::degree::degree;
use dbring_agca::eval::eval;
use dbring_agca::normalize::normalize;
use dbring_agca::parser::parse_expr;
use dbring_algebra::Semiring;
use dbring_delta::{delta, iterated_delta, Sign, UpdateEvent};
use dbring_relations::{Database, Tuple, Update, Value};
use proptest::prelude::*;

/// The query corpus: simple-condition AGCA queries over C(cid, nation) and R(A)/S(A).
fn query_corpus() -> Vec<&'static str> {
    vec![
        "Sum(C(c, n))",
        "Sum(C(c, n) * n)",
        "Sum(C(c, n) * C(c2, n2) * (n = n2))",
        "Sum(C(c, n) * C(c2, n2) * (n < n2))",
        "Sum(C(c, n) * C(c2, n2) * (n = n2) * n)",
        "Sum(C(c, n) * (n >= 3))",
        "C(c, n) * (c < n)",
        "Sum(R(x) * S(x))",
        "Sum(R(x) * S(y) * (x = y) * x)",
        "Sum(R(x) * R(y) * (x = y))",
        "Sum(C(c, n) * C(c2, n2) * (n = n2) + C(c3, n3) * 2)",
    ]
}

fn schema() -> Database {
    let mut db = Database::new();
    db.declare("C", &["cid", "nation"]).unwrap();
    db.declare("R", &["A"]).unwrap();
    db.declare("S", &["A"]).unwrap();
    db
}

/// Strategy for a random small database over the fixed schema (values in a tiny domain so
/// joins and equalities actually fire).
fn arb_database() -> impl Strategy<Value = Database> {
    let c_rows = prop::collection::vec((0i64..4, 0i64..4), 0..8);
    let r_rows = prop::collection::vec(0i64..4, 0..6);
    let s_rows = prop::collection::vec(0i64..4, 0..6);
    (c_rows, r_rows, s_rows).prop_map(|(c, r, s)| {
        let mut db = schema();
        for (cid, nation) in c {
            db.insert("C", vec![Value::int(cid), Value::int(nation)])
                .unwrap();
        }
        for a in r {
            db.insert("R", vec![Value::int(a)]).unwrap();
        }
        for a in s {
            db.insert("S", vec![Value::int(a)]).unwrap();
        }
        db
    })
}

/// Strategy for a random single-tuple update against the fixed schema.
fn arb_update() -> impl Strategy<Value = Update> {
    prop_oneof![
        (0i64..4, 0i64..4, any::<bool>()).prop_map(|(cid, nation, ins)| {
            let values = vec![Value::int(cid), Value::int(nation)];
            if ins {
                Update::insert("C", values)
            } else {
                Update::delete("C", values)
            }
        }),
        (0i64..4, any::<bool>(), any::<bool>()).prop_map(|(a, on_r, ins)| {
            let rel = if on_r { "R" } else { "S" };
            let values = vec![Value::int(a)];
            if ins {
                Update::insert(rel, values)
            } else {
                Update::delete(rel, values)
            }
        }),
    ]
}

/// Builds the symbolic event matching a concrete update, plus the parameter binding.
fn symbolic_event(db: &Database, update: &Update) -> (UpdateEvent, Tuple) {
    let arity = db.columns(&update.relation).unwrap().len();
    let sign = if update.multiplicity > 0 {
        Sign::Insert
    } else {
        Sign::Delete
    };
    let event = UpdateEvent::with_fresh_params(update.relation.clone(), sign, arity, 1);
    let binding = event.binding(&update.values);
    (event, binding)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn proposition_6_1_delta_is_exact(db in arb_database(), update in arb_update()) {
        for text in query_corpus() {
            let q = parse_expr(text).unwrap();
            let (event, binding) = symbolic_event(&db, &update);
            let d = delta(&q, &event);

            let before = eval(&q, &db, &Tuple::empty()).unwrap();
            let change = eval(&d, &db, &binding).unwrap();
            let mut updated_db = db.clone();
            updated_db.apply(&update).unwrap();
            let after = eval(&q, &updated_db, &Tuple::empty()).unwrap();

            prop_assert_eq!(
                before.add(&change),
                after,
                "Proposition 6.1 violated for {} under {}",
                text,
                &update
            );
        }
    }

    #[test]
    fn proposition_6_1_holds_under_bindings(db in arb_database(), update in arb_update(), group in 0i64..4) {
        // The delta equation also holds pointwise for a bound group-by variable.
        let q = parse_expr("Sum(C(c, n) * C(c2, n2) * (n = n2))").unwrap();
        if update.relation != "C" {
            return Ok(());
        }
        let (event, param_binding) = symbolic_event(&db, &update);
        let d = delta(&q, &event);
        let group_binding = Tuple::singleton("c", Value::int(group));
        let full_binding = group_binding.join(&param_binding).unwrap();

        let before = eval(&q, &db, &group_binding).unwrap().get(&Tuple::empty());
        let change = eval(&d, &db, &full_binding).unwrap().get(&Tuple::empty());
        let mut updated_db = db.clone();
        updated_db.apply(&update).unwrap();
        let after = eval(&q, &updated_db, &group_binding).unwrap().get(&Tuple::empty());
        prop_assert_eq!(before.add(&change), after);
    }

    #[test]
    fn theorem_6_4_degree_reduction(_dummy in 0u8..1) {
        for text in query_corpus() {
            let q = parse_expr(text).unwrap();
            if q.has_nested_aggregate_condition() {
                continue;
            }
            let k = degree(&q);
            let mut current = q.clone();
            for step in 1..=k + 1 {
                let event = UpdateEvent::with_fresh_params("C", Sign::Insert, 2, step);
                let event_r = UpdateEvent::with_fresh_params("R", Sign::Insert, 1, step);
                // Take the delta with respect to whichever relation the expression still
                // mentions (C first, then R) so the degree actually has a chance to drop.
                let d = if current.relations().contains("C") {
                    delta(&current, &event)
                } else {
                    delta(&current, &event_r)
                };
                let expected = degree(&current).saturating_sub(1);
                let simplified = normalize(&d).to_expr();
                if !simplified.is_zero() {
                    prop_assert!(
                        degree(&simplified) <= expected,
                        "degree did not drop for {} at step {}: {} -> {}",
                        text, step, degree(&current), degree(&simplified)
                    );
                }
                current = simplified;
                if current.is_zero() {
                    break;
                }
            }
            // After deg(q)+1 deltas everything must have vanished or become degree 0.
            prop_assert!(current.is_zero() || degree(&current) == 0);
        }
    }

    #[test]
    fn kth_delta_is_database_independent(db in arb_database(), db2 in arb_database()) {
        // The deg(q)-th delta evaluates identically on two unrelated databases: it is a
        // function of the update parameters only (the key fact behind Theorem 7.1).
        let q = parse_expr("Sum(C(c, n) * C(c2, n2) * (n = n2))").unwrap();
        let e1 = UpdateEvent::insert("C", &["p1", "p2"]);
        let e2 = UpdateEvent::insert("C", &["q1", "q2"]);
        let dd = iterated_delta(&q, &[e1, e2]);
        let binding = Tuple::from_pairs(vec![
            ("p1", Value::int(1)),
            ("p2", Value::int(2)),
            ("q1", Value::int(1)),
            ("q2", Value::int(2)),
        ]);
        let on_db1 = eval(&dd, &db, &binding).unwrap();
        let on_db2 = eval(&dd, &db2, &binding).unwrap();
        prop_assert_eq!(on_db1, on_db2);
    }
}
